//! Parameterized Solidity snippet templates.
//!
//! The generators below produce the code population of the study: for every
//! CCC query there is a *vulnerable* template (exercising the query's base
//! pattern) and a *mitigated* counterpart (exercising its negated
//! mitigation sub-pattern), plus benign everyday templates (voting,
//! escrow, tokens, getters). Identifier names are drawn from pools so the
//! same template yields Type-II-diverse instances; rendering is fully
//! deterministic in the RNG.

use ccc::QueryId;
use rand::rngs::StdRng;
use rand::Rng;

/// Hierarchy level at which a snippet is rendered (§6.1: 54.2% contract,
/// 38% function, 7.8% statements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Full contract definition.
    Contract,
    /// Bare function definition(s) — the contract body without its wrapper
    /// (how multi-function snippets appear in Q&A answers).
    Function,
    /// Only the single function carrying the vulnerable/core statements —
    /// how the paper's *Functions* dataset extracts labelled functions
    /// into their own files (§4.6.1).
    CoreFunction,
    /// Bare statements.
    Statements,
}

/// A generated snippet with its ground truth.
#[derive(Debug, Clone)]
pub struct Generated {
    /// Source text.
    pub text: String,
    /// Seeded vulnerability, if any.
    pub vuln: Option<QueryId>,
    /// Template family name (clone ground truth: instances of the same
    /// family are intentional Type-II clones of each other).
    pub family: &'static str,
}

/// A snippet template.
#[derive(Clone, Copy)]
pub struct Template {
    /// Family name.
    pub name: &'static str,
    /// The vulnerability this template seeds, if any.
    pub vuln: Option<QueryId>,
    render: fn(&mut StdRng, Level) -> String,
}

impl Template {
    /// Render an instance at the given level.
    pub fn render(&self, rng: &mut StdRng, level: Level) -> Generated {
        Generated {
            text: (self.render)(rng, level),
            vuln: self.vuln,
            family: self.name,
        }
    }
}

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

fn contract_name(rng: &mut StdRng) -> &'static str {
    pick(
        rng,
        &[
            "Bank", "Wallet", "Vault", "Token", "Crowdsale", "Lottery", "Game", "Escrow",
            "Registry", "Store", "Fund", "Pool", "Market", "Auction", "Faucet", "Splitter",
            "Locker", "Treasury", "Manager", "Ledger",
        ],
    )
}

fn owner_name(rng: &mut StdRng) -> &'static str {
    pick(rng, &["owner", "admin", "creator", "deployer", "boss", "manager"])
}

fn amount_name(rng: &mut StdRng) -> &'static str {
    pick(rng, &["amount", "value", "sum", "total", "quantity", "wad", "funds"])
}

fn balances_name(rng: &mut StdRng) -> &'static str {
    pick(rng, &["balances", "accounts", "deposits", "credits", "holdings", "userBalances"])
}

fn fn_name(rng: &mut StdRng, options: &[&'static str]) -> &'static str {
    pick(rng, options)
}

/// Wrap a body of members into a contract at the requested level.
fn at_level(level: Level, name: &str, members: &str, fallback_stmts: &str) -> String {
    match level {
        Level::Contract => format!("contract {name} {{\n{members}\n}}"),
        Level::Function => members.to_string(),
        Level::CoreFunction => extract_core_function(members, fallback_stmts),
        Level::Statements => fallback_stmts.to_string(),
    }
}

/// Extract, from a member list, the single function whose body contains
/// the first core statement — the §4.6.1 Functions-dataset extraction.
/// Falls back to the first function, then to the whole member list.
fn extract_core_function(members: &str, core_stmts: &str) -> String {
    let needle = core_stmts.lines().next().unwrap_or("").trim().to_string();
    let mut blocks: Vec<String> = Vec::new();
    let mut current: Option<(String, i32)> = None;
    for line in members.lines() {
        let opens = line.matches('{').count() as i32;
        let closes = line.matches('}').count() as i32;
        match &mut current {
            Some((block, depth)) => {
                block.push_str(line);
                block.push('\n');
                *depth += opens - closes;
                if *depth <= 0 {
                    blocks.push(std::mem::take(block));
                    current = None;
                }
            }
            None => {
                let t = line.trim_start();
                if (t.starts_with("function") || t.starts_with("constructor") || t.starts_with("modifier"))
                    && opens > 0
                {
                    let depth = opens - closes;
                    if depth <= 0 {
                        blocks.push(format!("{line}\n"));
                    } else {
                        current = Some((format!("{line}\n"), depth));
                    }
                }
            }
        }
    }
    if let Some((block, _)) = current {
        blocks.push(block);
    }
    if !needle.is_empty() {
        if let Some(block) = blocks
            .iter()
            .find(|b| b.lines().any(|l| l.trim() == needle))
        {
            return block.clone();
        }
    }
    blocks
        .into_iter()
        .next()
        .unwrap_or_else(|| members.to_string())
}

// ===== vulnerable templates =================================================

fn reentrancy_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let bal = balances_name(rng);
    let amt = amount_name(rng);
    let f = fn_name(rng, &["withdraw", "withdrawBalance", "getMoney", "takeOut", "redeem"]);
    let members = format!(
        "    mapping(address => uint) {bal};\n\
         \n\
             function deposit() public payable {{\n\
                 {bal}[msg.sender] += msg.value;\n\
             }}\n\
         \n\
             function {f}() public {{\n\
                 uint {amt} = {bal}[msg.sender];\n\
                 msg.sender.call{{value: {amt}}}(\"\");\n\
                 {bal}[msg.sender] = 0;\n\
             }}"
    );
    let stmts = format!(
        "uint {amt} = {bal}[msg.sender];\n\
         msg.sender.call{{value: {amt}}}(\"\");\n\
         {bal}[msg.sender] = 0;"
    );
    at_level(level, c, &members, &stmts)
}

fn reentrancy_safe(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let bal = balances_name(rng);
    let amt = amount_name(rng);
    let members = format!(
        "    mapping(address => uint) {bal};\n\
         \n\
             function deposit() public payable {{\n\
                 {bal}[msg.sender] += msg.value;\n\
             }}\n\
         \n\
             function withdraw() public {{\n\
                 uint {amt} = {bal}[msg.sender];\n\
                 {bal}[msg.sender] = 0;\n\
                 require(msg.sender.call{{value: {amt}}}(\"\"));\n\
             }}"
    );
    let stmts = format!(
        "uint {amt} = {bal}[msg.sender];\n\
         {bal}[msg.sender] = 0;\n\
         require(msg.sender.call{{value: {amt}}}(\"\"));"
    );
    at_level(level, c, &members, &stmts)
}

fn unchecked_send_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let to = pick(rng, &["to", "recipient", "dest", "receiver", "target"]);
    let amt = amount_name(rng);
    let f = fn_name(rng, &["pay", "payout", "sendFunds", "distribute", "forward"]);
    let members = format!(
        "    function {f}(address {to}, uint {amt}) public {{\n\
                 {to}.send({amt});\n\
             }}"
    );
    let stmts = format!("{to}.send({amt});");
    at_level(level, c, &members, &stmts)
}

fn unchecked_send_safe(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let to = pick(rng, &["to", "recipient", "dest", "receiver"]);
    let amt = amount_name(rng);
    let members = format!(
        "    function pay(address {to}, uint {amt}) public {{\n\
                 require(msg.data.length == 68);\n\
                 require({to}.send({amt}));\n\
             }}"
    );
    let stmts = format!("require(msg.data.length == 68);\nrequire({to}.send({amt}));");
    at_level(level, c, &members, &stmts)
}

fn tx_origin_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let owner = owner_name(rng);
    let f = fn_name(rng, &["withdrawAll", "sendTo", "transferTo", "moveFunds"]);
    let members = format!(
        "    address {owner};\n\
         \n\
             constructor() {{\n\
                 {owner} = msg.sender;\n\
             }}\n\
         \n\
             function {f}(address to) public {{\n\
                 require(tx.origin == {owner});\n\
                 to.transfer(this.balance);\n\
             }}"
    );
    let stmts = format!(
        "require(tx.origin == {owner});\n\
         to.transfer(this.balance);"
    );
    at_level(level, c, &members, &stmts)
}

fn tx_origin_safe(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let owner = owner_name(rng);
    let members = format!(
        "    address {owner};\n\
         \n\
             constructor() {{\n\
                 {owner} = msg.sender;\n\
             }}\n\
         \n\
             function withdrawAll(address to) public {{\n\
                 require(msg.sender == {owner});\n\
                 to.transfer(this.balance);\n\
             }}"
    );
    let stmts = format!(
        "require(msg.sender == {owner});\n\
         to.transfer(this.balance);"
    );
    at_level(level, c, &members, &stmts)
}

fn selfdestruct_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let f = fn_name(rng, &["kill", "destroy", "close", "shutdown", "cleanup"]);
    let members = format!(
        "    function {f}() public {{\n\
                 selfdestruct(msg.sender);\n\
             }}"
    );
    at_level(level, c, &members, "selfdestruct(msg.sender);")
}

fn selfdestruct_safe(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let owner = owner_name(rng);
    let members = format!(
        "    address {owner};\n\
         \n\
             modifier onlyOwner() {{\n\
                 require(msg.sender == {owner}, \"not owner\");\n\
                 _;\n\
             }}\n\
         \n\
             constructor() {{\n\
                 {owner} = msg.sender;\n\
             }}\n\
         \n\
             function kill() public onlyOwner() {{\n\
                 selfdestruct({owner});\n\
             }}"
    );
    at_level(
        level,
        c,
        &members,
        "require(msg.sender == owner);\nselfdestruct(owner);",
    )
}

fn owner_write_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let owner = owner_name(rng);
    let f = fn_name(rng, &["setOwner", "changeOwner", "updateAdmin", "transferOwnership"]);
    let members = format!(
        "    address {owner};\n\
         \n\
             constructor() {{\n\
                 {owner} = msg.sender;\n\
             }}\n\
         \n\
             function {f}(address newOwner) public {{\n\
                 {owner} = newOwner;\n\
             }}\n\
         \n\
             function withdraw() public {{\n\
                 require(msg.sender == {owner});\n\
                 msg.sender.transfer(this.balance);\n\
             }}"
    );
    let stmts = format!("{owner} = newOwner;");
    at_level(level, c, &members, &stmts)
}

fn owner_write_safe(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let owner = owner_name(rng);
    let members = format!(
        "    address {owner};\n\
         \n\
             constructor() {{\n\
                 {owner} = msg.sender;\n\
             }}\n\
         \n\
             function setOwner(address newOwner) public {{\n\
                 require(msg.sender == {owner});\n\
                 {owner} = newOwner;\n\
             }}\n\
         \n\
             function withdraw() public {{\n\
                 require(msg.sender == {owner});\n\
                 msg.sender.transfer(this.balance);\n\
             }}"
    );
    let stmts = format!("require(msg.sender == {owner});\n{owner} = newOwner;");
    at_level(level, c, &members, &stmts)
}

fn proxy_delegate_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let lib = pick(rng, &["lib", "library_", "impl", "logic", "delegate"]);
    let members = format!(
        "    address {lib};\n\
         \n\
             function() payable {{\n\
                 {lib}.delegatecall(msg.data);\n\
             }}"
    );
    let stmts = format!("{lib}.delegatecall(msg.data);");
    at_level(level, c, &members, &stmts)
}

fn proxy_delegate_safe(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let lib = pick(rng, &["lib", "impl", "logic"]);
    let members = format!(
        "    address {lib};\n\
         \n\
             function() payable {{\n\
                 require(msg.data.length == 0);\n\
                 require({lib}.delegatecall(msg.data));\n\
             }}"
    );
    let stmts = format!(
        "require(msg.data.length == 0);\nrequire({lib}.delegatecall(msg.data));"
    );
    at_level(level, c, &members, &stmts)
}

fn timestamp_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let deadline = pick(rng, &["deadline", "endTime", "closing", "expiry"]);
    let f = fn_name(rng, &["claim", "finish", "settle", "closeRound"]);
    let members = format!(
        "    uint {deadline};\n\
             uint pot;\n\
         \n\
             function {f}() public {{\n\
                 if (block.timestamp > {deadline}) {{\n\
                     msg.sender.transfer(pot);\n\
                 }}\n\
             }}"
    );
    let stmts = format!(
        "if (block.timestamp > {deadline}) {{\n    msg.sender.transfer(pot);\n}}"
    );
    at_level(level, c, &members, &stmts)
}

fn timestamp_safe(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let members = "    uint lastSeen;\n\
         \n\
             function ping() public {\n\
                 lastSeen = block.timestamp;\n\
             }"
        .to_string();
    let _ = rng;
    at_level(level, c, &members, "lastSeen = block.timestamp;")
}

fn randomness_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let players = pick(rng, &["players", "entries", "tickets", "participants"]);
    let f = fn_name(rng, &["draw", "pickWinner", "roll", "spin"]);
    let source = pick(rng, &["block.timestamp", "block.difficulty", "block.number"]);
    let members = format!(
        "    address[] {players};\n\
         \n\
             function enter() public payable {{\n\
                 {players}.push(msg.sender);\n\
             }}\n\
         \n\
             function {f}() public {{\n\
                 uint winner = uint(keccak256({source})) % {players}.length;\n\
                 {players}[winner].transfer(this.balance);\n\
             }}"
    );
    let stmts = format!(
        "uint winner = uint(keccak256({source})) % {players}.length;\n\
         {players}[winner].transfer(this.balance);"
    );
    at_level(level, c, &members, &stmts)
}

fn randomness_safe(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let members = "    uint deadline;\n\
         \n\
             function expired() public returns (bool) {\n\
                 return block.number > deadline;\n\
             }"
        .to_string();
    let _ = rng;
    at_level(level, c, &members, "bool late = block.number > deadline;")
}

fn overflow_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let bal = balances_name(rng);
    let to = pick(rng, &["to", "dst", "recipient"]);
    let v = amount_name(rng);
    let members = format!(
        "    mapping(address => uint) {bal};\n\
         \n\
             function transfer(address {to}, uint {v}) public {{\n\
                 {bal}[msg.sender] -= {v};\n\
                 {bal}[{to}] += {v};\n\
             }}"
    );
    let stmts = format!(
        "{bal}[msg.sender] -= {v};\n{bal}[{to}] += {v};"
    );
    at_level(level, c, &members, &stmts)
}

fn overflow_safe(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let bal = balances_name(rng);
    let to = pick(rng, &["to", "dst", "recipient"]);
    let v = amount_name(rng);
    let members = format!(
        "    mapping(address => uint) {bal};\n\
         \n\
             function transfer(address {to}, uint {v}) public {{\n\
                 require(msg.data.length >= 68);\n\
                 require({bal}[msg.sender] >= {v});\n\
                 {bal}[msg.sender] -= {v};\n\
                 {bal}[{to}] += {v};\n\
             }}"
    );
    let stmts = format!(
        "require(msg.data.length >= 68);\nrequire({bal}[msg.sender] >= {v});\n\
         {bal}[msg.sender] -= {v};\n{bal}[{to}] += {v};"
    );
    at_level(level, c, &members, &stmts)
}

fn short_address_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let to = pick(rng, &["to", "dest", "receiver"]);
    let amt = amount_name(rng);
    let members = format!(
        "    function pay(address {to}, uint {amt}) public {{\n\
                 require({amt} > 0);\n\
                 {to}.transfer({amt});\n\
             }}"
    );
    let stmts = format!("{to}.transfer({amt});");
    at_level(level, c, &members, &stmts)
}

fn short_address_safe(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let to = pick(rng, &["to", "dest", "receiver"]);
    let amt = amount_name(rng);
    let members = format!(
        "    function pay(address {to}, uint {amt}) public {{\n\
                 require(msg.data.length == 68);\n\
                 {to}.transfer({amt});\n\
             }}"
    );
    let stmts = format!(
        "require(msg.data.length == 68);\n{to}.transfer({amt});"
    );
    at_level(level, c, &members, &stmts)
}

fn dos_loop_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let holders = pick(rng, &["holders", "investors", "members", "stakers"]);
    let owed = pick(rng, &["owed", "rewards", "dividends", "payouts"]);
    let members = format!(
        "    address[] {holders};\n\
             mapping(address => uint) {owed};\n\
         \n\
             function join() public payable {{\n\
                 {holders}.push(msg.sender);\n\
             }}\n\
         \n\
             function payAll() public {{\n\
                 for (uint i = 0; i < {holders}.length; i++) {{\n\
                     {holders}[i].transfer({owed}[{holders}[i]]);\n\
                 }}\n\
             }}"
    );
    let stmts = format!(
        "for (uint i = 0; i < {holders}.length; i++) {{\n\
             {holders}[i].transfer({owed}[{holders}[i]]);\n\
         }}"
    );
    at_level(level, c, &members, &stmts)
}

fn dos_loop_safe(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let owed = pick(rng, &["owed", "rewards", "dividends"]);
    let members = format!(
        "    mapping(address => uint) {owed};\n\
         \n\
             function claim() public {{\n\
                 uint amount = {owed}[msg.sender];\n\
                 {owed}[msg.sender] = 0;\n\
                 msg.sender.transfer(amount);\n\
             }}"
    );
    let stmts = format!(
        "uint amount = {owed}[msg.sender];\n\
         {owed}[msg.sender] = 0;\n\
         msg.sender.transfer(amount);"
    );
    at_level(level, c, &members, &stmts)
}

fn dos_king_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let king = pick(rng, &["king", "leader", "champion", "top"]);
    let members = format!(
        "    address {king};\n\
             uint prize;\n\
         \n\
             function claimThrone() public payable {{\n\
                 require(msg.value > prize);\n\
                 {king}.transfer(prize);\n\
                 {king} = msg.sender;\n\
                 prize = msg.value;\n\
             }}"
    );
    let stmts = format!(
        "require(msg.value > prize);\n\
         {king}.transfer(prize);\n\
         {king} = msg.sender;\n\
         prize = msg.value;"
    );
    at_level(level, c, &members, &stmts)
}

fn front_running_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let hash = pick(rng, &["answerHash", "secretHash", "puzzleHash", "solutionHash"]);
    let f = fn_name(rng, &["solve", "guess", "answer", "crack"]);
    let members = format!(
        "    bytes32 {hash};\n\
             uint prize;\n\
         \n\
             function {f}(string solution) public {{\n\
                 require(keccak256(solution) == {hash});\n\
                 msg.sender.transfer(prize);\n\
             }}"
    );
    let stmts = format!(
        "require(keccak256(solution) == {hash});\n\
         msg.sender.transfer(prize);"
    );
    at_level(level, c, &members, &stmts)
}

fn storage_pointer_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let s = pick(rng, &["Deposit", "Entry", "Record", "Position"]);
    let members = format!(
        "    address owner;\n\
             uint unlockTime;\n\
         \n\
             struct {s} {{\n\
                 uint amount;\n\
                 uint time;\n\
             }}\n\
         \n\
             function put() public payable {{\n\
                 {s} d;\n\
                 d.amount = msg.value;\n\
                 d.time = block.timestamp;\n\
             }}"
    );
    let stmts = format!(
        "{s} d;\nd.amount = msg.value;\nd.time = block.timestamp;"
    );
    at_level(level, c, &members, &stmts)
}

fn storage_pointer_safe(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let s = pick(rng, &["Deposit", "Entry", "Record"]);
    let members = format!(
        "    struct {s} {{\n\
                 uint amount;\n\
                 uint time;\n\
             }}\n\
         \n\
             function put() public payable {{\n\
                 {s} memory d;\n\
                 d.amount = msg.value;\n\
                 d.time = block.timestamp;\n\
             }}"
    );
    let stmts = format!(
        "{s} memory d;\nd.amount = msg.value;\nd.time = block.timestamp;"
    );
    at_level(level, c, &members, &stmts)
}

fn clearable_collection_vulnerable(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let payees = pick(rng, &["payees", "beneficiaries", "recipients", "winners"]);
    let members = format!(
        "    address[] {payees};\n\
         \n\
             function reset() public {{\n\
                 delete {payees};\n\
             }}\n\
         \n\
             function payFirst() public {{\n\
                 {payees}[0].transfer(1 ether);\n\
             }}"
    );
    let stmts = format!("delete {payees};\n{payees}[0].transfer(1 ether);");
    at_level(level, c, &members, &stmts)
}

// ===== benign templates =====================================================

fn benign_erc20(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let supply = pick(rng, &["totalSupply", "supply", "cap"]);
    let members = format!(
        "    mapping(address => uint) balanceOf;\n\
             uint {supply};\n\
         \n\
             function transfer(address to, uint value) public returns (bool) {{\n\
                 require(balanceOf[msg.sender] >= value);\n\
                 require(msg.data.length >= 68);\n\
                 balanceOf[msg.sender] -= value;\n\
                 balanceOf[to] += value;\n\
                 return true;\n\
             }}\n\
         \n\
             function totalTokens() public returns (uint) {{\n\
                 return {supply};\n\
             }}"
    );
    at_level(
        level,
        c,
        &members,
        "require(balanceOf[msg.sender] >= value);\nbalanceOf[to] += value;",
    )
}

fn benign_voting(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let yes = pick(rng, &["yes", "approvals", "ayes"]);
    let no = pick(rng, &["no", "rejections", "nays"]);
    let members = format!(
        "    mapping(address => bool) voted;\n\
             uint {yes};\n\
             uint {no};\n\
         \n\
             function vote(bool support) public {{\n\
                 require(!voted[msg.sender]);\n\
                 voted[msg.sender] = true;\n\
                 if (support) {{\n\
                     {yes} += 1;\n\
                 }} else {{\n\
                     {no} += 1;\n\
                 }}\n\
             }}"
    );
    let stmts = format!(
        "require(!voted[msg.sender]);\nvoted[msg.sender] = true;\n{yes} += 1;"
    );
    at_level(level, c, &members, &stmts)
}

fn benign_getter_setter(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let field = pick(rng, &["price", "rate", "fee", "limit", "threshold", "quota"]);
    let owner = owner_name(rng);
    let members = format!(
        "    uint {field};\n\
             address {owner};\n\
         \n\
             constructor() {{\n\
                 {owner} = msg.sender;\n\
             }}\n\
         \n\
             function set(uint v) public {{\n\
                 require(msg.sender == {owner});\n\
                 {field} = v;\n\
             }}\n\
         \n\
             function get() public returns (uint) {{\n\
                 return {field};\n\
             }}"
    );
    let stmts = format!("require(msg.sender == {owner});\n{field} = v;");
    at_level(level, c, &members, &stmts)
}

fn benign_events(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let event = pick(rng, &["Paid", "Deposited", "Logged", "Updated", "Received"]);
    let members = format!(
        "    event {event}(address indexed who, uint value);\n\
         \n\
             function deposit() public payable {{\n\
                 emit {event}(msg.sender, msg.value);\n\
             }}"
    );
    let stmts = format!("emit {event}(msg.sender, msg.value);");
    at_level(level, c, &members, &stmts)
}

fn benign_safemath(rng: &mut StdRng, level: Level) -> String {
    let _ = rng;
    let members = "    function add(uint a, uint b) internal pure returns (uint) {\n\
                 uint c = a + b;\n\
                 require(c >= a);\n\
                 return c;\n\
             }\n\
         \n\
             function sub(uint a, uint b) internal pure returns (uint) {\n\
                 require(b <= a);\n\
                 return a - b;\n\
             }"
        .to_string();
    match level {
        Level::Contract => format!("library SafeMath {{\n{members}\n}}"),
        Level::Function => members,
        Level::CoreFunction => extract_core_function(&members, "uint c = a + b;"),
        Level::Statements => "uint c = a + b;\nrequire(c >= a);".to_string(),
    }
}

fn benign_escrow(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let buyer = pick(rng, &["buyer", "payer", "client"]);
    let seller = pick(rng, &["seller", "payee", "vendor"]);
    let members = format!(
        "    address {buyer};\n\
             address {seller};\n\
             bool released;\n\
         \n\
             constructor(address s) {{\n\
                 {buyer} = msg.sender;\n\
                 {seller} = s;\n\
             }}\n\
         \n\
             function release() public {{\n\
                 require(msg.sender == {buyer});\n\
                 require(!released);\n\
                 released = true;\n\
                 {seller}.transfer(this.balance);\n\
             }}"
    );
    let stmts = format!(
        "require(msg.sender == {buyer});\nreleased = true;\n{seller}.transfer(this.balance);"
    );
    at_level(level, c, &members, &stmts)
}

/// A benign pattern that pattern-based analysis flags as Front Running —
/// the §6.5 FP class of "harmless patterns to delegate allowances of money
/// transfers being reported as Front Running issues".
fn benign_reward_claim(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let rewards = pick(rng, &["rewards", "bounty", "refund", "dividend"]);
    let members = format!(
        "    uint {rewards};\n\
         \n\
             function fund() public payable {{\n\
                 {rewards} += msg.value;\n\
             }}\n\
         \n\
             function claim() public {{\n\
                 require({rewards} > 0);\n\
                 msg.sender.transfer({rewards});\n\
             }}"
    );
    let stmts = format!("require({rewards} > 0);\nmsg.sender.transfer({rewards});");
    at_level(level, c, &members, &stmts)
}

/// A benign use of block values that pattern-based analysis flags as Bad
/// Randomness — the §6.5 FP class of "a legitimate block number use
/// incorrectly flagged".
fn benign_block_id(rng: &mut StdRng, level: Level) -> String {
    let c = contract_name(rng);
    let series = pick(rng, &["seriesId", "batchId", "epochId"]);
    let members = format!(
        "    uint {series};\n\
             event Matched(address who);\n\
         \n\
             function tag() public {{\n\
                 uint id = uint(keccak256(block.number)) % 1000000;\n\
                 if (id == {series}) {{\n\
                     emit Matched(msg.sender);\n\
                 }}\n\
             }}"
    );
    let stmts = format!(
        "uint id = uint(keccak256(block.number)) % 1000000;\nif (id == {series}) {{\n    emit Matched(msg.sender);\n}}"
    );
    at_level(level, c, &members, &stmts)
}

fn benign_interface(rng: &mut StdRng, level: Level) -> String {
    let name = pick(rng, &["IERC20", "IToken", "IVault", "IOracle"]);
    let text = format!(
        "interface {name} {{\n\
             function transfer(address to, uint256 value) external returns (bool);\n\
             function balanceOf(address who) external view returns (uint256);\n\
         }}"
    );
    match level {
        Level::Contract => text,
        Level::Function | Level::CoreFunction => {
            "function balanceOf(address who) external view returns (uint256);".to_string()
        }
        Level::Statements => "uint b = token.balanceOf(msg.sender);".to_string(),
    }
}

/// All vulnerable templates, one (or more) per CCC query.
pub fn vulnerable_templates() -> Vec<Template> {
    vec![
        Template { name: "reentrancy_withdraw", vuln: Some(QueryId::Reentrancy), render: reentrancy_vulnerable },
        Template { name: "unchecked_send", vuln: Some(QueryId::UncheckedCall), render: unchecked_send_vulnerable },
        Template { name: "tx_origin_auth", vuln: Some(QueryId::AcTxOrigin), render: tx_origin_vulnerable },
        Template { name: "open_selfdestruct", vuln: Some(QueryId::AcSelfDestruct), render: selfdestruct_vulnerable },
        Template { name: "open_owner_write", vuln: Some(QueryId::AcUnrestrictedWrite), render: owner_write_vulnerable },
        Template { name: "proxy_delegate", vuln: Some(QueryId::AcDefaultProxyDelegate), render: proxy_delegate_vulnerable },
        Template { name: "timestamp_payout", vuln: Some(QueryId::TimestampDependence), render: timestamp_vulnerable },
        Template { name: "block_lottery", vuln: Some(QueryId::BadRandomnessSource), render: randomness_vulnerable },
        Template { name: "overflow_token", vuln: Some(QueryId::ArithmeticOverflow), render: overflow_vulnerable },
        Template { name: "short_address_pay", vuln: Some(QueryId::ShortAddressCall), render: short_address_vulnerable },
        Template { name: "payout_loop", vuln: Some(QueryId::DosExpensiveLoop), render: dos_loop_vulnerable },
        Template { name: "king_of_ether", vuln: Some(QueryId::DosExternalCallState), render: dos_king_vulnerable },
        Template { name: "guessing_game", vuln: Some(QueryId::FrontRunnableBenefit), render: front_running_vulnerable },
        Template { name: "storage_pointer", vuln: Some(QueryId::UninitializedStoragePointer), render: storage_pointer_vulnerable },
        Template { name: "clearable_payees", vuln: Some(QueryId::DosClearableCollection), render: clearable_collection_vulnerable },
    ]
}

/// Mitigated counterparts and everyday benign templates.
pub fn benign_templates() -> Vec<Template> {
    vec![
        Template { name: "reentrancy_safe", vuln: None, render: reentrancy_safe },
        Template { name: "checked_send", vuln: None, render: unchecked_send_safe },
        Template { name: "msg_sender_auth", vuln: None, render: tx_origin_safe },
        Template { name: "guarded_selfdestruct", vuln: None, render: selfdestruct_safe },
        Template { name: "guarded_owner_write", vuln: None, render: owner_write_safe },
        Template { name: "sanitized_proxy", vuln: None, render: proxy_delegate_safe },
        Template { name: "timestamp_bookkeeping", vuln: None, render: timestamp_safe },
        Template { name: "block_deadline", vuln: None, render: randomness_safe },
        Template { name: "guarded_token", vuln: None, render: overflow_safe },
        Template { name: "payload_checked_pay", vuln: None, render: short_address_safe },
        Template { name: "pull_payments", vuln: None, render: dos_loop_safe },
        Template { name: "memory_struct", vuln: None, render: storage_pointer_safe },
        Template { name: "erc20_basic", vuln: None, render: benign_erc20 },
        Template { name: "voting", vuln: None, render: benign_voting },
        Template { name: "getter_setter", vuln: None, render: benign_getter_setter },
        Template { name: "event_logger", vuln: None, render: benign_events },
        Template { name: "safemath_lib", vuln: None, render: benign_safemath },
        Template { name: "escrow", vuln: None, render: benign_escrow },
        Template { name: "erc20_interface", vuln: None, render: benign_interface },
        Template { name: "reward_claim", vuln: None, render: benign_reward_claim },
        Template { name: "block_id", vuln: None, render: benign_block_id },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc::Checker;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn all_templates_parse_at_all_levels() {
        let mut r = rng();
        for template in vulnerable_templates().iter().chain(&benign_templates()) {
            for level in [Level::Contract, Level::Function, Level::Statements] {
                let g = template.render(&mut r, level);
                assert!(
                    solidity::parse_snippet(&g.text).is_ok(),
                    "template {} at {level:?} does not parse:\n{}",
                    template.name,
                    g.text
                );
            }
        }
    }

    #[test]
    fn vulnerable_templates_trigger_their_query() {
        let mut r = rng();
        let checker = Checker::new();
        for template in vulnerable_templates() {
            let g = template.render(&mut r, Level::Contract);
            let findings = checker.check_snippet(&g.text).unwrap();
            let expected = template.vuln.unwrap();
            assert!(
                findings.iter().any(|f| f.query == expected),
                "template {} does not trigger {expected:?}; findings {:?}\n{}",
                template.name,
                findings.iter().map(|f| f.query).collect::<Vec<_>>(),
                g.text
            );
        }
    }

    #[test]
    fn benign_templates_do_not_trigger_their_counterpart() {
        let mut r = rng();
        let checker = Checker::new();
        // Map each safe counterpart to the query it mitigates.
        let expectations: &[(&str, QueryId)] = &[
            ("reentrancy_safe", QueryId::Reentrancy),
            ("checked_send", QueryId::UncheckedCall),
            ("msg_sender_auth", QueryId::AcTxOrigin),
            ("guarded_selfdestruct", QueryId::AcSelfDestruct),
            ("guarded_owner_write", QueryId::AcUnrestrictedWrite),
            ("sanitized_proxy", QueryId::AcDefaultProxyDelegate),
            ("timestamp_bookkeeping", QueryId::TimestampDependence),
            ("block_deadline", QueryId::BadRandomnessSource),
            ("guarded_token", QueryId::ArithmeticOverflow),
            ("payload_checked_pay", QueryId::ShortAddressCall),
            ("memory_struct", QueryId::UninitializedStoragePointer),
        ];
        for (name, query) in expectations {
            let template = benign_templates()
                .into_iter()
                .find(|t| t.name == *name)
                .unwrap();
            let g = template.render(&mut r, Level::Contract);
            let findings = checker.check_snippet(&g.text).unwrap();
            assert!(
                !findings.iter().any(|f| f.query == *query),
                "safe template {name} still triggers {query:?}:\n{}",
                g.text
            );
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let t = &vulnerable_templates()[0];
        let a = t.render(&mut rng(), Level::Contract);
        let b = t.render(&mut rng(), Level::Contract);
        assert_eq!(a.text, b.text);
    }

    #[test]
    fn name_pools_create_type_ii_variety() {
        let t = vulnerable_templates()
            .into_iter()
            .find(|t| t.name == "reentrancy_withdraw")
            .unwrap();
        let mut r = rng();
        let instances: Vec<String> =
            (0..10).map(|_| t.render(&mut r, Level::Contract).text).collect();
        let distinct: std::collections::HashSet<&String> = instances.iter().collect();
        assert!(distinct.len() > 3, "expected identifier variety, got {distinct:?}");
    }
}
