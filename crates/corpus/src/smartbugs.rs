//! SmartBugs-Curated analog (§4.6.1 of the paper).
//!
//! A labelled vulnerability dataset with the same shape as SmartBugs
//! Curated after the paper's preprocessing: 140 Solidity files across 9
//! DASP categories carrying 204 labelled vulnerabilities (the "Other"
//! category is excluded, as in the paper).
//!
//! Each category mixes three instance kinds, calibrated to the detection
//! profile Table 1 reports for CCC:
//!
//! * **easy** — the canonical vulnerable pattern (CCC's base pattern
//!   matches; labels = CCC findings on the instance, all true),
//! * **hard** — genuinely vulnerable variants whose shape defeats
//!   pattern-based analysis (bogus guards, cross-function flows,
//!   hash-free entropy) — the false negatives,
//! * **bait** — unlabelled extra occurrences that pattern matching
//!   reports anyway — the false positives (the paper's location-mismatch
//!   and unlikely-exploitation FP classes).
//!
//! The derived *Functions* and *Statements* datasets (§4.6.1) re-render
//! every labelled instance at function/statement hierarchy level.

use crate::templates::{benign_templates, vulnerable_templates, Level, Template};
use ccc::{Checker, Dasp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Kind of a dataset instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceKind {
    /// Canonical vulnerable pattern; every CCC finding on it is labelled.
    Easy,
    /// Genuinely vulnerable but analysis-defeating; one label, no finding.
    Hard,
    /// Unlabelled pattern that detectors report — an FP source.
    Bait,
    /// Benign filler.
    Filler,
}

/// One code piece of a curated file, kept at all three hierarchy levels so
/// the Functions/Statements datasets can be derived.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    /// Contract-level rendering (what goes into the file).
    pub contract: String,
    /// Function-level rendering of the same instance.
    pub function: String,
    /// Statement-level rendering of the same instance.
    pub statements: String,
    /// Instance kind.
    pub kind: InstanceKind,
    /// Labels this instance contributes.
    pub labels: usize,
}

/// A labelled dataset file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CuratedFile {
    /// File name (`access_control/unprotected_03.sol` style).
    pub name: String,
    /// Category of the file's test set.
    pub category: Dasp,
    /// The instances composing the file.
    pub instances: Vec<Instance>,
}

impl CuratedFile {
    /// Full source of the file.
    pub fn source(&self) -> String {
        self.instances
            .iter()
            .map(|i| i.contract.as_str())
            .collect::<Vec<_>>()
            .join("\n\n")
    }

    /// Number of labels in the file.
    pub fn labels(&self) -> usize {
        self.instances.iter().map(|i| i.labels).sum()
    }
}

/// The curated dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CuratedDataset {
    /// All files.
    pub files: Vec<CuratedFile>,
}

impl CuratedDataset {
    /// Total labels across all files (the paper's 204).
    pub fn total_labels(&self) -> usize {
        self.files.iter().map(|f| f.labels()).sum()
    }

    /// Labels per category.
    pub fn labels_of(&self, category: Dasp) -> usize {
        self.files
            .iter()
            .filter(|f| f.category == category)
            .map(|f| f.labels())
            .sum()
    }
}

/// Per-category targets: (label count, easy labels, hard labels, baits,
/// file count) — the label counts are the paper's Table 1 `#` column; the
/// easy/hard split is calibrated to CCC's reported per-category recall;
/// baits to its FP column.
const CATEGORY_PLAN: &[(Dasp, usize, usize, usize, usize)] = &[
    // (category, easy, hard, bait, files)  — labels = easy + hard
    (Dasp::AccessControl, 10, 11, 2, 18),
    (Dasp::Arithmetic, 17, 6, 1, 15),
    (Dasp::BadRandomness, 12, 19, 2, 8),
    (Dasp::DenialOfService, 6, 1, 1, 6),
    (Dasp::FrontRunning, 2, 5, 1, 4),
    (Dasp::Reentrancy, 28, 4, 3, 31),
    (Dasp::ShortAddresses, 1, 0, 1, 1),
    (Dasp::TimeManipulation, 7, 0, 2, 5),
    (Dasp::UncheckedLowLevelCalls, 75, 0, 0, 52),
];

/// Build the curated dataset deterministically.
pub fn smartbugs_curated(seed: u64) -> CuratedDataset {
    let _span = telemetry::span("corpus/smartbugs_curated");
    let mut rng = StdRng::seed_from_u64(seed);
    let checker = Checker::new();
    let easy_templates = vulnerable_templates();
    let benign = benign_templates();

    let mut dataset = CuratedDataset::default();
    for &(category, easy_target, hard_target, baits, file_count) in CATEGORY_PLAN {
        let mut instances: Vec<Instance> = Vec::new();

        // Easy instances until the label target is met exactly.
        let mut easy_labels = 0usize;
        while easy_labels < easy_target {
            let remaining = easy_target - easy_labels;
            let instance = render_easy(category, remaining, &easy_templates, &checker, &mut rng);
            easy_labels += instance.labels;
            instances.push(instance);
        }
        // Hard instances: one label each.
        for _ in 0..hard_target {
            instances.push(render_hard(category, &mut rng));
        }
        // Baits: zero labels, at least one finding.
        for _ in 0..baits {
            let mut bait =
                render_easy(category, usize::MAX, &easy_templates, &checker, &mut rng);
            bait.kind = InstanceKind::Bait;
            bait.labels = 0;
            instances.push(bait);
        }

        // Distribute instances over the category's files, topping files up
        // with benign filler that is clean for this category.
        let mut files: Vec<CuratedFile> = (0..file_count)
            .map(|i| CuratedFile {
                name: format!("{}/{}_{:02}.sol", slug(category), slug(category), i),
                category,
                instances: Vec::new(),
            })
            .collect();
        for (i, instance) in instances.into_iter().enumerate() {
            files[i % file_count].instances.push(instance);
        }
        for file in &mut files {
            if rng.gen_bool(0.5) {
                if let Some(filler) = clean_filler(category, &benign, &checker, &mut rng) {
                    file.instances.push(filler);
                }
            }
        }
        dataset.files.extend(files);
    }
    dataset
}

fn slug(category: Dasp) -> String {
    category.name().to_lowercase().replace(' ', "_")
}

/// Render an easy instance; if it would overshoot the remaining label
/// budget, fall back to a single-finding minimal variant.
fn render_easy(
    category: Dasp,
    remaining: usize,
    templates: &[Template],
    checker: &Checker,
    rng: &mut StdRng,
) -> Instance {
    let category_templates: Vec<&Template> = templates
        .iter()
        .filter(|t| t.vuln.map(|q| q.category()) == Some(category))
        .collect();
    assert!(!category_templates.is_empty(), "no template for {category:?}");
    for _attempt in 0..12 {
        let template = category_templates[rng.gen_range(0..category_templates.len())];
        let instance = render_all_levels(template, rng, InstanceKind::Easy);
        let findings = count_category_findings(checker, &instance.contract, category);
        if findings >= 1 && findings <= remaining {
            return Instance { labels: findings, ..instance };
        }
        if findings >= 1 && remaining == usize::MAX {
            return Instance { labels: findings, ..instance };
        }
    }
    // Fall back to the minimal single-finding variant.
    let minimal = minimal_variant(category);
    let findings = count_category_findings(checker, &minimal.contract, category);
    assert!(findings >= 1, "minimal variant for {category:?} finds nothing");
    Instance { labels: findings.min(remaining.max(1)), ..minimal }
}

fn count_category_findings(checker: &Checker, source: &str, category: Dasp) -> usize {
    checker
        .check_snippet(source)
        .map(|fs| fs.iter().filter(|f| f.category() == category).count())
        .unwrap_or(0)
}

fn render_all_levels(template: &Template, rng: &mut StdRng, kind: InstanceKind) -> Instance {
    // Clone the RNG so all three levels render the same identifier choices.
    let mut c_rng = rng.clone();
    let mut f_rng = rng.clone();
    let mut s_rng = rng.clone();
    let contract = template.render(&mut c_rng, Level::Contract);
    // The Functions dataset stores each labelled function *alone* in its
    // own file (§4.6.1) — cross-function context is lost by construction.
    let function = template.render(&mut f_rng, Level::CoreFunction);
    let statements = template.render(&mut s_rng, Level::Statements);
    // Advance the shared RNG as far as the contract rendering did.
    *rng = c_rng;
    Instance {
        contract: contract.text,
        function: function.text,
        statements: statements.text,
        kind,
        labels: 1,
    }
}

/// A minimal single-finding vulnerable instance per category.
fn minimal_variant(category: Dasp) -> Instance {
    let (contract, function, statements) = match category {
        Dasp::Arithmetic => (
            "contract Counter { uint total; function bump(uint v) public { total += v; } }",
            "function bump(uint v) public { total += v; }",
            "total += v;",
        ),
        Dasp::UncheckedLowLevelCalls => (
            "contract Payer { function pay(address to) public { to.send(1 ether); } }",
            "function pay(address to) public { to.send(1 ether); }",
            "to.send(1 ether);",
        ),
        Dasp::AccessControl => (
            "contract Killable { function die() public { selfdestruct(msg.sender); } }",
            "function die() public { selfdestruct(msg.sender); }",
            "selfdestruct(msg.sender);",
        ),
        Dasp::Reentrancy => (
            "contract R { mapping(address => uint) credit; \
             function take() public { msg.sender.call{value: credit[msg.sender]}(\"\"); \
             credit[msg.sender] = 0; } }",
            "function take() public { msg.sender.call{value: credit[msg.sender]}(\"\"); \
             credit[msg.sender] = 0; }",
            "msg.sender.call{value: credit[msg.sender]}(\"\");\ncredit[msg.sender] = 0;",
        ),
        Dasp::TimeManipulation => (
            "contract T { uint start; uint pot; function go() public { \
             require(block.timestamp >= start); msg.sender.transfer(pot); } }",
            "function go() public { require(block.timestamp >= start); msg.sender.transfer(pot); }",
            "require(block.timestamp >= start);\nmsg.sender.transfer(pot);",
        ),
        Dasp::BadRandomness => (
            "contract L { address[] ps; function d() public { \
             uint w = uint(keccak256(block.timestamp)) % ps.length; ps[w].transfer(1); } }",
            "function d() public { uint w = uint(keccak256(block.timestamp)) % ps.length; \
             ps[w].transfer(1); }",
            "uint w = uint(keccak256(block.timestamp)) % ps.length;\nps[w].transfer(1);",
        ),
        Dasp::DenialOfService => (
            "contract D { address king; uint prize; function claim() public payable { \
             require(msg.value > prize); king.transfer(prize); king = msg.sender; \
             prize = msg.value; } }",
            "function claim() public payable { require(msg.value > prize); \
             king.transfer(prize); king = msg.sender; prize = msg.value; }",
            "require(msg.value > prize);\nking.transfer(prize);\nking = msg.sender;",
        ),
        Dasp::FrontRunning => (
            "contract F { bytes32 h; uint prize; function solve(string s) public { \
             require(keccak256(s) == h); msg.sender.transfer(prize); } }",
            "function solve(string s) public { require(keccak256(s) == h); \
             msg.sender.transfer(prize); }",
            "require(keccak256(s) == h);\nmsg.sender.transfer(prize);",
        ),
        Dasp::ShortAddresses => (
            "contract S { function pay(address to, uint v) public { require(v > 0); \
             to.transfer(v); } }",
            "function pay(address to, uint v) public { require(v > 0); to.transfer(v); }",
            "to.transfer(v);",
        ),
        Dasp::UnknownUnknowns => (
            "contract U { struct P { uint a; } function f() public payable { P p; \
             p.a = msg.value; } }",
            "function f() public payable { P p; p.a = msg.value; }",
            "P p;\np.a = msg.value;",
        ),
    };
    Instance {
        contract: contract.to_string(),
        function: function.to_string(),
        statements: statements.to_string(),
        kind: InstanceKind::Easy,
        labels: 1,
    }
}

/// A genuinely vulnerable, detection-defeating instance for a category.
fn render_hard(category: Dasp, rng: &mut StdRng) -> Instance {
    let variant = rng.gen_range(0..2u8);
    let (contract, function, statements) = hard_variant(category, variant);
    Instance {
        contract: contract.to_string(),
        function: function.to_string(),
        statements: statements.to_string(),
        kind: InstanceKind::Hard,
        labels: 1,
    }
}

fn hard_variant(category: Dasp, variant: u8) -> (&'static str, &'static str, &'static str) {
    match (category, variant) {
        // Bogus guard: msg.sender is checked, but against nothing useful.
        (Dasp::AccessControl, 0) => (
            "contract Owned { address owner; \
             function withdraw() public { require(msg.sender == owner); \
             msg.sender.transfer(this.balance); } \
             function setOwner(address o) public { \
             require(msg.sender != address(0)); owner = o; } }",
            "function setOwner(address o) public { \
             require(msg.sender != address(0)); owner = o; }",
            "require(msg.sender != address(0));\nowner = o;",
        ),
        (Dasp::AccessControl, _) => (
            // Initialization function that anyone may call again.
            "contract Init { address owner; bool ready; \
             function initialize(address o) public { \
             require(msg.sender == o); owner = o; ready = true; } \
             function withdraw() public { require(msg.sender == owner); \
             msg.sender.transfer(this.balance); } }",
            "function initialize(address o) public { require(msg.sender == o); \
             owner = o; ready = true; }",
            "require(msg.sender == o);\nowner = o;",
        ),
        // Red-herring comparison that does not actually bound the operand.
        (Dasp::Arithmetic, 0) => (
            "contract C { mapping(address => uint) bal; \
             function burn(uint v) public { require(v >= 1); \
             bal[msg.sender] -= v; } }",
            "function burn(uint v) public { require(v >= 1); bal[msg.sender] -= v; }",
            "require(v >= 1);\nbal[msg.sender] -= v;",
        ),
        (Dasp::Arithmetic, _) => (
            "contract C { uint total; \
             function lock(uint time) public { \
             if (time < block.timestamp) { time = block.timestamp; } \
             total = time * 2; g(total); } }",
            "function lock(uint time) public { \
             if (time < block.timestamp) { time = block.timestamp; } \
             total = time * 2; g(total); }",
            "if (time < block.timestamp) { time = block.timestamp; }\ntotal = time * 2;",
        ),
        // Digit-extraction entropy without hash or modulo operators.
        (Dasp::BadRandomness, 0) => (
            "contract Dice { uint prize; \
             function roll() public payable { uint lucky = block.timestamp; \
             uint digit = lucky - (lucky / 10) * 10; \
             if (digit == 7) { msg.sender.transfer(prize); } } }",
            "function roll() public payable { uint lucky = block.timestamp; \
             uint digit = lucky - (lucky / 10) * 10; \
             if (digit == 7) { msg.sender.transfer(prize); } }",
            "uint lucky = block.timestamp;\nuint digit = lucky - (lucky / 10) * 10;",
        ),
        (Dasp::BadRandomness, _) => (
            // Stored blockhash seed consumed in a later transaction.
            "contract Seeded { bytes32 seed; address winner; \
             function commit() public { seed = blockhash(block.number); } \
             function redeem() public { winner = msg.sender; g(seed); } }",
            "function commit() public { seed = blockhash(block.number); }",
            "seed = blockhash(block.number);",
        ),
        // Gas-griefing loop with no data-flow handle for the detector.
        (Dasp::DenialOfService, _) => (
            "contract G { uint total; uint minGas; \
             function churn() public { while (gasleft() > minGas) { total += 1; } } }",
            "function churn() public { while (gasleft() > minGas) { total += 1; } }",
            "while (gasleft() > minGas) { total += 1; }",
        ),
        // The ERC20 approve race.
        (Dasp::FrontRunning, 0) => (
            "contract T { mapping(address => mapping(address => uint)) allowance; \
             function approve(address spender, uint value) public { \
             allowance[msg.sender][spender] = value; } }",
            "function approve(address spender, uint value) public { \
             allowance[msg.sender][spender] = value; }",
            "allowance[msg.sender][spender] = value;",
        ),
        (Dasp::FrontRunning, _) => (
            // Fee-setting race: a queued price change can be front-run.
            "contract M { uint price; address owner; \
             function setPrice(uint p) public { require(msg.sender == owner); price = p; } \
             function buy() public payable { require(msg.value >= price); \
             items[msg.sender] += 1; } }",
            "function buy() public payable { require(msg.value >= price); \
             items[msg.sender] += 1; }",
            "require(msg.value >= price);\nitems[msg.sender] += 1;",
        ),
        // Cross-function reentrancy: the call and the balance update live
        // in different functions.
        (Dasp::Reentrancy, _) => (
            "contract X { mapping(address => uint) credit; \
             function pay() public { msg.sender.call{value: credit[msg.sender]}(\"\"); } \
             function settle() public { credit[msg.sender] = 0; } }",
            "function pay() public { msg.sender.call{value: credit[msg.sender]}(\"\"); }",
            "msg.sender.call{value: credit[msg.sender]}(\"\");",
        ),
        // Categories whose plans have no hard instances.
        _ => (
            "contract Empty { }",
            "function noop() public { }",
            "uint noop;",
        ),
    }
}

/// Benign filler that does not trigger findings of the file's category.
fn clean_filler(
    category: Dasp,
    benign: &[Template],
    checker: &Checker,
    rng: &mut StdRng,
) -> Option<Instance> {
    for _ in 0..10 {
        let template = &benign[rng.gen_range(0..benign.len())];
        let instance = render_all_levels(template, rng, InstanceKind::Filler);
        if count_category_findings(checker, &instance.contract, category) == 0 {
            return Some(Instance { labels: 0, ..instance });
        }
    }
    None
}

/// Derive the *Functions* dataset: every labelled instance re-rendered at
/// function level (§4.6.1).
pub fn derive_functions(dataset: &CuratedDataset) -> CuratedDataset {
    derive(dataset, |i| i.function.clone())
}

/// Derive the *Statements* dataset: every labelled instance re-rendered at
/// statement level (§4.6.1).
pub fn derive_statements(dataset: &CuratedDataset) -> CuratedDataset {
    derive(dataset, |i| i.statements.clone())
}

fn derive(dataset: &CuratedDataset, project: impl Fn(&Instance) -> String) -> CuratedDataset {
    CuratedDataset {
        files: dataset
            .files
            .iter()
            .map(|f| CuratedFile {
                name: f.name.clone(),
                category: f.category,
                instances: f
                    .instances
                    .iter()
                    .map(|i| Instance {
                        contract: project(i),
                        function: i.function.clone(),
                        statements: i.statements.clone(),
                        kind: i.kind,
                        labels: i.labels,
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Score a detector's findings against a file's labels under the paper's
/// counting rule (§4.6.2): only findings of the file's own category count;
/// up to `labels` of them are true positives, the surplus are false
/// positives.
pub fn score_file(findings_in_category: usize, labels: usize) -> (usize, usize) {
    let tp = findings_in_category.min(labels);
    let fp = findings_in_category.saturating_sub(labels);
    (tp, fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_matches_the_paper() {
        let ds = smartbugs_curated(77);
        assert_eq!(ds.files.len(), 140);
        assert_eq!(ds.total_labels(), 204);
        assert_eq!(ds.labels_of(Dasp::UncheckedLowLevelCalls), 75);
        assert_eq!(ds.labels_of(Dasp::Reentrancy), 32);
        assert_eq!(ds.labels_of(Dasp::ShortAddresses), 1);
        assert_eq!(ds.labels_of(Dasp::AccessControl), 21);
        assert_eq!(ds.labels_of(Dasp::Arithmetic), 23);
        assert_eq!(ds.labels_of(Dasp::BadRandomness), 31);
        assert_eq!(ds.labels_of(Dasp::DenialOfService), 7);
        assert_eq!(ds.labels_of(Dasp::FrontRunning), 7);
        assert_eq!(ds.labels_of(Dasp::TimeManipulation), 7);
    }

    #[test]
    fn all_files_parse() {
        let ds = smartbugs_curated(77);
        for file in &ds.files {
            assert!(
                solidity::parse_snippet(&file.source()).is_ok(),
                "{} does not parse",
                file.name
            );
        }
    }

    #[test]
    fn hard_instances_are_missed_by_ccc() {
        let checker = Checker::new();
        let ds = smartbugs_curated(77);
        for file in &ds.files {
            for instance in &file.instances {
                if instance.kind == InstanceKind::Hard {
                    let findings =
                        count_category_findings(&checker, &instance.contract, file.category);
                    assert_eq!(
                        findings, 0,
                        "hard instance in {} is detected:\n{}",
                        file.name, instance.contract
                    );
                }
            }
        }
    }

    #[test]
    fn easy_label_counts_match_ccc_findings() {
        let checker = Checker::new();
        let ds = smartbugs_curated(77);
        for file in &ds.files {
            for instance in &file.instances {
                if instance.kind == InstanceKind::Easy {
                    let findings =
                        count_category_findings(&checker, &instance.contract, file.category);
                    assert!(
                        findings >= instance.labels,
                        "easy instance in {} under-detects: {} < {}",
                        file.name,
                        findings,
                        instance.labels
                    );
                }
            }
        }
    }

    #[test]
    fn derived_datasets_preserve_labels() {
        let ds = smartbugs_curated(77);
        let functions = derive_functions(&ds);
        let statements = derive_statements(&ds);
        assert_eq!(functions.total_labels(), 204);
        assert_eq!(statements.total_labels(), 204);
        // Derived sources are snippets, not the full contracts.
        let full_len: usize = ds.files.iter().map(|f| f.source().len()).sum();
        let fn_len: usize = functions.files.iter().map(|f| f.source().len()).sum();
        assert!(fn_len < full_len);
    }

    #[test]
    fn scoring_rule() {
        assert_eq!(score_file(3, 3), (3, 0));
        assert_eq!(score_file(5, 3), (3, 2));
        assert_eq!(score_file(1, 3), (1, 0));
        assert_eq!(score_file(0, 0), (0, 0));
    }

    #[test]
    fn deterministic() {
        let a = smartbugs_curated(9);
        let b = smartbugs_curated(9);
        assert_eq!(a.files.len(), b.files.len());
        assert_eq!(a.files[3].source(), b.files[3].source());
    }
}
