//! Synthetic Q&A website corpus (§6.1 of the paper).
//!
//! Generates posts and code snippets with the composition the paper
//! measured on Stack Overflow and the Ethereum Stack Exchange (Table 4):
//! a mix of genuine Solidity (contract-, function- and statement-level),
//! pseudo-code that mentions Solidity keywords but does not parse,
//! JavaScript (web3 client code), and prose — plus exact-duplicate
//! snippets, heavy-tailed view counts and posting timestamps.
//!
//! Everything is deterministic in the seed; the `scale` factor shrinks the
//! full-scale population (25,653 posts / 39,434 snippets) for tests and
//! grows it back for the full study run.

use crate::templates::{benign_templates, vulnerable_templates, Level, Template};
use ccc::QueryId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Q&A site of a post (Table 4 splits counts by site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Site {
    /// stackoverflow.com
    StackOverflow,
    /// ethereum.stackexchange.com
    EthereumStackExchange,
}

impl Site {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Site::StackOverflow => "Stack Overflow",
            Site::EthereumStackExchange => "Ethereum Stack Exchange",
        }
    }
}

/// Ground truth of a generated snippet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SnippetTruth {
    /// Genuine Solidity from a template.
    Solidity {
        /// Template family (clone ground truth).
        family: String,
        /// Seeded vulnerability, if the template is vulnerable.
        vuln: Option<QueryId>,
        /// Exact duplicate of an earlier snippet id, if deduplication
        /// should collapse it.
        duplicate_of: Option<u64>,
    },
    /// Solidity-keyword-bearing pseudo-code (passes the keyword filter,
    /// fails parsing).
    Pseudo,
    /// JavaScript / web3 client code (fails the keyword filter).
    JavaScript,
    /// Plain prose (fails the keyword filter).
    Prose,
}

/// A Q&A post.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QaPost {
    /// Post id.
    pub id: u64,
    /// Hosting site.
    pub site: Site,
    /// View count ν (heavy-tailed).
    pub views: u64,
    /// Posting day on the study timeline (0 = genesis, ~3000 = crawl date).
    pub created_day: u32,
}

/// A code snippet extracted from a post.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QaSnippet {
    /// Snippet id.
    pub id: u64,
    /// Owning post id.
    pub post: u64,
    /// Raw snippet text.
    pub text: String,
    /// Generator ground truth.
    pub truth: SnippetTruth,
    /// Latent adoption propensity: how attractive the snippet is for
    /// copy-pasting developers. Correlated with (but not determined by)
    /// the post's view count — the mechanism behind Table 5's weak
    /// Spearman correlations.
    pub adoption_weight: f64,
}

impl QaSnippet {
    /// Whether this snippet is genuine Solidity per ground truth.
    pub fn is_solidity(&self) -> bool {
        matches!(self.truth, SnippetTruth::Solidity { .. })
    }

    /// The seeded vulnerability, if any.
    pub fn seeded_vuln(&self) -> Option<QueryId> {
        match &self.truth {
            SnippetTruth::Solidity { vuln, .. } => *vuln,
            _ => None,
        }
    }
}

/// The generated corpus.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QaCorpus {
    /// All posts.
    pub posts: Vec<QaPost>,
    /// All snippets, in post order.
    pub snippets: Vec<QaSnippet>,
}

impl QaCorpus {
    /// Posts of one site.
    pub fn posts_of(&self, site: Site) -> impl Iterator<Item = &QaPost> {
        self.posts.iter().filter(move |p| p.site == site)
    }

    /// Snippets of one site.
    pub fn snippets_of(&self, site: Site) -> impl Iterator<Item = &QaSnippet> {
        let site_posts: std::collections::HashSet<u64> =
            self.posts_of(site).map(|p| p.id).collect();
        self.snippets.iter().filter(move |s| site_posts.contains(&s.post))
    }

    /// The post of a snippet.
    pub fn post_of(&self, snippet: &QaSnippet) -> &QaPost {
        &self.posts[snippet.post as usize]
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QaConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of the paper's full-scale corpus to generate (1.0 ≈
    /// 39,434 snippets).
    pub scale: f64,
}

impl Default for QaConfig {
    fn default() -> Self {
        QaConfig { seed: 0x50DD, scale: 0.05 }
    }
}

/// Paper-reported full-scale post counts (Table 4).
const FULL_POSTS_SO: f64 = 7_370.0;
const FULL_POSTS_ESE: f64 = 18_283.0;
/// Snippets per post, per site (12,111/7,370 and 27,323/18,283).
const SNIPPETS_PER_POST_SO: f64 = 1.643;
const SNIPPETS_PER_POST_ESE: f64 = 1.494;

/// Timeline length in days (posts until 2023-06-30).
pub const TIMELINE_DAYS: u32 = 3_000;

/// Generate a corpus.
pub fn generate_qa(config: QaConfig) -> QaCorpus {
    let _span = telemetry::span("corpus/generate_qa");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut corpus = QaCorpus::default();
    let vulnerable = vulnerable_templates();
    let benign = benign_templates();

    let n_so = (FULL_POSTS_SO * config.scale).round().max(1.0) as usize;
    let n_ese = (FULL_POSTS_ESE * config.scale).round().max(1.0) as usize;

    // Parsable snippet texts seen so far, for duplicate injection.
    let mut parsable_pool: Vec<(u64, String, String, Option<QueryId>)> = Vec::new();

    for (site, n_posts, per_post) in [
        (Site::StackOverflow, n_so, SNIPPETS_PER_POST_SO),
        (Site::EthereumStackExchange, n_ese, SNIPPETS_PER_POST_ESE),
    ] {
        for _ in 0..n_posts {
            let post_id = corpus.posts.len() as u64;
            // Heavy-tailed views: log-uniform between 30 and ~300k.
            let views = 10f64.powf(rng.gen_range(1.5..5.5)) as u64;
            let created_day = rng.gen_range(0..TIMELINE_DAYS);
            corpus.posts.push(QaPost { id: post_id, site, views, created_day });

            // 1 or 2+ snippets per post, expectation = per_post.
            let n_snippets = if rng.gen_bool((per_post - 1.0).clamp(0.05, 0.95)) { 2 } else { 1 };
            for _ in 0..n_snippets {
                let id = corpus.snippets.len() as u64;
                let snippet =
                    gen_snippet(id, post_id, views, &mut rng, &vulnerable, &benign, &mut parsable_pool);
                corpus.snippets.push(snippet);
            }
        }
    }
    corpus
}

#[allow(clippy::too_many_arguments)]
fn gen_snippet(
    id: u64,
    post: u64,
    views: u64,
    rng: &mut StdRng,
    vulnerable: &[Template],
    benign: &[Template],
    parsable_pool: &mut Vec<(u64, String, String, Option<QueryId>)>,
) -> QaSnippet {
    // Adoption propensity: weakly monotone in views, noised — this is
    // what makes the Table 5 correlations low but nonzero.
    let noise = (rng.gen_range(-1.2f64..1.2)).exp();
    let adoption_weight = (views as f64).powf(0.5) * noise;

    // Content mix calibrated to the Table 4 funnel:
    //   ~20% JavaScript, ~15% prose (fail the keyword filter)
    //   ~15% pseudo-code (passes the filter, fails parsing)
    //   ~50% genuine Solidity, of which ~6% exact duplicates.
    let roll: f64 = rng.gen();
    if roll < 0.20 {
        return QaSnippet {
            id,
            post,
            text: javascript_snippet(rng),
            truth: SnippetTruth::JavaScript,
            adoption_weight,
        };
    }
    if roll < 0.348 {
        return QaSnippet {
            id,
            post,
            text: prose_snippet(rng),
            truth: SnippetTruth::Prose,
            adoption_weight,
        };
    }
    if roll < 0.498 {
        return QaSnippet {
            id,
            post,
            text: pseudo_snippet(rng),
            truth: SnippetTruth::Pseudo,
            adoption_weight,
        };
    }

    // Genuine Solidity. ~6% duplicates of an earlier snippet.
    if !parsable_pool.is_empty() && rng.gen_bool(0.061) {
        let (orig_id, text, family, vuln) =
            parsable_pool[rng.gen_range(0..parsable_pool.len())].clone();
        return QaSnippet {
            id,
            post,
            text,
            truth: SnippetTruth::Solidity {
                family,
                vuln,
                duplicate_of: Some(orig_id),
            },
            adoption_weight,
        };
    }

    // Vulnerable with the Table 7 rate (4,596 / 18,660 ≈ 24.6%).
    let template = if rng.gen_bool(0.246) {
        &vulnerable[rng.gen_range(0..vulnerable.len())]
    } else {
        &benign[rng.gen_range(0..benign.len())]
    };
    // Hierarchy-level mix (§6.1): 54.2% contract, 38% function, 7.8%
    // statements.
    let level = match rng.gen_range(0..1000) {
        0..=541 => Level::Contract,
        542..=921 => Level::Function,
        _ => Level::Statements,
    };
    let generated = template.render(rng, level);
    // Author jitter: different posters write *different code* for the same
    // problem — extra helper functions, extra statements, changed
    // constants, renamed identifiers, different formatting. This keeps
    // snippets of one family from being textual clones of each other (they
    // are merely similar), so clone matches attach to individual snippets
    // rather than whole families.
    let with_extras = add_author_extras(&generated.text, level, rng);
    let text = match rng.gen_range(0..10) {
        0..=4 => crate::mutate::type_iii(&with_extras, rng),
        5..=7 => crate::mutate::type_ii(&with_extras, rng),
        8 => crate::mutate::type_i(&with_extras, rng),
        _ => with_extras,
    };
    parsable_pool.push((
        id,
        text.clone(),
        generated.family.to_string(),
        generated.vuln,
    ));
    QaSnippet {
        id,
        post,
        text,
        truth: SnippetTruth::Solidity {
            family: generated.family.to_string(),
            vuln: generated.vuln,
            duplicate_of: None,
        },
        adoption_weight,
    }
}

/// Append 0–2 author-specific helper functions (or statements) to a
/// snippet. The helpers are self-contained, trigger no CCC query and
/// mitigate none, but change the snippet's *function composition* — the
/// structural identity clone detection keys on.
fn add_author_extras(text: &str, level: Level, rng: &mut StdRng) -> String {
    // At least one extra: no two authors post the exact same project
    // context, and single-function snippets of ubiquitous idioms would
    // otherwise "appear" in half the chain.
    let count = rng.gen_range(1..=2);
    let mut extras = Vec::new();
    for _ in 0..count {
        let magic = rng.gen_range(2..5000);
        let extra = match rng.gen_range(0..6) {
            0 => format!(
                "    function version() public returns (uint) {{\n        return {magic};\n    }}"
            ),
            1 => format!(
                "    uint window;\n\n    function configure() public {{\n        window = {magic};\n        ready = window > {};\n    }}",
                magic / 2
            ),
            2 => format!(
                "    event Trace{magic}(address who);\n\n    function trace() public {{\n        emit Trace{magic}(msg.sender);\n    }}"
            ),
            3 => format!(
                "    function threshold() public returns (uint) {{\n        if (level > {magic}) {{\n            return level;\n        }}\n        return {magic};\n    }}"
            ),
            4 => format!(
                "    uint step;\n\n    function advance() public {{\n        step = {magic};\n    }}"
            ),
            _ => format!(
                "    function whoami() public returns (address, uint) {{\n        return (msg.sender, {magic});\n    }}"
            ),
        };
        extras.push(extra);
    }
    let extras = extras.join("\n\n");
    match level {
        Level::Contract => match text.rfind('}') {
            Some(pos) => format!("{}\n{extras}\n}}", &text[..pos].trim_end()),
            None => format!("{text}\n{extras}"),
        },
        Level::Function | Level::CoreFunction => format!("{text}\n\n{extras}"),
        // Statement-level snippets get extra surrounding statements
        // instead of helper functions.
        Level::Statements => {
            let mut out = text.to_string();
            for _ in 0..count {
                let magic = rng.gen_range(2..5000);
                let line = match rng.gen_range(0..4) {
                    0 => format!("uint checkpoint = {magic};"),
                    1 => format!("round = {magic};"),
                    2 => "lastSeen = block.timestamp;".to_string(),
                    _ => format!("limit = {magic};"),
                };
                if rng.gen_bool(0.5) {
                    out = format!("{line}\n{out}");
                } else {
                    out = format!("{out}\n{line}");
                }
            }
            out
        }
    }
}

fn javascript_snippet(rng: &mut StdRng) -> String {
    let variants = [
        "const balance = await web3.eth.getBalance(account);\nconsole.log(balance);",
        "const instance = await MyContract.deployed();\nconst result = await instance.get.call();\nconsole.log(result.toNumber());",
        "web3.eth.sendTransaction({from: accounts[0], to: receiver, value: amount}, (err, hash) => {\n  if (err) console.error(err);\n});",
        "const signer = provider.getSigner();\nconst tx = await wallet.connect(signer).deposit({value: ethers.utils.parseEther(\"1.0\")});\nawait tx.wait();",
        "module.exports = function(deployer) {\n  deployer.deploy(Bank);\n};",
        "const Web3 = require('web3');\nconst web3 = new Web3('http://localhost:8545');",
    ];
    variants[rng.gen_range(0..variants.len())].to_string()
}

fn prose_snippet(rng: &mut StdRng) -> String {
    let variants = [
        "You should check the balance before sending the transaction, otherwise it will fail silently.",
        "Error: VM Exception while processing transaction: out of gas",
        "truffle migrate --network ropsten\ntruffle console",
        "The gas cost depends on how much storage your method touches.",
        "1) deploy the proxy 2) point it at the implementation 3) initialize",
        "Deploy failed with: invalid opcode. Check your constructor arguments.",
    ];
    variants[rng.gen_range(0..variants.len())].to_string()
}

fn pseudo_snippet(rng: &mut StdRng) -> String {
    let variants = [
        "mapping of address to uint balances\nif balance too low then revert the transaction\nelse transfer the amount using msg",
        "contract MyToken\n  when transfer called with more than balance => revert\n  otherwise update mapping and emit",
        "function withdraw:\n  check balances mapping for msg caller\n  if ok then send the ether using delegatecall maybe?",
        "pragma something\ncontract ??? is Ownable but also must keccak256 the seed somehow",
        "use msg to get the caller, then selfdestruct if owner (pseudo code, adapt to your contract)",
        "for each holder in holders do transfer(holder, dividend) // how do I write this in solidity with mapping?",
    ];
    variants[rng.gen_range(0..variants.len())].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::looks_like_solidity;

    fn small_corpus() -> QaCorpus {
        generate_qa(QaConfig { seed: 1, scale: 0.02 })
    }

    #[test]
    fn deterministic_generation() {
        let a = generate_qa(QaConfig { seed: 5, scale: 0.01 });
        let b = generate_qa(QaConfig { seed: 5, scale: 0.01 });
        assert_eq!(a.snippets.len(), b.snippets.len());
        assert_eq!(a.snippets[0].text, b.snippets[0].text);
        let c = generate_qa(QaConfig { seed: 6, scale: 0.01 });
        assert_ne!(
            a.snippets.iter().map(|s| &s.text).collect::<Vec<_>>(),
            c.snippets.iter().map(|s| &s.text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn site_split_matches_table_4_ratio() {
        let corpus = small_corpus();
        let so = corpus.posts_of(Site::StackOverflow).count() as f64;
        let ese = corpus.posts_of(Site::EthereumStackExchange).count() as f64;
        let ratio = ese / so;
        // Paper: 18,283 / 7,370 ≈ 2.48.
        assert!((2.0..3.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn ground_truth_agrees_with_keyword_filter() {
        let corpus = small_corpus();
        let mut sol_pass = 0usize;
        let mut sol_total = 0usize;
        let mut other_pass = 0usize;
        let mut other_total = 0usize;
        for snippet in &corpus.snippets {
            let passes = looks_like_solidity(&snippet.text);
            match snippet.truth {
                // JavaScript and prose should rarely pass the filter; a
                // few false passes are realistic (English prose mentioning
                // `storage` or `payable` fools the real filter too).
                SnippetTruth::JavaScript | SnippetTruth::Prose => {
                    other_total += 1;
                    if passes {
                        other_pass += 1;
                    }
                }
                // Genuine Solidity and pseudo-code should mostly pass; the
                // filter legitimately loses keyword-poor statement-level
                // snippets (the paper's funnel has the same loss).
                SnippetTruth::Solidity { .. } | SnippetTruth::Pseudo => {
                    sol_total += 1;
                    if passes {
                        sol_pass += 1;
                    }
                }
            }
        }
        assert!(
            sol_pass as f64 / sol_total as f64 > 0.75,
            "{sol_pass}/{sol_total}"
        );
        assert!(
            (other_pass as f64) < other_total as f64 * 0.25,
            "too many false passes: {other_pass}/{other_total}"
        );
    }

    #[test]
    fn solidity_snippets_parse_pseudo_does_not() {
        let corpus = small_corpus();
        let mut sol_parse = 0usize;
        let mut sol_total = 0usize;
        for snippet in &corpus.snippets {
            match &snippet.truth {
                SnippetTruth::Solidity { .. } => {
                    sol_total += 1;
                    if solidity::parse_snippet(&snippet.text).is_ok() {
                        sol_parse += 1;
                    }
                }
                SnippetTruth::Pseudo => {
                    assert!(
                        solidity::parse_snippet(&snippet.text).is_err(),
                        "pseudo parses: {}",
                        snippet.text
                    );
                }
                _ => {}
            }
        }
        assert_eq!(sol_parse, sol_total, "all template snippets parse");
    }

    #[test]
    fn vulnerable_rate_near_paper() {
        let corpus = generate_qa(QaConfig { seed: 2, scale: 0.1 });
        let solidity: Vec<_> = corpus.snippets.iter().filter(|s| s.is_solidity()).collect();
        let vulnerable = solidity.iter().filter(|s| s.seeded_vuln().is_some()).count();
        let rate = vulnerable as f64 / solidity.len() as f64;
        // Paper: 4,596 / 18,660 ≈ 24.6%.
        assert!((0.18..0.32).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn duplicates_reference_existing_snippets() {
        let corpus = generate_qa(QaConfig { seed: 3, scale: 0.1 });
        let mut dupes = 0;
        for snippet in &corpus.snippets {
            if let SnippetTruth::Solidity { duplicate_of: Some(orig), .. } = &snippet.truth {
                dupes += 1;
                let original = &corpus.snippets[*orig as usize];
                assert_eq!(original.text, snippet.text);
            }
        }
        assert!(dupes > 0, "expected some duplicates at this scale");
    }

    #[test]
    fn views_are_heavy_tailed() {
        let corpus = small_corpus();
        let mut views: Vec<u64> = corpus.posts.iter().map(|p| p.views).collect();
        views.sort_unstable();
        let median = views[views.len() / 2];
        let max = *views.last().unwrap();
        assert!(max > median * 20, "median {median}, max {max}");
    }
}
