//! Honeypot smart-contract dataset — the substitute for the labelled
//! dataset of Torres et al. used to evaluate CCD against SmartEmbed
//! (§5.7.1, Table 3).
//!
//! Honeypots are scams whose creators keep reusing the same "technique"
//! and only slightly modify the surrounding code: ideal clone-detection
//! ground truth. The generator reproduces that structure: 9 honeypot
//! families (the types of Table 3); each family consists of several
//! *clusters* — one scammer's lineage of near-identical deployments
//! (Type I/II mutations of a cluster seed) — while different clusters of
//! the same family share only the technique, not the text.
//!
//! Ground truth marks every intra-family pair as a true clone (the
//! labelling of the original dataset), which is why textual detectors show
//! high precision but low recall on it — exactly the regime of Table 3.

use crate::mutate::{mutate, CloneType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The nine honeypot types of Torres et al. (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HoneypotType {
    /// Balance Disorder.
    BalanceDisorder,
    /// Type Deduction Overflow.
    TypeDeductionOverflow,
    /// Hidden Transfer.
    HiddenTransfer,
    /// Unexecuted Call.
    UnexecutedCall,
    /// Uninitialised Struct.
    UninitialisedStruct,
    /// Hidden State Update.
    HiddenStateUpdate,
    /// Inheritance Disorder.
    InheritanceDisorder,
    /// Skip Empty String Literal.
    SkipEmptyStringLiteral,
    /// Straw Man Contract.
    StrawManContract,
}

impl HoneypotType {
    /// Display name (Table 3 row label).
    pub fn name(self) -> &'static str {
        match self {
            HoneypotType::BalanceDisorder => "Balance Disorder",
            HoneypotType::TypeDeductionOverflow => "Type Deduction Overflow",
            HoneypotType::HiddenTransfer => "Hidden Transfer",
            HoneypotType::UnexecutedCall => "Unexecuted Call",
            HoneypotType::UninitialisedStruct => "Uninitialised Struct",
            HoneypotType::HiddenStateUpdate => "Hidden State Update",
            HoneypotType::InheritanceDisorder => "Inheritance Disorder",
            HoneypotType::SkipEmptyStringLiteral => "Skip Empty String Literal",
            HoneypotType::StrawManContract => "Straw Man Contract",
        }
    }

    /// All types, in Table 3 order.
    pub const ALL: &'static [HoneypotType] = &[
        HoneypotType::BalanceDisorder,
        HoneypotType::TypeDeductionOverflow,
        HoneypotType::HiddenTransfer,
        HoneypotType::UnexecutedCall,
        HoneypotType::UninitialisedStruct,
        HoneypotType::HiddenStateUpdate,
        HoneypotType::InheritanceDisorder,
        HoneypotType::SkipEmptyStringLiteral,
        HoneypotType::StrawManContract,
    ];
}

/// A honeypot contract of the dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Honeypot {
    /// Contract id (index into the dataset).
    pub id: u64,
    /// Honeypot family.
    pub ty: HoneypotType,
    /// Cluster within the family (one scammer's lineage).
    pub cluster: usize,
    /// Source code.
    pub source: String,
}

/// The honeypot dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HoneypotDataset {
    /// All contracts (the original dataset has 379).
    pub contracts: Vec<Honeypot>,
}

impl HoneypotDataset {
    /// Ground truth: contracts of the same family are clones.
    pub fn is_clone_pair(&self, a: u64, b: u64) -> bool {
        a != b && self.contracts[a as usize].ty == self.contracts[b as usize].ty
    }

    /// Number of ground-truth (unordered) clone pairs.
    pub fn clone_pair_count(&self) -> usize {
        HoneypotType::ALL
            .iter()
            .map(|ty| {
                let n = self.contracts.iter().filter(|c| c.ty == *ty).count();
                n * (n - 1) / 2
            })
            .sum()
    }
}

/// Family plan: (type, number of clusters, members per cluster) — sizes
/// proportional to the per-type pair counts of Table 3 (Hidden State
/// Update dominates), scaled to 379 contracts.
const FAMILY_PLAN: &[(HoneypotType, usize, usize)] = &[
    (HoneypotType::BalanceDisorder, 4, 7),
    (HoneypotType::TypeDeductionOverflow, 2, 7),
    (HoneypotType::HiddenTransfer, 5, 7),
    (HoneypotType::UnexecutedCall, 3, 4),
    (HoneypotType::UninitialisedStruct, 6, 8),
    (HoneypotType::HiddenStateUpdate, 10, 16),
    (HoneypotType::InheritanceDisorder, 5, 7),
    (HoneypotType::SkipEmptyStringLiteral, 3, 4),
    (HoneypotType::StrawManContract, 5, 7),
];

/// Generate the honeypot dataset (deterministic; 379 contracts with the
/// default plan).
pub fn honeypot_dataset(seed: u64) -> HoneypotDataset {
    let _span = telemetry::span("corpus/honeypot_dataset");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dataset = HoneypotDataset::default();
    for &(ty, clusters, members) in FAMILY_PLAN {
        let mut previous_seed: Option<String> = None;
        for cluster in 0..clusters {
            // Most clusters are independent re-implementations of the
            // technique (only the core is shared — textually hard to
            // match); some are "siblings": one scammer forking another's
            // lineage with statement-level edits (Type III — matchable).
            let seed_source = match &previous_seed {
                Some(prev) if cluster % 3 == 1 => mutate(prev, CloneType::TypeIII, &mut rng),
                _ => {
                    // Independent re-implementation: the shared technique
                    // core, structurally diverged (extra statements, edits)
                    // so it is only a *semantic* sibling of other clusters.
                    let fresh = technique(ty, cluster, &mut rng);
                    let once = mutate(&fresh, CloneType::TypeIII, &mut rng);
                    mutate(&once, CloneType::TypeIII, &mut rng)
                }
            };
            previous_seed = Some(seed_source.clone());
            for member in 0..members {
                let id = dataset.contracts.len() as u64;
                let source = if member == 0 {
                    seed_source.clone()
                } else {
                    // Lineage members are light mutations of the seed.
                    let clone_type = if rng.gen_bool(0.5) {
                        CloneType::TypeI
                    } else {
                        CloneType::TypeII
                    };
                    mutate(&seed_source, clone_type, &mut rng)
                };
                dataset.contracts.push(Honeypot { id, ty, cluster, source });
            }
        }
    }
    dataset
}

/// Render one cluster seed: the family technique with cluster-specific
/// surrounding code, so intra-family/cross-cluster similarity is partial.
fn technique(ty: HoneypotType, cluster: usize, rng: &mut StdRng) -> String {
    let names = ["Gift", "Prize", "Bonus", "Jackpot", "Reward", "Lucky", "Win", "Gold",
                 "Multi", "Quick"];
    let family_idx = HoneypotType::ALL.iter().position(|t| *t == ty).unwrap_or(0);
    let name = format!("{}{}", names[(family_idx + cluster) % names.len()], cluster);
    let filler = cluster_filler(family_idx, cluster, rng);
    let core = match ty {
        HoneypotType::BalanceDisorder => "    function multiplicate(address adr) public payable {\n\
                 if (msg.value >= this.balance) {\n\
                     adr.transfer(this.balance + msg.value);\n\
                 }\n\
             }".to_string(),
        HoneypotType::TypeDeductionOverflow => "    function Test() public payable {\n\
                 if (msg.value > 0.1 ether) {\n\
                     uint256 multi = 0;\n\
                     uint256 amountToTransfer = 0;\n\
                     for (var i = 0; i < 2 * msg.value; i++) {\n\
                         multi = i * 2;\n\
                         if (multi < amountToTransfer) {\n\
                             break;\n\
                         }\n\
                         amountToTransfer = multi;\n\
                     }\n\
                     msg.sender.transfer(amountToTransfer);\n\
                 }\n\
             }".to_string(),
        HoneypotType::HiddenTransfer => "    function withdrawAll() public {\n\
                 require(msg.sender == owner);\n\
                 msg.sender.transfer(this.balance);\n\
             }\n\
             \n\
                 function () payable {                                     \n\
                 if (msg.value >= 1 ether) { owner.transfer(msg.value); }\n\
             }".to_string(),
        HoneypotType::UnexecutedCall => "    function divest(uint amount) public {\n\
                 if (investors[msg.sender] < amount) {\n\
                     throw;\n\
                 }\n\
                 investors[msg.sender] -= amount;\n\
                 this.loggedTransfer(amount, \"\", msg.sender, owner);\n\
             }".to_string(),
        HoneypotType::UninitialisedStruct => "    struct SeedComponent {\n\
                 uint component;\n\
                 uint prize;\n\
             }\n\
         \n\
             function play(uint number) public payable {\n\
                 SeedComponent s;\n\
                 s.component = number;\n\
                 s.prize = msg.value;\n\
             }".to_string(),
        HoneypotType::HiddenStateUpdate => "    uint256 hashPass;\n\
         \n\
             function SetPass(bytes32 pass) public payable {\n\
                 if (msg.value > 1 ether) {\n\
                     hashPass = uint(pass);\n\
                 }\n\
             }\n\
         \n\
             function GetGift(bytes32 pass) public payable {\n\
                 if (hashPass == uint(pass)) {\n\
                     msg.sender.transfer(this.balance);\n\
                 }\n\
             }".to_string(),
        HoneypotType::InheritanceDisorder => "    address public owner;\n\
             uint public jackpot;\n\
         \n\
             function takePrize() public payable {\n\
                 if (msg.value >= jackpot) {\n\
                     msg.sender.transfer(this.balance);\n\
                 }\n\
                 jackpot += msg.value;\n\
             }".to_string(),
        HoneypotType::SkipEmptyStringLiteral => "    function divest(uint amount) public {\n\
                 loggedTransfer(amount, \"\", msg.sender, owner);\n\
             }\n\
         \n\
             function loggedTransfer(uint amount, bytes data, address target, address currentOwner) public {\n\
                 target.call{value: amount}(data);\n\
             }".to_string(),
        HoneypotType::StrawManContract => "    address stranger;\n\
         \n\
             function withdraw(uint amount) public {\n\
                 require(msg.sender == owner);\n\
                 stranger.delegatecall(msg.data);\n\
                 msg.sender.transfer(amount);\n\
             }".to_string(),
    };
    // Cluster-specific constructor shapes keep independent lineages
    // textually apart even in their boilerplate.
    let ctor = match (family_idx + cluster) % 3 {
        0 => "constructor() {\n        owner = msg.sender;\n    }".to_string(),
        1 => format!(
            "constructor() {{\n        owner = msg.sender;\n        started = {};\n        investors[msg.sender] = 1;\n    }}",
            7 + family_idx * 13 + cluster * 3
        ),
        _ => format!(
            "constructor() payable {{\n        owner = msg.sender;\n        started = {};\n    }}",
            11 + family_idx * 17 + cluster * 5
        ),
    };
    format!(
        "contract {name} {{\n    address owner;\n    uint started;\n    mapping(address => uint) investors;\n\n\
         {ctor}\n\n{core}\n\n{filler}\n}}"
    )
}

/// Cluster-specific surrounding code: genuinely different project code per
/// cluster (rendered from the benign template library plus cluster-unique
/// constants), so independent re-implementations of a technique share only
/// the small core — which keeps textual recall low, as in Table 3.
fn cluster_filler(family_idx: usize, cluster: usize, rng: &mut StdRng) -> String {
    let benign = crate::templates::benign_templates();
    let mut parts: Vec<String> = Vec::new();
    let count = 2 + cluster % 3;
    for i in 0..count {
        let template = &benign[(family_idx * 7 + cluster * 5 + i * 3) % benign.len()];
        let rendered = template.render(rng, crate::templates::Level::Function).text;
        // Each lineage hand-rolls its own bookkeeping: inject a
        // cluster-unique statement into the filler so two lineages that
        // happen to pick the same template still diverge textually.
        let marker = 10_000 + family_idx * 997 + cluster * 101 + i * 13;
        parts.push(inject_after_first_brace(
            &rendered,
            &format!("        round = {marker};"),
        ));
    }
    // Cluster-unique constants and a per-family structural shape keep the
    // lineages apart after normalization.
    let magic = 1000 + family_idx * 211 + cluster * 37;
    let setup = match family_idx % 3 {
        0 => format!(
            "    uint fee;\n\n    function setup() public {{\n        fee = {magic};\n    }}"
        ),
        1 => format!(
            "    uint fee;\n    uint cap;\n\n    function setup() public {{\n        fee = {magic};\n        cap = {};\n        limit = fee * {};\n    }}",
            magic * 2,
            2 + family_idx + cluster
        ),
        _ => format!(
            "    uint fee;\n    uint cap;\n\n    function setup(uint base) public {{\n        require(msg.sender == owner);\n        if (base > {magic}) {{\n            fee = base;\n        }}\n        cap = base * {};\n    }}",
            3 + cluster
        ),
    };
    parts.push(setup);
    parts.join("\n\n")
}

/// Insert `stmt` on its own line right after the first *function* body
/// opening brace (struct/contract braces must stay statement-free).
fn inject_after_first_brace(source: &str, stmt: &str) -> String {
    let mut out = String::new();
    let mut injected = false;
    for line in source.lines() {
        out.push_str(line);
        out.push('\n');
        if !injected && line.trim_end().ends_with('{') && line.contains("function") {
            out.push_str(stmt);
            out.push('\n');
            injected = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_379_contracts() {
        let ds = honeypot_dataset(3);
        assert_eq!(ds.contracts.len(), 379);
    }

    #[test]
    fn all_honeypots_parse() {
        let ds = honeypot_dataset(3);
        for hp in &ds.contracts {
            assert!(
                solidity::parse_snippet(&hp.source).is_ok(),
                "honeypot {} ({:?}) does not parse:\n{}",
                hp.id,
                hp.ty,
                hp.source
            );
        }
    }

    #[test]
    fn clone_pairs_are_intra_family() {
        let ds = honeypot_dataset(3);
        assert!(ds.is_clone_pair(0, 1));
        let other_family = ds
            .contracts
            .iter()
            .find(|c| c.ty != ds.contracts[0].ty)
            .unwrap();
        assert!(!ds.is_clone_pair(0, other_family.id));
        assert!(!ds.is_clone_pair(5, 5));
    }

    #[test]
    fn pair_count_is_large_relative_to_contracts() {
        let ds = honeypot_dataset(3);
        // Table 3's TP counts are in the thousands because ground truth is
        // pairwise.
        assert!(ds.clone_pair_count() > 3_000, "{}", ds.clone_pair_count());
    }

    #[test]
    fn intra_cluster_members_are_textual_clones() {
        use ccd::{order_independent_similarity, CloneDetector};
        let ds = honeypot_dataset(3);
        let a = &ds.contracts[0];
        let b = ds
            .contracts
            .iter()
            .find(|c| c.cluster == a.cluster && c.ty == a.ty && c.id != a.id)
            .unwrap();
        let fa = CloneDetector::fingerprint_source(&a.source).unwrap();
        let fb = CloneDetector::fingerprint_source(&b.source).unwrap();
        assert!(
            order_independent_similarity(&fa, &fb) >= 70.0,
            "{}",
            order_independent_similarity(&fa, &fb)
        );
    }

    #[test]
    fn deterministic() {
        let a = honeypot_dataset(3);
        let b = honeypot_dataset(3);
        assert_eq!(a.contracts[17].source, b.contracts[17].source);
    }
}
