//! Synthetic deployed-contract corpus — the Smart Contract Sanctuary
//! substitute (§6.1 of the paper).
//!
//! Contracts are assembled from benign template instances; a controlled
//! fraction additionally embeds a (Type I/II/III-mutated) clone of a Q&A
//! snippet, optionally with a *mitigation patch* applied — the mechanism
//! behind contracts that contain a vulnerable snippet but validate as not
//! vulnerable (§6.4: 17,852 of 21,047 validated vulnerable; the rest
//! mitigated or diverged).
//!
//! Deployment timestamps mostly follow the snippet's posting date
//! (disseminator direction); a fraction of snippets is marked as coming
//! from a third-party source, in which case clones appear on both sides of
//! the posting date — washing out the view/adoption correlation for the
//! "All Snippets" group exactly as §6.2 hypothesizes.

use crate::mutate::{mutate, CloneType};
use crate::qa::{QaCorpus, QaSnippet, TIMELINE_DAYS};
use crate::templates::{benign_templates, Level};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Solidity compiler minor version of a deployed contract (§6.1 reports
/// the distribution 0.8: 59%, 0.6: 16%, 0.4: 13%, 0.5: 7.4%, 0.7: 4%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Compiler {
    /// pragma solidity ^0.4.x
    V04,
    /// pragma solidity ^0.5.x
    V05,
    /// pragma solidity ^0.6.x
    V06,
    /// pragma solidity ^0.7.x
    V07,
    /// pragma solidity ^0.8.x
    V08,
}

impl Compiler {
    /// Pragma text.
    pub fn pragma(self) -> &'static str {
        match self {
            Compiler::V04 => "pragma solidity ^0.4.24;",
            Compiler::V05 => "pragma solidity ^0.5.17;",
            Compiler::V06 => "pragma solidity ^0.6.12;",
            Compiler::V07 => "pragma solidity ^0.7.6;",
            Compiler::V08 => "pragma solidity ^0.8.19;",
        }
    }

    /// Whether arithmetic is checked by default.
    pub fn checked_arithmetic(self) -> bool {
        matches!(self, Compiler::V08)
    }
}

/// Ground truth of an embedded snippet clone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddedClone {
    /// The embedded snippet's id.
    pub snippet: u64,
    /// Mutation applied during embedding.
    pub clone_type: CloneType,
    /// Whether a mitigation patch was applied on top.
    pub mitigated: bool,
}

/// A deployed contract.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeployedContract {
    /// Contract id.
    pub id: u64,
    /// Deployment day on the study timeline.
    pub created_day: u32,
    /// Compiler version.
    pub compiler: Compiler,
    /// Full source code.
    pub source: String,
    /// Embedded snippet clones (ground truth).
    pub embedded: Vec<EmbeddedClone>,
    /// Exact duplicate of an earlier contract, if any (the §6.3
    /// deduplication step collapses these).
    pub duplicate_of: Option<u64>,
}

/// The generated contract corpus.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ContractCorpus {
    /// All contracts.
    pub contracts: Vec<DeployedContract>,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SanctuaryConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of the full-scale corpus (1.0 ≈ 323,328 contracts — far
    /// more than any in-process analysis needs; studies run at 0.01–0.1).
    pub scale: f64,
    /// Fraction of contracts embedding a snippet clone (paper: 135,408 /
    /// 323,328 ≈ 0.42).
    pub clone_rate: f64,
    /// Probability that an embedded vulnerable snippet is mitigated during
    /// adaptation.
    pub mitigation_rate: f64,
}

impl Default for SanctuaryConfig {
    fn default() -> Self {
        SanctuaryConfig { seed: 0xC0DE, scale: 0.01, clone_rate: 0.42, mitigation_rate: 0.15 }
    }
}

const FULL_CONTRACTS: f64 = 323_328.0;

/// Deployment runs two weeks past the snippet crawl (§6.1: contracts until
/// July 14, snippets until June 30).
const DEPLOY_DAYS: u32 = TIMELINE_DAYS + 14;

/// Generate the contract corpus against a Q&A corpus.
pub fn generate_contracts(config: SanctuaryConfig, qa: &QaCorpus) -> ContractCorpus {
    let _span = telemetry::span("corpus/generate_contracts");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = (FULL_CONTRACTS * config.scale).round().max(1.0) as usize;
    let benign = benign_templates();

    // Candidate snippets: genuine Solidity, originals only.
    let candidates: Vec<&QaSnippet> = qa
        .snippets
        .iter()
        .filter(|s| {
            matches!(
                &s.truth,
                crate::qa::SnippetTruth::Solidity { duplicate_of: None, .. }
            )
        })
        .collect();

    // Sampling weights: the adoption propensity, super-linearly
    // concentrated — a handful of canonical snippets accounts for most
    // copies (the paper's 135,408 containing contracts spread over only
    // 3,963 snippets).
    let weights: Vec<f64> = candidates.iter().map(|s| s.adoption_weight.powf(2.2)).collect();
    let total_weight: f64 = weights.iter().sum();

    // ~20% of snippets duplicate a third-party source: their clones are
    // spread over the whole timeline, including before the posting.
    let third_party: Vec<bool> = candidates
        .iter()
        .map(|_| rng.gen_bool(0.2))
        .collect();

    let mut corpus = ContractCorpus::default();
    for id in 0..n as u64 {
        // ~8% of clone-bearing contracts are exact re-deployments.
        if rng.gen_bool(0.05) {
            if let Some(original) = corpus
                .contracts
                .iter()
                .rev()
                .take(50)
                .find(|c| !c.embedded.is_empty())
            {
                let mut dup = original.clone();
                dup.id = id;
                dup.duplicate_of = Some(original.id);
                dup.created_day =
                    (original.created_day + rng.gen_range(1..200)).min(DEPLOY_DAYS - 1);
                corpus.contracts.push(dup);
                continue;
            }
        }

        let embeds_clone = rng.gen_bool(config.clone_rate) && !candidates.is_empty();
        let contract = if embeds_clone {
            let snippet = weighted_pick(&mut rng, &candidates, &weights, total_weight);
            let is_third_party = third_party[candidates
                .iter()
                .position(|s| s.id == snippet.id)
                .unwrap_or(0)];
            build_clone_contract(id, snippet, is_third_party, qa, config, &mut rng)
        } else {
            build_background_contract(id, &benign, &mut rng)
        };
        corpus.contracts.push(contract);
    }
    corpus
}

fn weighted_pick<'a>(
    rng: &mut StdRng,
    candidates: &[&'a QaSnippet],
    weights: &[f64],
    total_weight: f64,
) -> &'a QaSnippet {
    let mut target = rng.gen_range(0.0..total_weight.max(f64::MIN_POSITIVE));
    for (snippet, weight) in candidates.iter().zip(weights) {
        if target < *weight {
            return snippet;
        }
        target -= weight;
    }
    candidates[candidates.len() - 1]
}

fn compiler_for_day(day: u32, rng: &mut StdRng) -> Compiler {
    // Era-appropriate compiler with some stragglers on old versions.
    let base = match day {
        0..=799 => Compiler::V04,
        800..=1199 => Compiler::V05,
        1200..=1799 => Compiler::V06,
        1800..=2099 => Compiler::V07,
        _ => Compiler::V08,
    };
    if rng.gen_bool(0.09) {
        // The §6.1 observation: 9% of recent deployments use old compilers.
        match rng.gen_range(0..4) {
            0 => Compiler::V04,
            1 => Compiler::V05,
            2 => Compiler::V06,
            _ => Compiler::V07,
        }
    } else {
        base
    }
}

fn build_background_contract(
    id: u64,
    benign: &[crate::templates::Template],
    rng: &mut StdRng,
) -> DeployedContract {
    // Background deployments skew recent (the 0.8 era dominates, §6.1).
    let created_day = sample_recent_day(rng);
    let compiler = compiler_for_day(created_day, rng);
    let mut parts = vec![compiler.pragma().to_string()];
    let n_templates = rng.gen_range(1..=3);
    for _ in 0..n_templates {
        parts.push(benign[rng.gen_range(0..benign.len())].render(rng, Level::Contract).text);
    }
    DeployedContract {
        id,
        created_day,
        compiler,
        source: parts.join("\n\n"),
        embedded: vec![],
        duplicate_of: None,
    }
}

fn sample_recent_day(rng: &mut StdRng) -> u32 {
    // Quadratic skew towards the present: matches the compiler
    // distribution of §6.1 (59% of contracts on 0.8).
    let u: f64 = rng.gen();
    (u.sqrt() * DEPLOY_DAYS as f64) as u32
}

fn build_clone_contract(
    id: u64,
    snippet: &QaSnippet,
    third_party: bool,
    qa: &QaCorpus,
    config: SanctuaryConfig,
    rng: &mut StdRng,
) -> DeployedContract {
    let post_day = qa.post_of(snippet).created_day;
    let created_day = if third_party {
        rng.gen_range(0..DEPLOY_DAYS)
    } else {
        // Adoption lag after posting, exponential-ish.
        let lag = (rng.gen_range(0.0f64..1.0).ln() * -250.0) as u32;
        (post_day + 1 + lag).min(DEPLOY_DAYS - 1)
    };
    let compiler = compiler_for_day(created_day, rng);

    let clone_type = match rng.gen_range(0..10) {
        0..=2 => CloneType::TypeI,
        3..=6 => CloneType::TypeII,
        _ => CloneType::TypeIII,
    };
    let mut text = snippet.text.clone();
    let mut mitigated = false;
    if snippet.seeded_vuln().is_some() && rng.gen_bool(config.mitigation_rate) {
        if let crate::qa::SnippetTruth::Solidity { family, .. } = &snippet.truth {
            if let Some(patched) = mitigate_family(family, &text) {
                text = patched;
                mitigated = true;
            }
        }
    }
    let mutated = mutate(&text, clone_type, rng);

    // Wrap the snippet to its deployable form.
    let body = match solidity::parse_snippet(&mutated)
        .map(|u| u.snippet_level())
        .unwrap_or(solidity::SnippetLevel::Contract)
    {
        solidity::SnippetLevel::Contract => mutated,
        solidity::SnippetLevel::Function => {
            format!("contract Wrapped{id} {{\n{mutated}\n}}")
        }
        solidity::SnippetLevel::Statement => format!(
            "contract Wrapped{id} {{\n    function run() public payable {{\n{mutated}\n    }}\n}}"
        ),
    };

    let mut parts = vec![compiler.pragma().to_string(), body];
    // Surrounding project code.
    let benign = benign_templates();
    for _ in 0..rng.gen_range(0..=2) {
        parts.push(benign[rng.gen_range(0..benign.len())].render(rng, Level::Contract).text);
    }
    // A small fraction of contracts are huge (many filler contracts) —
    // these drive the validation timeouts of §6.4.
    if rng.gen_bool(0.02) {
        for _ in 0..rng.gen_range(12..30) {
            parts.push(benign[rng.gen_range(0..benign.len())].render(rng, Level::Contract).text);
        }
    }

    DeployedContract {
        id,
        created_day,
        compiler,
        source: parts.join("\n\n"),
        embedded: vec![EmbeddedClone { snippet: snippet.id, clone_type, mitigated }],
        duplicate_of: None,
    }
}

/// Family-specific mitigation patches: the small edits adapting developers
/// apply that defuse the vulnerability while keeping the code a clear
/// textual clone.
pub fn mitigate_family(family: &str, text: &str) -> Option<String> {
    let patched = match family {
        // Checks-effects-interactions: zero the balance before the call.
        "reentrancy_withdraw" => reorder_reentrancy(text)?,
        // Wrap the bare send in a require.
        "unchecked_send" => {
            let line = text.lines().find(|l| l.contains(".send("))?;
            let code = code_part(line);
            let wrapped = format!(
                "{}require({});",
                " ".repeat(line.len() - line.trim_start().len()),
                code.trim().trim_end_matches(';')
            );
            text.replacen(line, &wrapped, 1)
        }
        // The canonical fix: authenticate with msg.sender.
        "tx_origin_auth" => text.replace("tx.origin", "msg.sender"),
        // Guard the destructor / the owner write / the payout.
        "open_selfdestruct" => guard_before(text, "selfdestruct(")?,
        "open_owner_write" => guard_owner_write(text)?,
        "guessing_game" => guard_before(text, ".transfer(")?,
        // Validate the payload length.
        "short_address_pay" => insert_before(text, ".transfer(", "require(msg.data.length == 68);")?,
        // Reject unexpected calldata before delegating.
        "proxy_delegate" => insert_before(text, ".delegatecall(", "require(msg.data.length == 0);")?,
        // Guard the subtraction with a balance check.
        "overflow_token" => {
            let line = code_part(text.lines().find(|l| l.contains("-="))?)
                .trim()
                .to_string();
            let lhs = line.split("-=").next()?.trim().to_string();
            let rhs = line.split("-=").nth(1)?.trim().trim_end_matches(';').to_string();
            insert_before(text, "-=", &format!("require({lhs} >= {rhs});"))?
        }
        // Explicit memory location.
        "storage_pointer" => {
            let line = text.lines().find(|l| {
                let t = l.trim();
                t.split_whitespace().count() == 2
                    && t.ends_with("d;")
                    && !t.contains('=')
            })?;
            let ty = line.split_whitespace().next()?;
            text.replacen(
                &format!("{ty} d;"),
                &format!("{ty} memory d;"),
                1,
            )
        }
        // Fixed iteration bound.
        "payout_loop" => {
            let needle = text
                .lines()
                .find(|l| l.contains("for (") && l.contains(".length"))?;
            let from = needle.split("i < ").nth(1)?.split(';').next()?;
            text.replacen(from, "10", 1)
        }
        // Don't revert on refund failure (pull-payment-ish degradation).
        "king_of_ether" => text.replacen(".transfer(", ".send(", 1),
        // Don't gamble on miner-controlled entropy: use a stored seed.
        "block_lottery" => text
            .replace("block.timestamp", "seedValue")
            .replace("block.difficulty", "seedValue")
            .replace("block.number", "seedValue"),
        "timestamp_payout" => text.replace("block.timestamp", "roundCounter").replace("now", "roundCounter"),
        // Stop clearing the payout collection.
        "clearable_payees" => {
            let line = text.lines().find(|l| l.trim().starts_with("delete "))?;
            text.replacen(line.trim(), "paused = true;", 1)
        }
        _ => return None,
    };
    Some(patched)
}

/// Move the `X[msg.sender] = 0;` zeroing before the external call.
fn reorder_reentrancy(text: &str) -> Option<String> {
    let lines: Vec<&str> = text.lines().collect();
    let call_idx = lines.iter().position(|l| l.contains(".call{value:") || l.contains(".call.value("))?;
    let zero_idx = lines.iter().position(|l| l.contains("] = 0;"))?;
    if zero_idx <= call_idx {
        return None;
    }
    let mut reordered: Vec<&str> = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        if i == call_idx {
            reordered.push(lines[zero_idx]);
            reordered.push(line);
        } else if i == zero_idx {
            continue;
        } else {
            reordered.push(line);
        }
    }
    Some(reordered.join("\n"))
}

/// The code part of a line, trailing `//` comments stripped.
fn code_part(line: &str) -> &str {
    line.split("//").next().unwrap_or(line)
}

/// Insert `stmt` on its own line right before the first line containing
/// `needle`.
fn insert_before(text: &str, needle: &str, stmt: &str) -> Option<String> {
    let line = text.lines().find(|l| l.contains(needle))?;
    let indent = " ".repeat(line.len() - line.trim_start().len());
    Some(text.replacen(line, &format!("{indent}{stmt}\n{line}"), 1))
}

/// Insert an owner check before the first line containing `needle`.
fn guard_before(text: &str, needle: &str) -> Option<String> {
    insert_before(text, needle, "require(msg.sender == owner);")
}

/// Guard the owner-write function (the line assigning the new owner).
fn guard_owner_write(text: &str) -> Option<String> {
    let line = text
        .lines()
        .find(|l| l.trim().ends_with("= newOwner;"))?;
    let target = line.trim().split('=').next()?.trim().to_string();
    insert_before(text, "= newOwner;", &format!("require(msg.sender == {target});"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qa::{generate_qa, QaConfig};
    use crate::templates::vulnerable_templates;
    use ccc::Checker;

    fn tiny() -> (QaCorpus, ContractCorpus) {
        let qa = generate_qa(QaConfig { seed: 11, scale: 0.01 });
        let contracts = generate_contracts(
            SanctuaryConfig { seed: 12, scale: 0.003, ..SanctuaryConfig::default() },
            &qa,
        );
        (qa, contracts)
    }

    #[test]
    fn corpus_is_deterministic_and_scaled() {
        let (_, a) = tiny();
        let (_, b) = tiny();
        assert_eq!(a.contracts.len(), b.contracts.len());
        assert_eq!(a.contracts.len(), 970); // 323,328 * 0.003
        assert_eq!(a.contracts[5].source, b.contracts[5].source);
    }

    #[test]
    fn all_contracts_parse() {
        let (_, corpus) = tiny();
        for contract in &corpus.contracts {
            assert!(
                solidity::parse_snippet(&contract.source).is_ok(),
                "contract {} does not parse:\n{}",
                contract.id,
                contract.source
            );
        }
    }

    #[test]
    fn clone_rate_is_respected() {
        let (_, corpus) = tiny();
        let with_clones = corpus.contracts.iter().filter(|c| !c.embedded.is_empty()).count();
        let rate = with_clones as f64 / corpus.contracts.len() as f64;
        assert!((0.3..0.55).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn duplicates_share_source() {
        let qa = generate_qa(QaConfig { seed: 11, scale: 0.02 });
        let corpus = generate_contracts(
            SanctuaryConfig { seed: 12, scale: 0.01, ..SanctuaryConfig::default() },
            &qa,
        );
        let mut found = 0;
        for contract in &corpus.contracts {
            if let Some(orig) = contract.duplicate_of {
                found += 1;
                let original = corpus.contracts.iter().find(|c| c.id == orig).unwrap();
                assert_eq!(original.source, contract.source);
            }
        }
        assert!(found > 0);
    }

    #[test]
    fn compiler_distribution_skews_to_08() {
        let qa = generate_qa(QaConfig { seed: 11, scale: 0.02 });
        let corpus = generate_contracts(
            SanctuaryConfig { seed: 12, scale: 0.02, ..SanctuaryConfig::default() },
            &qa,
        );
        let v08 = corpus
            .contracts
            .iter()
            .filter(|c| c.compiler == Compiler::V08)
            .count() as f64;
        let share = v08 / corpus.contracts.len() as f64;
        // Paper: 59% — clone-bearing contracts pull it down a bit since
        // they follow snippet posting dates.
        assert!((0.35..0.75).contains(&share), "share = {share}");
    }

    #[test]
    fn mitigation_patches_defuse_every_family() {
        let mut rng = StdRng::seed_from_u64(33);
        let checker = Checker::new();
        for template in vulnerable_templates() {
            let g = template.render(&mut rng, Level::Contract);
            let Some(patched) = mitigate_family(template.name, &g.text) else {
                panic!("no mitigation patch for family {}", template.name);
            };
            assert!(
                solidity::parse_snippet(&patched).is_ok(),
                "patched {} does not parse:\n{patched}",
                template.name
            );
            let findings = checker.check_snippet(&patched).unwrap();
            let query = template.vuln.unwrap();
            assert!(
                !findings.iter().any(|f| f.query == query),
                "family {} still triggers {query:?} after mitigation:\n{patched}",
                template.name
            );
        }
    }

    #[test]
    fn mitigated_clones_stay_textually_similar() {
        use ccd::{order_independent_similarity, CloneDetector};
        let mut rng = StdRng::seed_from_u64(34);
        for template in vulnerable_templates() {
            let g = template.render(&mut rng, Level::Contract);
            let patched = mitigate_family(template.name, &g.text).unwrap();
            let a = CloneDetector::fingerprint_source(&g.text).unwrap();
            let b = CloneDetector::fingerprint_source(&patched).unwrap();
            let score = order_independent_similarity(&a, &b);
            // Patches on one-liner functions can halve that function's
            // sub-fingerprint; the contract still reads as a near-miss
            // clone overall.
            assert!(
                score >= 45.0,
                "family {} mitigation breaks clone-ness: {score}\n{patched}",
                template.name
            );
        }
    }

    #[test]
    fn disseminator_timing_mostly_after_post() {
        let (qa, corpus) = tiny();
        let mut after = 0usize;
        let mut total = 0usize;
        for contract in &corpus.contracts {
            for clone in &contract.embedded {
                let post = qa.post_of(&qa.snippets[clone.snippet as usize]);
                total += 1;
                if contract.created_day >= post.created_day {
                    after += 1;
                }
            }
        }
        assert!(total > 0);
        let share = after as f64 / total as f64;
        assert!(share > 0.7, "after-share = {share}");
    }
}
