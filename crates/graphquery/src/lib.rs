//! Declarative pattern queries over property graphs.
//!
//! The paper persists its code property graphs into a Neo4j database and
//! expresses vulnerability patterns as Cypher queries (§4.3). This crate is
//! the in-process substitute: a small query language with the Cypher
//! constructs those queries rely on — labelled node patterns, directed edge
//! patterns with alternatives (`:A|B`) and transitive closure (`*`),
//! property predicates, and (negated) existential subqueries — evaluated by
//! a backtracking matcher directly over the graph arena.
//!
//! ```
//! use cpg::Cpg;
//! use graphquery::query_cpg;
//!
//! let cpg = Cpg::from_snippet(
//!     "contract C { uint total; function add(uint amount) public { total += amount; } }",
//! ).unwrap();
//! // §4.3's example: parameters whose data is persisted to a field.
//! let hits = query_cpg(
//!     &cpg.graph,
//!     "MATCH (p:ParamVariableDeclaration)-[:DFG*]->(f:FieldDeclaration) RETURN p",
//!     "p",
//! ).unwrap();
//! assert_eq!(hits.len(), 1);
//! ```


#![warn(missing_docs)]

pub mod adapter;
pub mod eval;
pub mod syntax;

pub use adapter::{query_cpg, CpgSource};
pub use eval::{run, run_var, Bindings, GraphSource};
pub use syntax::{parse_query, Query, QueryError};
