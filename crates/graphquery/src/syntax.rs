//! Lexer, AST and parser for the pattern query language.
//!
//! The language is a compact subset of the Cypher dialect the paper's
//! Appendix B queries are written in:
//!
//! ```text
//! MATCH (p:ParamVariableDeclaration)-[:DFG*]->(f:FieldDeclaration)
//! WHERE p.code CONTAINS 'address'
//!   AND NOT EXISTS { (f)<-[:DFG]-(:Literal) }
//! RETURN p
//! ```
//!
//! Supported constructs: node patterns with labels and inline property
//! equality, directed edge patterns with `|`-alternatives and `*` closure,
//! multiple comma-separated path patterns, `WHERE` with `AND`/`OR`/`NOT`,
//! comparisons (`=`, `<>`, `IN`, `CONTAINS`, `STARTS WITH`), `toUpper(...)`,
//! and (negated) `EXISTS { ... }` subpatterns with their own `WHERE`.

use std::fmt;

/// A literal value in a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// String literal.
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// Boolean literal.
    Bool(bool),
    /// List literal, e.g. `['call', 'send']`.
    List(Vec<Value>),
    /// `null`.
    Null,
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Null => write!(f, "null"),
        }
    }
}

/// A node pattern `(var:LabelA:LabelB {prop: 'lit'})`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePat {
    /// Variable name to bind, if any.
    pub var: Option<String>,
    /// Required labels (conjunction).
    pub labels: Vec<String>,
    /// Required property equalities.
    pub props: Vec<(String, Value)>,
}

/// Direction of an edge pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `-[..]->`
    Right,
    /// `<-[..]-`
    Left,
}

/// An edge pattern `-[:DFG|EOG*]->`.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePat {
    /// Allowed relationship types (disjunction); empty means any.
    pub kinds: Vec<String>,
    /// Kleene closure (`*`): one-or-more hops. Without it exactly one hop.
    pub star: bool,
    /// Direction of traversal relative to reading order.
    pub direction: Direction,
}

/// A path pattern: alternating nodes and edges.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPat {
    /// Node patterns, one more than edges.
    pub nodes: Vec<NodePat>,
    /// Edge patterns between consecutive nodes.
    pub edges: Vec<EdgePat>,
}

/// A value-producing operand in a condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// `var.prop`
    Prop(String, String),
    /// Bare variable (for `a <> b` identity comparison).
    Var(String),
    /// Literal.
    Lit(Value),
    /// `toUpper(operand)`
    ToUpper(Box<Operand>),
    /// `labels(var)` — the label set of the bound node.
    Labels(String),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `IN`
    In,
    /// `CONTAINS`
    Contains,
    /// `STARTS WITH`
    StartsWith,
}

/// A boolean condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
    /// `EXISTS { patterns [WHERE cond] }` — an existential subquery sharing
    /// outer bindings.
    Exists {
        /// Subpatterns to match.
        patterns: Vec<PathPat>,
        /// Optional inner condition.
        cond: Option<Box<Cond>>,
    },
    /// Binary comparison.
    Cmp {
        /// Left operand.
        lhs: Operand,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        rhs: Operand,
    },
    /// `var.prop IS NULL`.
    IsNull(Operand),
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Path patterns from the MATCH clause(s).
    pub patterns: Vec<PathPat>,
    /// WHERE condition, if present.
    pub cond: Option<Cond>,
    /// Variables to return.
    pub returns: Vec<String>,
}

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryError {
    /// Description of the failure.
    pub message: String,
    /// Byte offset in the query text.
    pub offset: usize,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for QueryError {}

// ===== lexer ===============================================================

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Str(String),
    Num(f64),
    Punct(&'static str),
    Eof,
}

const QPUNCTS: &[&str] = &[
    "<-[", "]->", "]-", "-[", "<>", "(", ")", "{", "}", "[", "]", ":", ",", ".", "*", "|",
    "=",
];

fn qlex(src: &str) -> Result<Vec<(Tok, usize)>, QueryError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    'outer: while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if b == b'\'' || b == b'"' {
            let quote = b;
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != quote {
                j += 1;
            }
            if j >= bytes.len() {
                return Err(QueryError { message: "unterminated string".into(), offset: i });
            }
            out.push((Tok::Str(src[start..j].to_string()), i));
            i = j + 1;
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                i += 1;
            }
            let n: f64 = src[start..i].parse().map_err(|_| QueryError {
                message: format!("bad number `{}`", &src[start..i]),
                offset: start,
            })?;
            out.push((Tok::Num(n), start));
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push((Tok::Word(src[start..i].to_string()), start));
            continue;
        }
        for p in QPUNCTS {
            if src[i..].starts_with(p) {
                out.push((Tok::Punct(p), i));
                i += p.len();
                continue 'outer;
            }
        }
        return Err(QueryError {
            message: format!("unexpected character `{}`", b as char),
            offset: i,
        });
    }
    out.push((Tok::Eof, src.len()));
    Ok(out)
}

// ===== parser ==============================================================

/// Parse a query text into a [`Query`].
pub fn parse_query(src: &str) -> Result<Query, QueryError> {
    let tokens = qlex(src)?;
    let mut p = QParser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct QParser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl QParser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].0
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].0.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> QueryError {
        QueryError { message: message.into(), offset: self.offset() }
    }

    fn at_word_ci(&self, word: &str) -> bool {
        matches!(self.peek(), Tok::Word(w) if w.eq_ignore_ascii_case(word))
    }

    fn eat_word_ci(&mut self, word: &str) -> bool {
        if self.at_word_ci(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Tok::Punct(q) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), QueryError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`")))
        }
    }

    fn expect_eof(&self) -> Result<(), QueryError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.err("trailing input after query"))
        }
    }

    fn word(&mut self) -> Result<String, QueryError> {
        match self.bump() {
            Tok::Word(w) => Ok(w),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        let mut patterns = Vec::new();
        if !self.eat_word_ci("match") {
            return Err(self.err("query must start with MATCH"));
        }
        loop {
            patterns.push(self.path()?);
            if self.eat_punct(",") {
                continue;
            }
            if self.eat_word_ci("match") {
                continue;
            }
            break;
        }
        let cond = if self.eat_word_ci("where") {
            Some(self.cond()?)
        } else {
            None
        };
        let mut returns = Vec::new();
        if self.eat_word_ci("return") {
            loop {
                returns.push(self.word()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        Ok(Query { patterns, cond, returns })
    }

    fn path(&mut self) -> Result<PathPat, QueryError> {
        // Optional `p =` path binding is accepted and ignored (path
        // variables are not supported; detectors needing paths use the
        // programmatic API).
        if let Tok::Word(_) = self.peek() {
            if matches!(self.tokens.get(self.pos + 1).map(|t| &t.0), Some(Tok::Punct("="))) {
                self.bump();
                self.bump();
            }
        }
        let mut nodes = vec![self.node_pat()?];
        let mut edges = Vec::new();
        loop {
            if self.at_punct("-[") {
                self.bump();
                let (kinds, star) = self.edge_body()?;
                self.expect_punct("]->").map_err(|_| self.err("expected `]->`"))?;
                edges.push(EdgePat { kinds, star, direction: Direction::Right });
            } else if self.at_punct("<-[") {
                self.bump();
                let (kinds, star) = self.edge_body()?;
                self.expect_punct("]-").map_err(|_| self.err("expected `]-`"))?;
                edges.push(EdgePat { kinds, star, direction: Direction::Left });
            } else {
                break;
            }
            nodes.push(self.node_pat()?);
        }
        Ok(PathPat { nodes, edges })
    }

    fn edge_body(&mut self) -> Result<(Vec<String>, bool), QueryError> {
        // `[r:KIND|KIND2*]` — the optional leading variable is ignored.
        let mut kinds = Vec::new();
        if let Tok::Word(_) = self.peek() {
            // Either a variable (followed by `:`) or nothing else valid.
            self.bump();
        }
        if self.eat_punct(":") {
            loop {
                kinds.push(self.word()?);
                if !self.eat_punct("|") {
                    break;
                }
            }
        }
        let star = self.eat_punct("*");
        Ok((kinds, star))
    }

    fn node_pat(&mut self) -> Result<NodePat, QueryError> {
        self.expect_punct("(")?;
        let mut pat = NodePat::default();
        if let Tok::Word(_) = self.peek() {
            pat.var = Some(self.word()?);
        }
        while self.eat_punct(":") {
            pat.labels.push(self.word()?);
        }
        if self.eat_punct("{") {
            loop {
                let key = self.word()?;
                self.expect_punct(":")?;
                let value = self.literal()?;
                pat.props.push((key, value));
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct("}")?;
        }
        self.expect_punct(")")?;
        Ok(pat)
    }

    fn literal(&mut self) -> Result<Value, QueryError> {
        match self.bump() {
            Tok::Str(s) => Ok(Value::Str(s)),
            Tok::Num(n) => Ok(Value::Num(n)),
            Tok::Word(w) if w.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Tok::Word(w) if w.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Tok::Word(w) if w.eq_ignore_ascii_case("null") => Ok(Value::Null),
            Tok::Punct("[") => {
                let mut items = Vec::new();
                if !self.at_punct("]") {
                    loop {
                        items.push(self.literal()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                }
                self.expect_punct("]")?;
                Ok(Value::List(items))
            }
            other => Err(self.err(format!("expected literal, found {other:?}"))),
        }
    }

    // cond := or
    fn cond(&mut self) -> Result<Cond, QueryError> {
        let mut lhs = self.cond_and()?;
        while self.eat_word_ci("or") {
            let rhs = self.cond_and()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cond_and(&mut self) -> Result<Cond, QueryError> {
        let mut lhs = self.cond_unary()?;
        while self.eat_word_ci("and") {
            let rhs = self.cond_unary()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cond_unary(&mut self) -> Result<Cond, QueryError> {
        if self.eat_word_ci("not") {
            let inner = self.cond_unary()?;
            return Ok(Cond::Not(Box::new(inner)));
        }
        if self.at_word_ci("exists") {
            self.bump();
            // EXISTS { patterns [WHERE cond] } or EXISTS ( pattern ).
            let brace = if self.eat_punct("{") {
                true
            } else {
                self.expect_punct("(")?;
                false
            };
            let mut patterns = vec![self.path()?];
            while self.eat_punct(",") || self.eat_word_ci("match") {
                patterns.push(self.path()?);
            }
            let cond = if self.eat_word_ci("where") {
                Some(Box::new(self.cond()?))
            } else {
                None
            };
            if brace {
                self.expect_punct("}")?;
            } else {
                self.expect_punct(")")?;
            }
            return Ok(Cond::Exists { patterns, cond });
        }
        if self.at_punct("(") {
            // Could be a parenthesized condition or an inline pattern used
            // as a boolean (rare in our queries) — we only support the
            // former.
            let save = self.pos;
            self.bump();
            if let Ok(inner) = self.cond() {
                if self.eat_punct(")") {
                    return Ok(inner);
                }
            }
            self.pos = save;
        }
        self.cmp()
    }

    fn cmp(&mut self) -> Result<Cond, QueryError> {
        let lhs = self.operand()?;
        if self.eat_word_ci("is") {
            if self.eat_word_ci("null") {
                return Ok(Cond::IsNull(lhs));
            }
            if self.eat_word_ci("not") && self.eat_word_ci("null") {
                return Ok(Cond::Not(Box::new(Cond::IsNull(lhs))));
            }
            return Err(self.err("expected NULL after IS"));
        }
        let op = if self.eat_punct("=") {
            CmpOp::Eq
        } else if self.eat_punct("<>") {
            CmpOp::Ne
        } else if self.eat_word_ci("in") {
            CmpOp::In
        } else if self.eat_word_ci("contains") {
            CmpOp::Contains
        } else if self.eat_word_ci("starts") {
            if !self.eat_word_ci("with") {
                return Err(self.err("expected WITH after STARTS"));
            }
            CmpOp::StartsWith
        } else {
            return Err(self.err("expected comparison operator"));
        };
        let rhs = self.operand()?;
        Ok(Cond::Cmp { lhs, op, rhs })
    }

    fn operand(&mut self) -> Result<Operand, QueryError> {
        match self.bump() {
            Tok::Word(w) if w.eq_ignore_ascii_case("toUpper") => {
                self.expect_punct("(")?;
                let inner = self.operand()?;
                self.expect_punct(")")?;
                Ok(Operand::ToUpper(Box::new(inner)))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("labels") => {
                self.expect_punct("(")?;
                let var = self.word()?;
                self.expect_punct(")")?;
                Ok(Operand::Labels(var))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("true") => {
                Ok(Operand::Lit(Value::Bool(true)))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("false") => {
                Ok(Operand::Lit(Value::Bool(false)))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("null") => Ok(Operand::Lit(Value::Null)),
            Tok::Word(var) => {
                if self.eat_punct(".") {
                    let prop = self.word()?;
                    Ok(Operand::Prop(var, prop))
                } else {
                    Ok(Operand::Var(var))
                }
            }
            Tok::Str(s) => Ok(Operand::Lit(Value::Str(s))),
            Tok::Num(n) => Ok(Operand::Lit(Value::Num(n))),
            Tok::Punct("[") => {
                let mut items = Vec::new();
                if !self.at_punct("]") {
                    loop {
                        items.push(self.literal()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                }
                self.expect_punct("]")?;
                Ok(Operand::Lit(Value::List(items)))
            }
            other => Err(self.err(format!("expected operand, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_match() {
        let q = parse_query("MATCH (p:Parameter)-[:DFG*]->(f:Field) RETURN p").unwrap();
        assert_eq!(q.patterns.len(), 1);
        let path = &q.patterns[0];
        assert_eq!(path.nodes.len(), 2);
        assert_eq!(path.nodes[0].var.as_deref(), Some("p"));
        assert_eq!(path.nodes[0].labels, vec!["Parameter"]);
        assert!(path.edges[0].star);
        assert_eq!(path.edges[0].kinds, vec!["DFG"]);
        assert_eq!(q.returns, vec!["p"]);
    }

    #[test]
    fn parse_props_and_alternative_kinds() {
        let q = parse_query(
            "MATCH (c:CallExpression {localName: 'call'})<-[:BASE|CALLEE*]-(x) RETURN x",
        )
        .unwrap();
        let path = &q.patterns[0];
        assert_eq!(
            path.nodes[0].props,
            vec![("localName".to_string(), Value::Str("call".into()))]
        );
        assert_eq!(path.edges[0].direction, Direction::Left);
        assert_eq!(path.edges[0].kinds, vec!["BASE", "CALLEE"]);
    }

    #[test]
    fn parse_where_exists() {
        let q = parse_query(
            "MATCH (f:FunctionDeclaration) \
             WHERE NOT EXISTS { (f)-[:EOG*]->(:Rollback) } AND f.localName = 'kill' \
             RETURN f",
        )
        .unwrap();
        let Some(Cond::And(lhs, rhs)) = q.cond else { panic!("{:?}", q.cond) };
        assert!(matches!(*lhs, Cond::Not(_)));
        assert!(matches!(*rhs, Cond::Cmp { op: CmpOp::Eq, .. }));
    }

    #[test]
    fn parse_in_and_toupper() {
        let q = parse_query(
            "MATCH (c:CallExpression) WHERE toUpper(c.localName) IN ['CALL', 'SEND'] RETURN c",
        )
        .unwrap();
        let Some(Cond::Cmp { lhs, op: CmpOp::In, rhs }) = q.cond else { panic!() };
        assert!(matches!(lhs, Operand::ToUpper(_)));
        assert!(matches!(rhs, Operand::Lit(Value::List(_))));
    }

    #[test]
    fn parse_path_variable_is_ignored() {
        let q = parse_query("MATCH p=(a)-[:EOG*]->(b) RETURN a, b").unwrap();
        assert_eq!(q.patterns[0].nodes.len(), 2);
        assert_eq!(q.returns, vec!["a", "b"]);
    }

    #[test]
    fn parse_multiple_patterns() {
        let q = parse_query("MATCH (a)-[:DFG]->(b), (b)-[:EOG]->(c) RETURN c").unwrap();
        assert_eq!(q.patterns.len(), 2);
    }

    #[test]
    fn parse_contains_and_starts_with() {
        let q = parse_query(
            "MATCH (v) WHERE v.code CONTAINS 'storage' OR v.code STARTS WITH 'msg' RETURN v",
        )
        .unwrap();
        assert!(matches!(q.cond, Some(Cond::Or(_, _))));
    }

    #[test]
    fn parse_is_null() {
        let q = parse_query("MATCH (f) WHERE f.localName IS NULL RETURN f").unwrap();
        assert!(matches!(q.cond, Some(Cond::IsNull(_))));
    }

    #[test]
    fn parse_exists_with_inner_where() {
        let q = parse_query(
            "MATCH (f) WHERE EXISTS { (f)-[:EOG*]->(t) WHERE t.code = 'x' } RETURN f",
        )
        .unwrap();
        let Some(Cond::Exists { cond: Some(_), .. }) = q.cond else { panic!() };
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_query("RETURN x").is_err());
        assert!(parse_query("MATCH (a RETURN a").is_err());
        assert!(parse_query("MATCH (a) WHERE a. RETURN a").is_err());
        assert!(parse_query("MATCH (a) RETURN a garbage").is_err());
    }

    #[test]
    fn edge_variable_is_tolerated() {
        let q = parse_query("MATCH (a)-[r:DFG*]->(b) RETURN a").unwrap();
        assert_eq!(q.patterns[0].edges[0].kinds, vec!["DFG"]);
    }
}
