//! [`GraphSource`] adapter for [`cpg::Graph`], letting queries run directly
//! against a translated code property graph.

use crate::eval::GraphSource;
use cpg::{EdgeKind, Graph, NodeId, NodeKind};

/// Wraps a [`cpg::Graph`] for querying.
pub struct CpgSource<'a> {
    graph: &'a Graph,
}

impl<'a> CpgSource<'a> {
    /// Wrap a graph.
    pub fn new(graph: &'a Graph) -> Self {
        CpgSource { graph }
    }
}

/// Labels carried by a node kind, including the upstream CPG label
/// inheritance: constructors are also `FunctionDeclaration`s, every
/// expression-like node is also an `Expression`, and every node is a `Node`.
fn labels_of(kind: NodeKind) -> Vec<&'static str> {
    let mut labels = vec![kind.label(), "Node"];
    if kind == NodeKind::ConstructorDeclaration {
        labels.push("FunctionDeclaration");
    }
    if matches!(
        kind,
        NodeKind::DeclaredReferenceExpression
            | NodeKind::MemberExpression
            | NodeKind::SubscriptExpression
            | NodeKind::CallExpression
            | NodeKind::NewExpression
            | NodeKind::BinaryOperator
            | NodeKind::UnaryOperator
            | NodeKind::Literal
            | NodeKind::TupleExpression
            | NodeKind::ConditionalExpression
            | NodeKind::CastExpression
    ) {
        labels.push("Expression");
    }
    if kind.is_declaration() {
        labels.push("Declaration");
    }
    labels
}

/// Whether a relationship-type string matches an edge kind. `AST` matches
/// any syntax role.
fn kind_matches(edge: EdgeKind, label: &str) -> bool {
    if label == "AST" {
        return edge.is_ast();
    }
    edge.label() == label
}

impl GraphSource for CpgSource<'_> {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn labels(&self, node: u32) -> Vec<&'static str> {
        labels_of(self.graph.node(NodeId(node)).kind)
    }

    fn prop(&self, node: u32, key: &str) -> Option<std::borrow::Cow<'_, str>> {
        self.graph.node(NodeId(node)).props.get(key)
    }

    fn neighbors_out(&self, node: u32, kind: Option<&str>) -> Vec<u32> {
        self.graph
            .out_edges(NodeId(node))
            .filter(|e| kind.map(|k| kind_matches(e.kind, k)).unwrap_or(true))
            .map(|e| e.to.0)
            .collect()
    }

    fn neighbors_in(&self, node: u32, kind: Option<&str>) -> Vec<u32> {
        self.graph
            .in_edges(NodeId(node))
            .filter(|e| kind.map(|k| kind_matches(e.kind, k)).unwrap_or(true))
            .map(|e| e.from.0)
            .collect()
    }

    fn nodes_with_label(&self, label: &str) -> Vec<u32> {
        self.graph
            .node_ids()
            .filter(|id| labels_of(self.graph.node(*id).kind).contains(&label))
            .map(|id| id.0)
            .collect()
    }
}

/// Run a query text against a CPG and return the node ids bound to `var`.
pub fn query_cpg(graph: &Graph, query_text: &str, var: &str) -> Result<Vec<NodeId>, crate::syntax::QueryError> {
    let query = crate::syntax::parse_query(query_text)?;
    let source = CpgSource::new(graph);
    Ok(crate::eval::run_var(&query, &source, var)
        .into_iter()
        .map(NodeId)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpg::Cpg;

    #[test]
    fn query_figure_2_snippet() {
        let cpg = Cpg::from_snippet("if (msg.sender == owner) {}").unwrap();
        // The simplified query from §4.3 of the paper, adapted to this
        // snippet: find comparisons whose LHS is msg.sender.
        let hits = query_cpg(
            &cpg.graph,
            "MATCH (b:BinaryOperator {operatorCode: '=='})-[:LHS]->(m:MemberExpression {code: 'msg.sender'}) RETURN b",
            "b",
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn query_param_to_field_flow() {
        let cpg = Cpg::from_snippet(
            "contract C { uint total; function add(uint amount) public { total += amount; } }",
        )
        .unwrap();
        // The paper's §4.3 example query.
        let hits = query_cpg(
            &cpg.graph,
            "MATCH (p:ParamVariableDeclaration)-[:DFG*]->(f:FieldDeclaration) RETURN p",
            "p",
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn constructor_is_also_function_declaration() {
        let cpg = Cpg::from_snippet(
            "contract C { address owner; constructor() { owner = msg.sender; } }",
        )
        .unwrap();
        let hits = query_cpg(
            &cpg.graph,
            "MATCH (f:FunctionDeclaration) WHERE 'ConstructorDeclaration' IN labels(f) RETURN f",
            "f",
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn rollback_paths_queryable() {
        let cpg = Cpg::from_snippet(
            "function f() public { require(msg.sender == owner); total += 1; }",
        )
        .unwrap();
        let hits = query_cpg(
            &cpg.graph,
            "MATCH (c:CallExpression {localName: 'require'})-[:EOG]->(r:Rollback) RETURN r",
            "r",
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn ast_wildcard_matches_any_role() {
        let cpg = Cpg::from_snippet("x = a + b;").unwrap();
        let hits = query_cpg(
            &cpg.graph,
            "MATCH (op:BinaryOperator {operatorCode: '+'})-[:AST]->(r) RETURN r",
            "r",
        )
        .unwrap();
        assert_eq!(hits.len(), 2); // both operands
    }
}
