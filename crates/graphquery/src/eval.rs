//! Query evaluation: backtracking pattern matching over a [`GraphSource`].

use crate::syntax::{CmpOp, Cond, Direction, EdgePat, NodePat, Operand, PathPat, Query, Value};
use std::borrow::Cow;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Abstraction over a queryable property graph. Implemented for
/// [`cpg::Graph`] in [`crate::adapter`], and trivially implementable for
/// test graphs.
pub trait GraphSource {
    /// Number of nodes; ids are `0..node_count()`.
    fn node_count(&self) -> usize;
    /// Labels of a node (a node may carry more than one, mirroring label
    /// inheritance in the upstream CPG, e.g. `ConstructorDeclaration` is
    /// also a `FunctionDeclaration`).
    fn labels(&self, node: u32) -> Vec<&'static str>;
    /// Property lookup by key. Borrowed values avoid a per-probe
    /// allocation on the hot matching path; implementations that must
    /// synthesize a value return [`Cow::Owned`].
    fn prop(&self, node: u32, key: &str) -> Option<Cow<'_, str>>;
    /// Outgoing neighbors over relationships of `kind` (`None` = any).
    fn neighbors_out(&self, node: u32, kind: Option<&str>) -> Vec<u32>;
    /// Incoming neighbors over relationships of `kind` (`None` = any).
    fn neighbors_in(&self, node: u32, kind: Option<&str>) -> Vec<u32>;

    /// All node ids carrying a label; default scans everything.
    fn nodes_with_label(&self, label: &str) -> Vec<u32> {
        (0..self.node_count() as u32)
            .filter(|n| self.labels(*n).contains(&label))
            .collect()
    }
}

/// Variable bindings of one (partial) match.
pub type Bindings = BTreeMap<String, u32>;

/// Result rows of a query: one map per match, restricted to the RETURN
/// variables (all bound variables if RETURN is empty), deduplicated.
pub fn run<S: GraphSource>(query: &Query, source: &S) -> Vec<Bindings> {
    static QUERIES: telemetry::Counter = telemetry::Counter::new("graphquery.queries");
    static SOLUTIONS: telemetry::Counter = telemetry::Counter::new("graphquery.solutions");
    static ROWS: telemetry::Counter = telemetry::Counter::new("graphquery.rows");
    QUERIES.incr();
    let _stage = telemetry::trace::stage("query-eval");
    // Chaos hook: evaluation is infallible, so an injected error at
    // `query/eval` escalates to a panic for the isolation layer to catch.
    if let Some(message) = faultinject::fire("query/eval") {
        panic!("faultinject: {message}");
    }
    let mut rows: Vec<Bindings> = Vec::new();
    let mut seen: HashSet<Vec<(String, u32)>> = HashSet::new();
    let mut solutions = Vec::new();
    match_patterns(source, &query.patterns, Bindings::new(), &mut solutions, usize::MAX);
    SOLUTIONS.add(solutions.len() as u64);
    for binding in solutions {
        if let Some(cond) = &query.cond {
            if !eval_cond(source, cond, &binding) {
                continue;
            }
        }
        let row: Bindings = if query.returns.is_empty() {
            binding
        } else {
            query
                .returns
                .iter()
                .filter_map(|v| binding.get(v).map(|n| (v.clone(), *n)))
                .collect()
        };
        let key: Vec<(String, u32)> = row.iter().map(|(k, v)| (k.clone(), *v)).collect();
        if seen.insert(key) {
            rows.push(row);
        }
    }
    ROWS.add(rows.len() as u64);
    rows
}

/// Convenience: run a query and collect the node ids bound to `var`.
pub fn run_var<S: GraphSource>(query: &Query, source: &S, var: &str) -> Vec<u32> {
    let mut ids: Vec<u32> = run(query, source)
        .into_iter()
        .filter_map(|row| row.get(var).copied())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

const MAX_SOLUTIONS: usize = 100_000;

fn match_patterns<S: GraphSource>(
    source: &S,
    patterns: &[PathPat],
    bindings: Bindings,
    out: &mut Vec<Bindings>,
    limit: usize,
) {
    if out.len() >= limit.min(MAX_SOLUTIONS) {
        return;
    }
    let Some((first, rest)) = patterns.split_first() else {
        out.push(bindings);
        return;
    };
    // A path with no node patterns cannot come out of the query parser,
    // but a hand-built `Query` could carry one; treat it as vacuously
    // matched instead of indexing out of bounds.
    let Some(first_node) = first.nodes.first() else {
        match_patterns(source, rest, bindings, out, limit);
        return;
    };
    let starts = candidates(source, first_node, &bindings);
    for start in starts {
        let mut b = bindings.clone();
        if !bind(&mut b, first_node, start) {
            continue;
        }
        extend_path(source, first, 0, start, b, rest, out, limit);
        if out.len() >= limit.min(MAX_SOLUTIONS) {
            return;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn extend_path<S: GraphSource>(
    source: &S,
    path: &PathPat,
    edge_idx: usize,
    current: u32,
    bindings: Bindings,
    rest: &[PathPat],
    out: &mut Vec<Bindings>,
    limit: usize,
) {
    if out.len() >= limit.min(MAX_SOLUTIONS) {
        return;
    }
    if edge_idx == path.edges.len() {
        match_patterns(source, rest, bindings, out, limit);
        return;
    }
    let edge = &path.edges[edge_idx];
    // Malformed hand-built paths (fewer nodes than edges + 1) match
    // nothing rather than panicking.
    let Some(target_pat) = path.nodes.get(edge_idx + 1) else {
        return;
    };
    for next in edge_targets(source, current, edge) {
        if !node_matches(source, target_pat, next) {
            continue;
        }
        let mut b = bindings.clone();
        if !bind(&mut b, target_pat, next) {
            continue;
        }
        extend_path(source, path, edge_idx + 1, next, b, rest, out, limit);
        if out.len() >= limit.min(MAX_SOLUTIONS) {
            return;
        }
    }
}

/// All nodes reachable from `from` over one application of the edge pattern
/// (one hop, or the 1.. closure for `*`).
fn edge_targets<S: GraphSource>(source: &S, from: u32, edge: &EdgePat) -> Vec<u32> {
    let step = |node: u32| -> Vec<u32> {
        let mut result = Vec::new();
        let kinds: Vec<Option<&str>> = if edge.kinds.is_empty() {
            vec![None]
        } else {
            edge.kinds.iter().map(|k| Some(k.as_str())).collect()
        };
        for kind in kinds {
            let neighbors = match edge.direction {
                Direction::Right => source.neighbors_out(node, kind),
                Direction::Left => source.neighbors_in(node, kind),
            };
            result.extend(neighbors);
        }
        result.sort_unstable();
        result.dedup();
        result
    };
    if !edge.star {
        return step(from);
    }
    // Closure: 1 or more hops, BFS.
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    let mut result = Vec::new();
    while let Some(node) = queue.pop_front() {
        for next in step(node) {
            if seen.insert(next) {
                result.push(next);
                queue.push_back(next);
            }
        }
    }
    result
}

fn candidates<S: GraphSource>(source: &S, pat: &NodePat, bindings: &Bindings) -> Vec<u32> {
    if let Some(var) = &pat.var {
        if let Some(bound) = bindings.get(var) {
            return if node_matches(source, pat, *bound) {
                vec![*bound]
            } else {
                vec![]
            };
        }
    }
    let pool: Vec<u32> = match pat.labels.first() {
        Some(label) => source.nodes_with_label(label),
        None => (0..source.node_count() as u32).collect(),
    };
    pool.into_iter().filter(|n| node_matches(source, pat, *n)).collect()
}

fn node_matches<S: GraphSource>(source: &S, pat: &NodePat, node: u32) -> bool {
    static NODES_VISITED: telemetry::Counter =
        telemetry::Counter::new("graphquery.nodes_visited");
    NODES_VISITED.incr();
    let labels = source.labels(node);
    if !pat.labels.iter().all(|l| labels.contains(&l.as_str())) {
        return false;
    }
    for (key, expected) in &pat.props {
        let actual = source.prop(node, key);
        let matches = match (actual, expected) {
            (Some(a), Value::Str(s)) => a == s.as_str(),
            (Some(a), Value::Num(n)) => a.parse::<f64>().map(|x| x == *n).unwrap_or(false),
            (Some(a), Value::Bool(b)) => a == b.to_string(),
            (None, Value::Null) => true,
            _ => false,
        };
        if !matches {
            return false;
        }
    }
    true
}

fn bind(bindings: &mut Bindings, pat: &NodePat, node: u32) -> bool {
    if let Some(var) = &pat.var {
        match bindings.get(var) {
            Some(existing) => return *existing == node,
            None => {
                bindings.insert(var.clone(), node);
            }
        }
    }
    true
}

// ===== conditions ===========================================================

fn eval_cond<S: GraphSource>(source: &S, cond: &Cond, bindings: &Bindings) -> bool {
    match cond {
        Cond::And(a, b) => eval_cond(source, a, bindings) && eval_cond(source, b, bindings),
        Cond::Or(a, b) => eval_cond(source, a, bindings) || eval_cond(source, b, bindings),
        Cond::Not(inner) => !eval_cond(source, inner, bindings),
        Cond::Exists { patterns, cond } => {
            let mut solutions = Vec::new();
            match_patterns(source, patterns, bindings.clone(), &mut solutions, usize::MAX);
            match cond {
                None => !solutions.is_empty(),
                Some(inner) => solutions.iter().any(|b| eval_cond(source, inner, b)),
            }
        }
        Cond::IsNull(operand) => eval_operand(source, operand, bindings).is_none(),
        Cond::Cmp { lhs, op, rhs } => {
            // Node identity comparison `a <> b` / `a = b`.
            if let (Operand::Var(a), Operand::Var(b)) = (lhs, rhs) {
                let (Some(na), Some(nb)) = (bindings.get(a), bindings.get(b)) else {
                    return false;
                };
                return match op {
                    CmpOp::Eq => na == nb,
                    CmpOp::Ne => na != nb,
                    _ => false,
                };
            }
            let lv = eval_operand(source, lhs, bindings);
            let rv = eval_operand(source, rhs, bindings);
            match op {
                CmpOp::Eq => match (&lv, &rv) {
                    (Some(a), Some(b)) => value_eq(a, b),
                    (None, Some(Value::Null)) | (Some(Value::Null), None) => true,
                    _ => false,
                },
                CmpOp::Ne => match (&lv, &rv) {
                    (Some(a), Some(b)) => !value_eq(a, b),
                    _ => false,
                },
                CmpOp::In => match (&lv, &rv) {
                    (Some(a), Some(Value::List(items))) => {
                        items.iter().any(|item| value_eq(a, item))
                    }
                    _ => false,
                },
                CmpOp::Contains => match (&lv, &rv) {
                    (Some(Value::Str(a)), Some(Value::Str(b))) => a.contains(b.as_str()),
                    _ => false,
                },
                CmpOp::StartsWith => match (&lv, &rv) {
                    (Some(Value::Str(a)), Some(Value::Str(b))) => a.starts_with(b.as_str()),
                    _ => false,
                },
            }
        }
    }
}

fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Num(x), Value::Num(y)) => x == y,
        (Value::Str(x), Value::Num(y)) | (Value::Num(y), Value::Str(x)) => {
            x.parse::<f64>().map(|v| v == *y).unwrap_or(false)
        }
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Str(x), Value::Bool(y)) | (Value::Bool(y), Value::Str(x)) => {
            x == &y.to_string()
        }
        (Value::Null, Value::Null) => true,
        _ => false,
    }
}

fn eval_operand<S: GraphSource>(
    source: &S,
    operand: &Operand,
    bindings: &Bindings,
) -> Option<Value> {
    match operand {
        Operand::Lit(v) => Some(v.clone()),
        Operand::Prop(var, key) => {
            let node = bindings.get(var)?;
            source.prop(*node, key).map(|v| Value::Str(v.into_owned()))
        }
        Operand::Var(_) => None,
        Operand::ToUpper(inner) => match eval_operand(source, inner, bindings)? {
            Value::Str(s) => Some(Value::Str(s.to_uppercase())),
            other => Some(other),
        },
        Operand::Labels(var) => {
            let node = bindings.get(var)?;
            Some(Value::List(
                source
                    .labels(*node)
                    .into_iter()
                    .map(|l| Value::Str(l.to_string()))
                    .collect(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::parse_query;

    /// A tiny hand-built graph for engine tests.
    struct TestGraph {
        labels: Vec<Vec<&'static str>>,
        props: Vec<Vec<(&'static str, &'static str)>>,
        edges: Vec<(u32, &'static str, u32)>,
    }

    impl GraphSource for TestGraph {
        fn node_count(&self) -> usize {
            self.labels.len()
        }
        fn labels(&self, node: u32) -> Vec<&'static str> {
            self.labels[node as usize].clone()
        }
        fn prop(&self, node: u32, key: &str) -> Option<Cow<'_, str>> {
            self.props[node as usize]
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| Cow::Borrowed(*v))
        }
        fn neighbors_out(&self, node: u32, kind: Option<&str>) -> Vec<u32> {
            self.edges
                .iter()
                .filter(|(f, k, _)| *f == node && kind.map(|x| x == *k).unwrap_or(true))
                .map(|(_, _, t)| *t)
                .collect()
        }
        fn neighbors_in(&self, node: u32, kind: Option<&str>) -> Vec<u32> {
            self.edges
                .iter()
                .filter(|(_, k, t)| *t == node && kind.map(|x| x == *k).unwrap_or(true))
                .map(|(f, _, _)| *f)
                .collect()
        }
    }

    fn diamond() -> TestGraph {
        // 0:Param(code=amount) -DFG-> 1:Ref -DFG-> 2:Field(code=total)
        //                      \-DFG-> 3:Ref(dead end)
        TestGraph {
            labels: vec![
                vec!["ParamVariableDeclaration"],
                vec!["DeclaredReferenceExpression"],
                vec!["FieldDeclaration"],
                vec!["DeclaredReferenceExpression"],
            ],
            props: vec![
                vec![("code", "amount"), ("localName", "amount")],
                vec![("code", "amount")],
                vec![("code", "total"), ("localName", "total")],
                vec![("code", "amount")],
            ],
            edges: vec![(0, "DFG", 1), (1, "DFG", 2), (0, "DFG", 3)],
        }
    }

    fn q(text: &str) -> crate::syntax::Query {
        parse_query(text).unwrap()
    }

    #[test]
    fn star_closure_reaches_field() {
        let g = diamond();
        let rows = run_var(
            &q("MATCH (p:ParamVariableDeclaration)-[:DFG*]->(f:FieldDeclaration) RETURN p"),
            &g,
            "p",
        );
        assert_eq!(rows, vec![0]);
    }

    #[test]
    fn single_hop_does_not_transit() {
        let g = diamond();
        let rows = run_var(
            &q("MATCH (p:ParamVariableDeclaration)-[:DFG]->(f:FieldDeclaration) RETURN p"),
            &g,
            "p",
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn property_filter() {
        let g = diamond();
        let rows = run_var(&q("MATCH (n {code: 'total'}) RETURN n"), &g, "n");
        assert_eq!(rows, vec![2]);
    }

    #[test]
    fn where_equality_and_in() {
        let g = diamond();
        let rows = run_var(
            &q("MATCH (n) WHERE n.localName IN ['amount', 'other'] RETURN n"),
            &g,
            "n",
        );
        assert_eq!(rows, vec![0]);
    }

    #[test]
    fn not_exists_prunes() {
        let g = diamond();
        // References with no outgoing DFG (the dead end).
        let rows = run_var(
            &q("MATCH (r:DeclaredReferenceExpression) \
                WHERE NOT EXISTS { (r)-[:DFG]->(x) } RETURN r"),
            &g,
            "r",
        );
        assert_eq!(rows, vec![3]);
    }

    #[test]
    fn reverse_direction() {
        let g = diamond();
        let rows = run_var(
            &q("MATCH (f:FieldDeclaration)<-[:DFG*]-(p:ParamVariableDeclaration) RETURN f"),
            &g,
            "f",
        );
        assert_eq!(rows, vec![2]);
    }

    #[test]
    fn labels_function() {
        let g = diamond();
        let rows = run_var(
            &q("MATCH (n) WHERE 'FieldDeclaration' IN labels(n) RETURN n"),
            &g,
            "n",
        );
        assert_eq!(rows, vec![2]);
    }

    #[test]
    fn toupper() {
        let g = diamond();
        let rows = run_var(
            &q("MATCH (n) WHERE toUpper(n.localName) = 'TOTAL' RETURN n"),
            &g,
            "n",
        );
        assert_eq!(rows, vec![2]);
    }

    #[test]
    fn variable_identity_constraints() {
        let g = diamond();
        // Two refs with the same code but different identity.
        let rows = run(
            &q("MATCH (a:DeclaredReferenceExpression), (b:DeclaredReferenceExpression) \
                WHERE a <> b RETURN a, b"),
            &g,
        );
        assert_eq!(rows.len(), 2); // (1,3) and (3,1)
    }

    #[test]
    fn rebinding_same_var_must_agree() {
        let g = diamond();
        // (a)-[:DFG]->(b), (a)-[:DFG]->(c): a must be consistent.
        let rows = run(&q("MATCH (a)-[:DFG]->(b), (a)-[:DFG]->(c) WHERE b <> c RETURN a"), &g);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["a"], 0);
    }

    #[test]
    fn cycle_safe_closure() {
        let g = TestGraph {
            labels: vec![vec!["A"], vec!["A"]],
            props: vec![vec![], vec![]],
            edges: vec![(0, "EOG", 1), (1, "EOG", 0)],
        };
        let rows = run_var(&q("MATCH (a:A)-[:EOG*]->(b:A) RETURN b"), &g, "b");
        assert_eq!(rows, vec![0, 1]);
    }

    #[test]
    fn is_null_matches_missing_prop() {
        let g = diamond();
        let rows = run_var(&q("MATCH (n) WHERE n.operatorCode IS NULL RETURN n"), &g, "n");
        assert_eq!(rows.len(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::syntax::parse_query;
    use proptest::prelude::*;

    /// A random small graph over labels A/B and kinds X/Y.
    #[derive(Debug, Clone)]
    struct RandomGraph {
        labels: Vec<&'static str>,
        edges: Vec<(u32, &'static str, u32)>,
    }

    impl GraphSource for RandomGraph {
        fn node_count(&self) -> usize {
            self.labels.len()
        }
        fn labels(&self, node: u32) -> Vec<&'static str> {
            vec![self.labels[node as usize]]
        }
        fn prop(&self, node: u32, key: &str) -> Option<Cow<'_, str>> {
            (key == "id").then(|| Cow::Owned(node.to_string()))
        }
        fn neighbors_out(&self, node: u32, kind: Option<&str>) -> Vec<u32> {
            self.edges
                .iter()
                .filter(|(f, k, _)| *f == node && kind.map(|x| x == *k).unwrap_or(true))
                .map(|(_, _, t)| *t)
                .collect()
        }
        fn neighbors_in(&self, node: u32, kind: Option<&str>) -> Vec<u32> {
            self.edges
                .iter()
                .filter(|(_, k, t)| *t == node && kind.map(|x| x == *k).unwrap_or(true))
                .map(|(f, _, _)| *f)
                .collect()
        }
    }

    fn arbitrary_graph() -> impl Strategy<Value = RandomGraph> {
        (2usize..8).prop_flat_map(|n| {
            let labels = proptest::collection::vec(
                prop_oneof![Just("A"), Just("B")],
                n,
            );
            let edges = proptest::collection::vec(
                (0..n as u32, prop_oneof![Just("X"), Just("Y")], 0..n as u32),
                0..16,
            );
            (labels, edges).prop_map(|(labels, edges)| RandomGraph { labels, edges })
        })
    }

    proptest! {
        /// The `*` closure equals the transitive closure of single hops.
        #[test]
        fn star_is_transitive_closure(g in arbitrary_graph()) {
            let starred = parse_query("MATCH (a)-[:X*]->(b) RETURN a, b").unwrap();
            let star_pairs: std::collections::HashSet<(u32, u32)> = run(&starred, &g)
                .into_iter()
                .map(|row| (row["a"], row["b"]))
                .collect();
            // Floyd-Warshall-style reference closure over X edges.
            let n = g.node_count();
            let mut reach = vec![vec![false; n]; n];
            for (f, k, t) in &g.edges {
                if *k == "X" {
                    reach[*f as usize][*t as usize] = true;
                }
            }
            for m in 0..n {
                for i in 0..n {
                    for j in 0..n {
                        if reach[i][m] && reach[m][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(
                        reach[i][j],
                        star_pairs.contains(&(i as u32, j as u32)),
                        "closure mismatch at ({}, {})", i, j
                    );
                }
            }
        }

        /// Reversing the pattern direction transposes the result.
        #[test]
        fn direction_reversal_transposes(g in arbitrary_graph()) {
            let fwd = parse_query("MATCH (a)-[:X]->(b) RETURN a, b").unwrap();
            let bwd = parse_query("MATCH (b)<-[:X]-(a) RETURN a, b").unwrap();
            let f: std::collections::HashSet<(u32, u32)> =
                run(&fwd, &g).into_iter().map(|r| (r["a"], r["b"])).collect();
            let b: std::collections::HashSet<(u32, u32)> =
                run(&bwd, &g).into_iter().map(|r| (r["a"], r["b"])).collect();
            prop_assert_eq!(f, b);
        }

        /// Adding a label constraint can only shrink the result set.
        #[test]
        fn labels_restrict(g in arbitrary_graph()) {
            let all = parse_query("MATCH (a)-[:X]->(b) RETURN a").unwrap();
            let restricted = parse_query("MATCH (a:A)-[:X]->(b) RETURN a").unwrap();
            let all_set: std::collections::HashSet<u32> =
                run_var(&all, &g, "a").into_iter().collect();
            for a in run_var(&restricted, &g, "a") {
                prop_assert!(all_set.contains(&a));
            }
        }

        /// EXISTS and its negation partition the candidates.
        #[test]
        fn exists_partitions(g in arbitrary_graph()) {
            let base = parse_query("MATCH (a) RETURN a").unwrap();
            let with = parse_query("MATCH (a) WHERE EXISTS { (a)-[:X]->(b) } RETURN a").unwrap();
            let without =
                parse_query("MATCH (a) WHERE NOT EXISTS { (a)-[:X]->(b) } RETURN a").unwrap();
            let all = run_var(&base, &g, "a").len();
            let yes = run_var(&with, &g, "a").len();
            let no = run_var(&without, &g, "a").len();
            prop_assert_eq!(all, yes + no);
        }
    }
}
