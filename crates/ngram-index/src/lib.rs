//! Inverted N-gram index over fingerprints.
//!
//! The paper stores fingerprint N-grams in an Elasticsearch database and,
//! when matching a fingerprint, first retrieves only candidates sharing at
//! least a fraction η of its N-grams (§5.5, "Execution Time" challenge).
//! This crate is the in-process substitute: an inverted index from N-gram to
//! document ids with the same η-threshold candidate retrieval, turning the
//! quadratic all-pairs edit-distance comparison into a cheap filter followed
//! by a small number of exact comparisons.
//!
//! ```
//! use ngram_index::NgramIndex;
//!
//! let mut index = NgramIndex::new(3);
//! index.insert(0, "ABCDEFGH");
//! index.insert(1, "ABCDXXXX");
//! index.insert(2, "ZZZZZZZZ");
//! let candidates = index.candidates("ABCDEFGG", 0.5);
//! assert!(candidates.contains(&0));
//! assert!(!candidates.contains(&2));
//! ```


#![warn(missing_docs)]

use std::collections::HashMap;

/// Document identifier type.
pub type DocId = u64;

/// An inverted index from character N-grams to document ids.
#[derive(Debug, Clone)]
pub struct NgramIndex {
    n: usize,
    /// N-gram → sorted postings list of document ids.
    postings: HashMap<Box<str>, Vec<DocId>>,
    /// Document id → number of distinct N-grams it contains.
    doc_grams: HashMap<DocId, usize>,
}

impl NgramIndex {
    /// Create an index over N-grams of size `n` (the paper sweeps
    /// N ∈ {3, 5, 7}; 3 performed best, Appendix C/D).
    pub fn new(n: usize) -> Self {
        NgramIndex { n: n.max(1), postings: HashMap::new(), doc_grams: HashMap::new() }
    }

    /// Build an index over borrowed `(id, text)` documents in one pass.
    ///
    /// Nothing is cloned beyond the N-gram keys the index owns anyway, so
    /// bulk construction (the analysis service's warm-state setup, the
    /// sweep engine's per-N indexes) does not duplicate the corpus text.
    pub fn from_documents<'a, I>(n: usize, docs: I) -> Self
    where
        I: IntoIterator<Item = (DocId, &'a str)>,
    {
        let mut index = NgramIndex::new(n);
        for (id, text) in docs {
            index.insert(id, text);
        }
        index
    }

    /// The configured N-gram size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_grams.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.doc_grams.is_empty()
    }

    /// Distinct N-grams of a text under this index's `n`, as zero-copy
    /// slices of `text`. Texts shorter than `n` yield the whole text as a
    /// single gram so that short fingerprints remain indexable.
    ///
    /// Fingerprint digests are ASCII, so the hot path slides a byte window
    /// over the text and never allocates; non-ASCII text falls back to
    /// char-boundary windows with identical gram semantics (each gram is
    /// still `n` *characters*).
    pub fn grams<'t>(&self, text: &'t str) -> Vec<&'t str> {
        let mut grams: Vec<&'t str> = if text.is_ascii() {
            if text.len() < self.n {
                if text.is_empty() { Vec::new() } else { vec![text] }
            } else {
                (0..=text.len() - self.n).map(|i| &text[i..i + self.n]).collect()
            }
        } else {
            let starts: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
            if starts.len() < self.n {
                if starts.is_empty() { Vec::new() } else { vec![text] }
            } else {
                (0..=starts.len() - self.n)
                    .map(|i| {
                        let end = starts.get(i + self.n).copied().unwrap_or(text.len());
                        &text[starts[i]..end]
                    })
                    .collect()
            }
        };
        grams.sort_unstable();
        grams.dedup();
        grams
    }

    /// Index a document. Re-inserting the same id replaces nothing — the
    /// caller is expected to use fresh ids (documents are immutable
    /// fingerprints).
    pub fn insert(&mut self, id: DocId, text: &str) {
        static INSERTIONS: telemetry::Counter = telemetry::Counter::new("ngram.insertions");
        INSERTIONS.incr();
        let grams = self.grams(text);
        self.doc_grams.insert(id, grams.len());
        for gram in grams {
            // Allocate the owned key only on first sight of a gram.
            if let Some(list) = self.postings.get_mut(gram) {
                if list.last() != Some(&id) {
                    list.push(id);
                }
            } else {
                self.postings.insert(gram.into(), vec![id]);
            }
        }
    }

    /// Retrieve document ids sharing at least `eta` (0..=1) of the query's
    /// distinct N-grams — the paper's η-threshold candidate filter.
    ///
    /// An empty query matches nothing.
    pub fn candidates(&self, text: &str, eta: f64) -> Vec<DocId> {
        static QUERIES: telemetry::Counter = telemetry::Counter::new("ngram.queries");
        static CANDIDATES: telemetry::Counter = telemetry::Counter::new("ngram.candidates");
        QUERIES.incr();
        let grams = self.grams(text);
        if grams.is_empty() {
            return Vec::new();
        }
        let mut counts: HashMap<DocId, usize> = HashMap::new();
        for gram in &grams {
            if let Some(list) = self.postings.get(*gram) {
                for id in list {
                    *counts.entry(*id).or_insert(0) += 1;
                }
            }
        }
        let needed = (eta * grams.len() as f64).ceil().max(1.0) as usize;
        let mut result: Vec<DocId> = counts
            .into_iter()
            .filter(|(_, shared)| *shared >= needed)
            .map(|(id, _)| id)
            .collect();
        result.sort_unstable();
        CANDIDATES.add(result.len() as u64);
        result
    }

    /// The postings lists in sorted-gram order, each as `(gram, doc ids)`.
    ///
    /// This is the flat export used by the snapshot writer in
    /// `index-store`: the order is deterministic (lexicographic by gram),
    /// so identical indexes serialize to identical bytes.
    pub fn postings_sorted(&self) -> Vec<(&str, &[DocId])> {
        let mut out: Vec<(&str, &[DocId])> =
            self.postings.iter().map(|(g, ids)| (&**g, &**ids)).collect();
        out.sort_unstable_by_key(|(g, _)| *g);
        out
    }

    /// Every indexed document with its distinct-gram count, sorted by id.
    /// Deterministic companion export to [`NgramIndex::postings_sorted`].
    pub fn doc_grams_sorted(&self) -> Vec<(DocId, usize)> {
        let mut out: Vec<(DocId, usize)> =
            self.doc_grams.iter().map(|(id, n)| (*id, *n)).collect();
        out.sort_unstable();
        out
    }

    /// Reassemble an index from flat parts without re-computing grams —
    /// the warm-start import path. The caller (a validated snapshot
    /// loader) guarantees the parts came from [`NgramIndex::postings_sorted`]
    /// / [`NgramIndex::doc_grams_sorted`] of an index with the same `n`;
    /// nothing is re-derived here.
    pub fn from_parts<G, P>(n: usize, doc_grams: G, postings: P) -> Self
    where
        G: IntoIterator<Item = (DocId, usize)>,
        P: IntoIterator<Item = (Box<str>, Vec<DocId>)>,
    {
        NgramIndex {
            n: n.max(1),
            postings: postings.into_iter().collect(),
            doc_grams: doc_grams.into_iter().collect(),
        }
    }

    /// Fraction of the query's distinct N-grams contained in `other` —
    /// useful for tests and threshold tuning.
    pub fn share(&self, query: &str, other: &str) -> f64 {
        let q = self.grams(query);
        if q.is_empty() {
            return 0.0;
        }
        let o = self.grams(other);
        let shared = q.iter().filter(|g| o.binary_search(g).is_ok()).count();
        shared as f64 / q.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grams_of_short_text() {
        let index = NgramIndex::new(3);
        assert_eq!(index.grams("ab"), vec!["ab"]);
        assert!(index.grams("").is_empty());
    }

    #[test]
    fn grams_are_deduplicated() {
        let index = NgramIndex::new(2);
        assert_eq!(index.grams("aaaa").len(), 1);
    }

    #[test]
    fn identical_text_is_always_a_candidate() {
        let mut index = NgramIndex::new(3);
        index.insert(7, "ABCDEFGHIJ");
        assert_eq!(index.candidates("ABCDEFGHIJ", 1.0), vec![7]);
    }

    #[test]
    fn eta_threshold_filters() {
        let mut index = NgramIndex::new(3);
        index.insert(0, "ABCDEFGH"); // shares the ABC/BCD/CDE prefix grams
        index.insert(1, "WXYZWXYZ"); // shares nothing
        let strict = index.candidates("ABCDEZZZ", 0.9);
        assert!(strict.is_empty());
        let loose = index.candidates("ABCDEZZZ", 0.3);
        assert_eq!(loose, vec![0]);
    }

    #[test]
    fn multiple_documents_ranked_by_threshold() {
        let mut index = NgramIndex::new(3);
        index.insert(0, "AAABBBCCC");
        index.insert(1, "AAABBBZZZ");
        index.insert(2, "ZZZYYYXXX");
        let c = index.candidates("AAABBBCCC", 0.5);
        assert!(c.contains(&0));
        assert!(!c.contains(&2));
    }

    #[test]
    fn share_fraction() {
        let index = NgramIndex::new(3);
        assert_eq!(index.share("ABCDEF", "ABCDEF"), 1.0);
        assert_eq!(index.share("ABCDEF", "ZZZZZZ"), 0.0);
    }

    #[test]
    fn empty_query_matches_nothing() {
        let mut index = NgramIndex::new(3);
        index.insert(0, "ABCDEF");
        assert!(index.candidates("", 0.5).is_empty());
        assert_eq!(index.share("", "ABCDEF"), 0.0);
    }

    #[test]
    fn eta_exactly_at_threshold_boundary() {
        // Query "ABCDE" under n=3 has grams {ABC, BCD, CDE}; the doc
        // shares exactly 2 of 3 → a share of 2/3.
        let mut index = NgramIndex::new(3);
        index.insert(0, "ABCDZZZ");
        assert_eq!(index.share("ABCDE", "ABCDZZZ"), 2.0 / 3.0);
        // needed = ceil(η·3): at η = 2/3 exactly, needed = 2 → included.
        assert_eq!(index.candidates("ABCDE", 2.0 / 3.0), vec![0]);
        // Any η above the boundary pushes needed to 3 → excluded.
        assert!(index.candidates("ABCDE", 0.67).is_empty());
    }

    #[test]
    fn shorter_than_n_takes_single_gram_path() {
        let mut index = NgramIndex::new(5);
        assert_eq!(index.grams("abc"), vec!["abc"]);
        index.insert(3, "abc");
        // The whole text is the one gram: only an exact text matches …
        assert_eq!(index.candidates("abc", 1.0), vec![3]);
        // … and a different short text shares nothing.
        assert!(index.candidates("abd", 0.1).is_empty());
    }

    #[test]
    fn non_ascii_grams_use_char_windows() {
        let index = NgramIndex::new(3);
        // 5 chars → 3 windows of 3 chars each, multi-byte respected.
        let mut expected = vec!["hél", "éll", "llo"];
        expected.sort_unstable();
        assert_eq!(index.grams("héllo"), expected);
        // Short non-ASCII text takes the single-gram path.
        assert_eq!(index.grams("éà"), vec!["éà"]);
    }

    #[test]
    fn flat_roundtrip_preserves_candidates() {
        let mut index = NgramIndex::new(3);
        index.insert(0, "ABCDEFGH");
        index.insert(1, "ABCDXXXX");
        index.insert(2, "ZZZZZZZZ");
        let docs = index.doc_grams_sorted();
        let posts: Vec<(Box<str>, Vec<DocId>)> = index
            .postings_sorted()
            .into_iter()
            .map(|(g, ids)| (g.into(), ids.to_vec()))
            .collect();
        let rebuilt = NgramIndex::from_parts(3, docs, posts);
        assert_eq!(rebuilt.len(), 3);
        for query in ["ABCDEFGG", "ZZZZZZZZ", "ABCDXXXX"] {
            for eta in [0.3, 0.5, 1.0] {
                assert_eq!(rebuilt.candidates(query, eta), index.candidates(query, eta));
            }
        }
    }

    #[test]
    fn sorted_exports_are_deterministic() {
        let build = || {
            let mut i = NgramIndex::new(2);
            i.insert(9, "abcd");
            i.insert(3, "bcda");
            i
        };
        let (a, b) = (build(), build());
        assert_eq!(a.postings_sorted(), b.postings_sorted());
        assert_eq!(a.doc_grams_sorted(), b.doc_grams_sorted());
        assert_eq!(a.doc_grams_sorted(), vec![(3, 3), (9, 3)]);
    }

    proptest! {
        #[test]
        fn inserted_doc_is_its_own_candidate(text in "[A-Za-z0-9]{1,64}", n in 1usize..8) {
            let mut index = NgramIndex::new(n);
            index.insert(42, &text);
            let c = index.candidates(&text, 1.0);
            prop_assert!(c.contains(&42));
        }

        #[test]
        fn candidates_subset_of_corpus(
            docs in proptest::collection::vec("[A-D]{4,16}", 1..10),
            query in "[A-D]{4,16}",
            eta in 0.1f64..1.0,
        ) {
            let mut index = NgramIndex::new(3);
            for (i, d) in docs.iter().enumerate() {
                index.insert(i as DocId, d);
            }
            for id in index.candidates(&query, eta) {
                prop_assert!((id as usize) < docs.len());
            }
        }

        #[test]
        fn higher_eta_never_adds_candidates(
            docs in proptest::collection::vec("[A-D]{4,16}", 1..10),
            query in "[A-D]{4,16}",
        ) {
            let mut index = NgramIndex::new(3);
            for (i, d) in docs.iter().enumerate() {
                index.insert(i as DocId, d);
            }
            let loose = index.candidates(&query, 0.3);
            let strict = index.candidates(&query, 0.8);
            for id in strict {
                prop_assert!(loose.contains(&id));
            }
        }
    }
}
