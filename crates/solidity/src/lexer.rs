//! Lexer for Solidity source code and snippets.
//!
//! The lexer is deliberately forgiving: unknown characters become single-byte
//! punctuation tokens or are skipped, `...`/`…` is lexed as a placeholder
//! token, and unterminated strings are closed at the end of the line. This
//! matches the requirement of parsing snippets from Q&A sites, which are
//! frequently truncated or decorated.
//!
//! Since the interning rebuild the lexer allocates nothing per token on the
//! common path: words and numbers become [`Symbol`]s (a hash lookup, or a
//! single arena copy the first time a text is seen), spans are two `u32`
//! offsets, and line/column bookkeeping is gone — positions are resolved on
//! demand through an [`intern::LineIndex`]. The previous `String`-allocating
//! implementation is preserved verbatim in [`reference`] as the
//! differential-testing oracle.

use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};
use intern::{Symbol, SymbolCache};

pub mod reference;

/// Errors produced by the lexer. The lexer recovers from everything it can;
/// this only remains for inputs that cannot be tokenized at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description of the failure.
    pub message: String,
    /// Where it happened.
    pub span: Span,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for LexError {}


/// Tokenize `src` into a token stream ending in [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    thread_local! {
        static CACHE: std::cell::RefCell<SymbolCache> =
            std::cell::RefCell::new(SymbolCache::new());
    }
    CACHE.with(|cell| match cell.try_borrow_mut() {
        // The persistent per-thread memo: identifiers repeat heavily both
        // within and across sources, so the cache stays hot across calls.
        Ok(mut cache) => Lexer::new(src, &mut cache).run(),
        // Re-entrant `lex` call (not expected, but cheap to tolerate).
        Err(_) => Lexer::new(src, &mut SymbolCache::new()).run(),
    })
}

struct Lexer<'a, 'c> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    newline_pending: bool,
    tokens: Vec<Token>,
    cache: &'c mut SymbolCache,
}

impl<'a, 'c> Lexer<'a, 'c> {
    fn new(src: &'a str, cache: &'c mut SymbolCache) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            newline_pending: false,
            // Ballpark: one token per ~4 source bytes avoids most growth
            // reallocations without over-reserving for comment-heavy files.
            tokens: Vec::with_capacity(src.len() / 4 + 4),
            cache,
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        while self.pos < self.bytes.len() {
            self.skip_trivia();
            if self.pos >= self.bytes.len() {
                break;
            }
            self.next_token()?;
        }
        let span = Span::new(self.pos, self.pos);
        self.push(TokenKind::Eof, span);
        Ok(self.tokens)
    }

    fn peek(&self) -> u8 {
        self.bytes.get(self.pos).copied().unwrap_or(0)
    }

    fn peek_at(&self, offset: usize) -> u8 {
        self.bytes.get(self.pos + offset).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        if b == b'\n' {
            self.newline_pending = true;
        }
        b
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        let newline_before = std::mem::take(&mut self.newline_pending);
        self.tokens.push(Token { kind, span, newline_before });
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'\n' => {
                    self.pos += 1;
                    self.newline_pending = true;
                }
                b'/' if self.peek_at(1) == b'/' => {
                    // Scan the whole comment as a slice: one vectorizable
                    // search instead of a peek per byte. The terminating
                    // newline is left for the `b'\n'` arm above.
                    let rest = &self.bytes[self.pos..];
                    self.pos += rest
                        .iter()
                        .position(|&b| b == b'\n')
                        .unwrap_or(rest.len());
                }
                b'/' if self.peek_at(1) == b'*' => {
                    self.pos += 2;
                    loop {
                        let rest = &self.bytes[self.pos..];
                        let Some(star) = rest.iter().position(|&b| b == b'*') else {
                            // Unterminated comment: newlines inside still
                            // count for `newline_before` bookkeeping.
                            self.newline_pending |= rest.contains(&b'\n');
                            self.pos = self.bytes.len();
                            break;
                        };
                        self.newline_pending |= rest[..star].contains(&b'\n');
                        self.pos += star + 1;
                        if self.peek() == b'/' {
                            self.pos += 1;
                            break;
                        }
                    }
                }
                // Unicode ellipsis '…' (0xE2 0x80 0xA6) becomes a placeholder.
                0xE2 if self.peek_at(1) == 0x80 && self.peek_at(2) == 0xA6 => {
                    let start = self.pos;
                    self.pos += 3;
                    let span = Span::new(start, self.pos);
                    self.push(TokenKind::Ellipsis, span);
                }
                // Skip other non-ASCII bytes (smart quotes, arrows in prose).
                b if b >= 0x80 => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<(), LexError> {
        let start = self.pos;
        let b = self.peek();

        if b.is_ascii_alphabetic() || b == b'_' || b == b'$' {
            self.lex_word(start);
            return Ok(());
        }
        if b.is_ascii_digit() {
            self.lex_number(start);
            return Ok(());
        }
        if b == b'"' || b == b'\'' {
            self.lex_string(start);
            return Ok(());
        }

        // Punctuation, dispatched on the first byte with maximal munch —
        // one match instead of a linear probe of every operator spelling.
        let next1 = self.peek_at(1);
        let next2 = self.peek_at(2);
        let (punct, len): (&'static str, usize) = match b {
            b'(' => ("(", 1),
            b')' => (")", 1),
            b'{' => ("{", 1),
            b'}' => ("}", 1),
            b'[' => ("[", 1),
            b']' => ("]", 1),
            b';' => (";", 1),
            b',' => (",", 1),
            b'?' => ("?", 1),
            b':' => (":", 1),
            b'~' => ("~", 1),
            b'.' if next1 == b'.' && next2 == b'.' => ("...", 3),
            b'.' => (".", 1),
            b'=' => match next1 {
                b'=' => ("==", 2),
                b'>' => ("=>", 2),
                _ => ("=", 1),
            },
            b'+' => match next1 {
                b'=' => ("+=", 2),
                b'+' => ("++", 2),
                _ => ("+", 1),
            },
            b'-' => match next1 {
                b'=' => ("-=", 2),
                b'-' => ("--", 2),
                b'>' => ("->", 2),
                _ => ("-", 1),
            },
            b'*' => match next1 {
                b'*' if next2 == b'=' => ("**=", 3),
                b'*' => ("**", 2),
                b'=' => ("*=", 2),
                _ => ("*", 1),
            },
            b'/' if next1 == b'=' => ("/=", 2),
            b'/' => ("/", 1),
            b'%' if next1 == b'=' => ("%=", 2),
            b'%' => ("%", 1),
            b'!' if next1 == b'=' => ("!=", 2),
            b'!' => ("!", 1),
            b'^' if next1 == b'=' => ("^=", 2),
            b'^' => ("^", 1),
            b'&' => match next1 {
                b'&' => ("&&", 2),
                b'=' => ("&=", 2),
                _ => ("&", 1),
            },
            b'|' => match next1 {
                b'|' => ("||", 2),
                b'=' => ("|=", 2),
                _ => ("|", 1),
            },
            b'<' => match next1 {
                b'<' if next2 == b'=' => ("<<=", 3),
                b'<' => ("<<", 2),
                b'=' => ("<=", 2),
                _ => ("<", 1),
            },
            b'>' => match next1 {
                b'>' if next2 == b'>' && self.peek_at(3) == b'=' => (">>>=", 4),
                b'>' if next2 == b'=' => (">>=", 3),
                b'>' => (">>", 2),
                b'=' => (">=", 2),
                _ => (">", 1),
            },
            // Unknown ASCII character (`#`, `@`, backtick from markdown
            // fences, ...). Snippets contain these routinely; skip rather
            // than fail.
            _ => {
                self.pos += 1;
                return Ok(());
            }
        };
        self.pos += len;
        let span = Span::new(start, self.pos);
        if punct == "..." {
            self.push(TokenKind::Ellipsis, span);
        } else {
            self.push(TokenKind::Punct(punct), span);
        }
        Ok(())
    }

    fn lex_word(&mut self, start: usize) {
        let rest = &self.bytes[self.pos..];
        self.pos += rest
            .iter()
            .position(|&b| !(b.is_ascii_alphanumeric() || b == b'_' || b == b'$'))
            .unwrap_or(rest.len());
        let word = &self.src[start..self.pos];

        // `hex"??"` string literal.
        if word == "hex" && (self.peek() == b'"' || self.peek() == b'\'') {
            let quote = self.bump();
            let content_start = self.pos;
            while self.pos < self.bytes.len() && self.peek() != quote && self.peek() != b'\n' {
                self.pos += 1;
            }
            let content = self.cache.intern(&self.src[content_start..self.pos]);
            if self.peek() == quote {
                self.pos += 1;
            }
            let span = Span::new(start, self.pos);
            self.push(TokenKind::HexStr(content), span);
            return;
        }

        let span = Span::new(start, self.pos);
        match Keyword::from_str(word) {
            Some(kw) => self.push(TokenKind::Keyword(kw), span),
            None => {
                let sym = self.cache.intern(word);
                self.push(TokenKind::Ident(sym), span)
            }
        }
    }

    fn lex_number(&mut self, start: usize) {
        let mut saw_underscore = false;
        if self.peek() == b'0' && (self.peek_at(1) | 0x20) == b'x' {
            self.pos += 2;
            while self.peek().is_ascii_hexdigit() || self.peek() == b'_' {
                saw_underscore |= self.peek() == b'_';
                self.pos += 1;
            }
        } else {
            while self.peek().is_ascii_digit() || self.peek() == b'_' {
                saw_underscore |= self.peek() == b'_';
                self.pos += 1;
            }
            if self.peek() == b'.' && self.peek_at(1).is_ascii_digit() {
                self.pos += 1;
                while self.peek().is_ascii_digit() || self.peek() == b'_' {
                    saw_underscore |= self.peek() == b'_';
                    self.pos += 1;
                }
            }
            if (self.peek() | 0x20) == b'e'
                && (self.peek_at(1).is_ascii_digit()
                    || (self.peek_at(1) == b'-' && self.peek_at(2).is_ascii_digit()))
            {
                self.pos += 1;
                if self.peek() == b'-' {
                    self.pos += 1;
                }
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
            }
        }
        let span = Span::new(start, self.pos);
        let raw = &self.src[start..self.pos];
        // `1_000`-style separators are rare; only they pay for a cleanup
        // allocation before interning.
        let text = if saw_underscore {
            Symbol::intern(&raw.replace('_', ""))
        } else {
            self.cache.intern(raw)
        };
        self.push(TokenKind::Number(text), span);
    }

    fn lex_string(&mut self, start: usize) {
        let quote = self.bump();
        let content_start = self.pos;
        // Fast path: scan ahead for a clean ASCII literal with no escapes,
        // which interns the source slice directly. Escapes and non-ASCII
        // bytes fall back to the byte-by-byte decode of the reference
        // lexer (which maps each raw byte to a `char`).
        let mut scan = self.pos;
        let mut simple = true;
        while scan < self.bytes.len() {
            let b = self.bytes[scan];
            if b == quote || b == b'\n' {
                break;
            }
            if b == b'\\' || b >= 0x80 {
                simple = false;
                break;
            }
            scan += 1;
        }
        if simple {
            self.pos = scan;
            let content = self.cache.intern(&self.src[content_start..self.pos]);
            // Unterminated string: close at end of line (snippet tolerance).
            if self.peek() == quote {
                self.pos += 1;
            }
            let span = Span::new(start, self.pos);
            self.push(TokenKind::Str(content), span);
            return;
        }
        // Slow path. The ASCII prefix scanned above is copied verbatim;
        // decoding continues exactly like the reference implementation.
        let mut content = String::with_capacity(scan - content_start + 16);
        content.push_str(&self.src[content_start..scan]);
        self.pos = scan;
        while self.pos < self.bytes.len() {
            let b = self.peek();
            if b == quote {
                self.bump();
                break;
            }
            // Unterminated string: close at end of line (snippet tolerance).
            if b == b'\n' {
                break;
            }
            if b == b'\\' {
                self.bump();
                let escaped = self.bump();
                content.push(match escaped {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'0' => '\0',
                    other => other as char,
                });
                continue;
            }
            content.push(self.bump() as char);
        }
        let span = Span::new(start, self.pos);
        self.push(TokenKind::Str(Symbol::intern(&content)), span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn lex_simple_statement() {
        let ks = kinds("owner = msg.sender;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident(sym("owner")),
                TokenKind::Punct("="),
                TokenKind::Ident(sym("msg")),
                TokenKind::Punct("."),
                TokenKind::Ident(sym("sender")),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_recognized() {
        let ks = kinds("contract function payable");
        assert!(matches!(ks[0], TokenKind::Keyword(Keyword::Contract)));
        assert!(matches!(ks[1], TokenKind::Keyword(Keyword::Function)));
        assert!(matches!(ks[2], TokenKind::Keyword(Keyword::Payable)));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // line comment\n/* block\ncomment */ b");
        assert_eq!(ks.len(), 3); // a, b, eof
    }

    #[test]
    fn newline_before_is_tracked() {
        let toks = lex("a\nb c").unwrap();
        assert!(!toks[0].newline_before);
        assert!(toks[1].newline_before);
        assert!(!toks[2].newline_before);
    }

    #[test]
    fn newline_inside_block_comment_still_counts() {
        let toks = lex("a /* x\ny */ b").unwrap();
        assert!(toks[1].newline_before);
    }

    #[test]
    fn ellipsis_placeholder() {
        let ks = kinds("... …");
        assert_eq!(ks, vec![TokenKind::Ellipsis, TokenKind::Ellipsis, TokenKind::Eof]);
    }

    #[test]
    fn numbers() {
        let ks = kinds("1 0x1F 1_000 2.5 1e18 3e-2");
        assert_eq!(
            ks[..6],
            [
                TokenKind::Number(sym("1")),
                TokenKind::Number(sym("0x1F")),
                TokenKind::Number(sym("1000")),
                TokenKind::Number(sym("2.5")),
                TokenKind::Number(sym("1e18")),
                TokenKind::Number(sym("3e-2")),
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        let ks = kinds(r#""hello \"x\"" 'y'"#);
        assert_eq!(ks[0], TokenKind::Str(sym("hello \"x\"")));
        assert_eq!(ks[1], TokenKind::Str(sym("y")));
    }

    #[test]
    fn unterminated_string_closes_at_newline() {
        let ks = kinds("\"oops\nnext");
        assert_eq!(ks[0], TokenKind::Str(sym("oops")));
        assert_eq!(ks[1], TokenKind::Ident(sym("next")));
    }

    #[test]
    fn hex_string() {
        let ks = kinds(r#"hex"deadbeef""#);
        assert_eq!(ks[0], TokenKind::HexStr(sym("deadbeef")));
    }

    #[test]
    fn maximal_munch_operators() {
        let ks = kinds("a >>= b == c => d");
        assert_eq!(ks[1], TokenKind::Punct(">>="));
        assert_eq!(ks[3], TokenKind::Punct("=="));
        assert_eq!(ks[5], TokenKind::Punct("=>"));
    }

    #[test]
    fn garbage_bytes_are_skipped() {
        let ks = kinds("a @ # ` b £");
        assert_eq!(ks.len(), 3); // a, b, eof
    }

    #[test]
    fn spans_point_at_source() {
        let src = "uint x = 1;";
        let toks = lex(src).unwrap();
        assert_eq!(toks[0].span.text(src), "uint");
        assert_eq!(toks[1].span.text(src), "x");
        assert_eq!(toks[3].span.text(src), "1");
    }
}
