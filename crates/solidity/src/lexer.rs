//! Lexer for Solidity source code and snippets.
//!
//! The lexer is deliberately forgiving: unknown characters become single-byte
//! punctuation tokens or are skipped, `...`/`…` is lexed as a placeholder
//! token, and unterminated strings are closed at the end of the line. This
//! matches the requirement of parsing snippets from Q&A sites, which are
//! frequently truncated or decorated.

use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Errors produced by the lexer. The lexer recovers from everything it can;
/// this only remains for inputs that cannot be tokenized at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description of the failure.
    pub message: String,
    /// Where it happened.
    pub span: Span,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// All multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    ">>>=", "<<=", ">>=", "**=", "...", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=",
    "*=", "/=", "%=", "|=", "&=", "^=", "=>", "->", "++", "--", "**", "<<", ">>", "(",
    ")", "{", "}", "[", "]", ";", ",", ".", "?", ":", "=", "+", "-", "*", "/", "%", "!",
    "<", ">", "&", "|", "^", "~",
];

/// Tokenize `src` into a token stream ending in [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    newline_pending: bool,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            newline_pending: false,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        while self.pos < self.bytes.len() {
            self.skip_trivia();
            if self.pos >= self.bytes.len() {
                break;
            }
            self.next_token()?;
        }
        let span = Span::new(self.pos, self.pos, self.line, self.col);
        self.push(TokenKind::Eof, span);
        Ok(self.tokens)
    }

    fn peek(&self) -> u8 {
        self.bytes.get(self.pos).copied().unwrap_or(0)
    }

    fn peek_at(&self, offset: usize) -> u8 {
        self.bytes.get(self.pos + offset).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.newline_pending = true;
        } else {
            self.col += 1;
        }
        b
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        let newline_before = std::mem::take(&mut self.newline_pending);
        self.tokens.push(Token { kind, span, newline_before });
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == b'/' => {
                    while self.pos < self.bytes.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek_at(1) == b'*' => {
                    self.bump();
                    self.bump();
                    while self.pos < self.bytes.len() {
                        if self.peek() == b'*' && self.peek_at(1) == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                // Unicode ellipsis '…' (0xE2 0x80 0xA6) becomes a placeholder.
                0xE2 if self.peek_at(1) == 0x80 && self.peek_at(2) == 0xA6 => {
                    let start = self.pos;
                    let (line, col) = (self.line, self.col);
                    self.pos += 3;
                    self.col += 1;
                    let span = Span::new(start, self.pos, line, col);
                    self.push(TokenKind::Ellipsis, span);
                }
                // Skip other non-ASCII bytes (smart quotes, arrows in prose).
                b if b >= 0x80 => {
                    self.bump();
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<(), LexError> {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        let b = self.peek();

        if b.is_ascii_alphabetic() || b == b'_' || b == b'$' {
            self.lex_word(start, line, col);
            return Ok(());
        }
        if b.is_ascii_digit() {
            self.lex_number(start, line, col);
            return Ok(());
        }
        if b == b'"' || b == b'\'' {
            self.lex_string(start, line, col);
            return Ok(());
        }

        for punct in PUNCTS {
            if self.src[self.pos..].starts_with(punct) {
                for _ in 0..punct.len() {
                    self.bump();
                }
                let span = Span::new(start, self.pos, line, col);
                if *punct == "..." {
                    self.push(TokenKind::Ellipsis, span);
                } else {
                    self.push(TokenKind::Punct(punct), span);
                }
                return Ok(());
            }
        }

        // Unknown ASCII character (`#`, `@`, backtick from markdown fences,
        // ...). Snippets contain these routinely; skip rather than fail.
        self.bump();
        Ok(())
    }

    fn lex_word(&mut self, start: usize, line: u32, col: u32) {
        while {
            let b = self.peek();
            b.is_ascii_alphanumeric() || b == b'_' || b == b'$'
        } {
            self.bump();
        }
        let word = &self.src[start..self.pos];

        // `hex"??"` string literal.
        if word == "hex" && (self.peek() == b'"' || self.peek() == b'\'') {
            let quote = self.bump();
            let content_start = self.pos;
            while self.pos < self.bytes.len() && self.peek() != quote && self.peek() != b'\n' {
                self.bump();
            }
            let content = self.src[content_start..self.pos].to_string();
            if self.peek() == quote {
                self.bump();
            }
            let span = Span::new(start, self.pos, line, col);
            self.push(TokenKind::HexStr(content), span);
            return;
        }

        let span = Span::new(start, self.pos, line, col);
        match Keyword::from_str(word) {
            Some(kw) => self.push(TokenKind::Keyword(kw), span),
            None => self.push(TokenKind::Ident(word.to_string()), span),
        }
    }

    fn lex_number(&mut self, start: usize, line: u32, col: u32) {
        if self.peek() == b'0' && (self.peek_at(1) | 0x20) == b'x' {
            self.bump();
            self.bump();
            while self.peek().is_ascii_hexdigit() || self.peek() == b'_' {
                self.bump();
            }
        } else {
            while self.peek().is_ascii_digit() || self.peek() == b'_' {
                self.bump();
            }
            if self.peek() == b'.' && self.peek_at(1).is_ascii_digit() {
                self.bump();
                while self.peek().is_ascii_digit() || self.peek() == b'_' {
                    self.bump();
                }
            }
            if (self.peek() | 0x20) == b'e'
                && (self.peek_at(1).is_ascii_digit()
                    || (self.peek_at(1) == b'-' && self.peek_at(2).is_ascii_digit()))
            {
                self.bump();
                if self.peek() == b'-' {
                    self.bump();
                }
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            }
        }
        let span = Span::new(start, self.pos, line, col);
        let text = self.src[start..self.pos].replace('_', "");
        self.push(TokenKind::Number(text), span);
    }

    fn lex_string(&mut self, start: usize, line: u32, col: u32) {
        let quote = self.bump();
        let mut content = String::new();
        while self.pos < self.bytes.len() {
            let b = self.peek();
            if b == quote {
                self.bump();
                break;
            }
            // Unterminated string: close at end of line (snippet tolerance).
            if b == b'\n' {
                break;
            }
            if b == b'\\' {
                self.bump();
                let escaped = self.bump();
                content.push(match escaped {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'0' => '\0',
                    other => other as char,
                });
                continue;
            }
            content.push(self.bump() as char);
        }
        let span = Span::new(start, self.pos, line, col);
        self.push(TokenKind::Str(content), span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_statement() {
        let ks = kinds("owner = msg.sender;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("owner".into()),
                TokenKind::Punct("="),
                TokenKind::Ident("msg".into()),
                TokenKind::Punct("."),
                TokenKind::Ident("sender".into()),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_recognized() {
        let ks = kinds("contract function payable");
        assert!(matches!(ks[0], TokenKind::Keyword(Keyword::Contract)));
        assert!(matches!(ks[1], TokenKind::Keyword(Keyword::Function)));
        assert!(matches!(ks[2], TokenKind::Keyword(Keyword::Payable)));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // line comment\n/* block\ncomment */ b");
        assert_eq!(ks.len(), 3); // a, b, eof
    }

    #[test]
    fn newline_before_is_tracked() {
        let toks = lex("a\nb c").unwrap();
        assert!(!toks[0].newline_before);
        assert!(toks[1].newline_before);
        assert!(!toks[2].newline_before);
    }

    #[test]
    fn ellipsis_placeholder() {
        let ks = kinds("... …");
        assert_eq!(ks, vec![TokenKind::Ellipsis, TokenKind::Ellipsis, TokenKind::Eof]);
    }

    #[test]
    fn numbers() {
        let ks = kinds("1 0x1F 1_000 2.5 1e18 3e-2");
        assert_eq!(
            ks[..6],
            [
                TokenKind::Number("1".into()),
                TokenKind::Number("0x1F".into()),
                TokenKind::Number("1000".into()),
                TokenKind::Number("2.5".into()),
                TokenKind::Number("1e18".into()),
                TokenKind::Number("3e-2".into()),
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        let ks = kinds(r#""hello \"x\"" 'y'"#);
        assert_eq!(ks[0], TokenKind::Str("hello \"x\"".into()));
        assert_eq!(ks[1], TokenKind::Str("y".into()));
    }

    #[test]
    fn unterminated_string_closes_at_newline() {
        let ks = kinds("\"oops\nnext");
        assert_eq!(ks[0], TokenKind::Str("oops".into()));
        assert_eq!(ks[1], TokenKind::Ident("next".into()));
    }

    #[test]
    fn hex_string() {
        let ks = kinds(r#"hex"deadbeef""#);
        assert_eq!(ks[0], TokenKind::HexStr("deadbeef".into()));
    }

    #[test]
    fn maximal_munch_operators() {
        let ks = kinds("a >>= b == c => d");
        assert_eq!(ks[1], TokenKind::Punct(">>="));
        assert_eq!(ks[3], TokenKind::Punct("=="));
        assert_eq!(ks[5], TokenKind::Punct("=>"));
    }

    #[test]
    fn garbage_bytes_are_skipped() {
        let ks = kinds("a @ # ` b £");
        assert_eq!(ks.len(), 3); // a, b, eof
    }

    #[test]
    fn spans_point_at_source() {
        let src = "uint x = 1;";
        let toks = lex(src).unwrap();
        assert_eq!(toks[0].span.text(src), "uint");
        assert_eq!(toks[1].span.text(src), "x");
        assert_eq!(toks[3].span.text(src), "1");
    }
}
