//! Compact byte-offset source spans.
//!
//! A span is two `u32` byte offsets — 8 bytes, `Copy`, no line/column
//! payload. Human-facing line/column positions are resolved on demand
//! through the [`intern::LineIndex`] built once per source (carried by
//! [`crate::ast::SourceUnit`]), instead of being threaded through every
//! token and AST node as they were before the interning rebuild.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[start, end)` into the original source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes. The sentinel
    /// offsets are out of range for any real source, so a dummy is never
    /// confused with a genuine zero-length span at offset 0.
    pub const DUMMY: Span = Span { start: u32::MAX, end: u32::MAX };

    /// Create a new span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start: start as u32, end: end as u32 }
    }

    /// Whether this is the [`Span::DUMMY`] sentinel.
    pub fn is_dummy(self) -> bool {
        self == Span::DUMMY
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// Dummy spans are treated as identity elements so synthesized nodes do
    /// not drag real spans down to offset zero.
    pub fn to(self, other: Span) -> Span {
        if self.is_dummy() {
            return other;
        }
        if other.is_dummy() {
            return self;
        }
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start) as usize
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extract the spanned text from the source it was produced from.
    ///
    /// Returns an empty string if the span is out of bounds for `src`
    /// (e.g. a dummy span of a synthesized node).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start as usize..self.end as usize).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_dummy() {
            write!(f, "<dummy>")
        } else {
            write!(f, "{}..{}", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_spans() {
        let a = Span::new(4, 10);
        let b = Span::new(12, 20);
        let j = a.to(b);
        assert_eq!(j.start, 4);
        assert_eq!(j.end, 20);
    }

    #[test]
    fn dummy_is_identity() {
        let a = Span::new(4, 10);
        assert_eq!(Span::DUMMY.to(a), a);
        assert_eq!(a.to(Span::DUMMY), a);
        assert!(Span::DUMMY.is_dummy());
        assert!(!a.is_dummy());
    }

    #[test]
    fn zero_offset_span_is_not_dummy() {
        assert!(!Span::new(0, 0).is_dummy());
    }

    #[test]
    fn text_extraction() {
        let src = "hello world";
        let s = Span::new(6, 11);
        assert_eq!(s.text(src), "world");
        assert_eq!(Span::new(100, 200).text(src), "");
        assert_eq!(Span::DUMMY.text(src), "");
    }
}
