//! Byte-offset source spans with line/column information.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[start, end)` into the original source text,
/// together with the 1-based line and column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0, line: 0, col: 0 };

    /// Create a new span.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span { start, end, line, col }
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// Dummy spans are treated as identity elements so synthesized nodes do
    /// not drag real spans down to offset zero.
    pub fn to(self, other: Span) -> Span {
        if self == Span::DUMMY {
            return other;
        }
        if other == Span::DUMMY {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
            col: if self.start <= other.start { self.col } else { other.col },
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extract the spanned text from the source it was produced from.
    ///
    /// Returns an empty string if the span is out of bounds for `src`
    /// (e.g. a dummy span of a synthesized node).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_spans() {
        let a = Span::new(4, 10, 1, 5);
        let b = Span::new(12, 20, 2, 3);
        let j = a.to(b);
        assert_eq!(j.start, 4);
        assert_eq!(j.end, 20);
        assert_eq!(j.line, 1);
    }

    #[test]
    fn dummy_is_identity() {
        let a = Span::new(4, 10, 1, 5);
        assert_eq!(Span::DUMMY.to(a), a);
        assert_eq!(a.to(Span::DUMMY), a);
    }

    #[test]
    fn text_extraction() {
        let src = "hello world";
        let s = Span::new(6, 11, 1, 7);
        assert_eq!(s.text(src), "world");
        assert_eq!(Span::new(100, 200, 1, 1).text(src), "");
    }
}
