//! The workspace-shared analysis error type.
//!
//! Every layer of the analysis pipeline — parsing ([`crate::parser`]),
//! CPG translation (`cpg`), vulnerability queries (`ccc`) and clone
//! fingerprinting (`ccd`) — reports failures through one non-exhaustive
//! [`AnalysisError`] enum, so the `pipeline::api` facade and the analysis
//! service can propagate a single typed error instead of unwrapping a
//! different stringly error per crate. The type lives here because this
//! crate is the root of the analysis dependency DAG: everything that can
//! fail already depends on the front-end.

use crate::parser::ParseError;
use std::fmt;

/// A failure anywhere in the analysis pipeline.
///
/// The enum is `#[non_exhaustive]`: downstream matches must carry a
/// wildcard arm, so new failure classes can be added without a breaking
/// change. Stable machine-readable codes come from
/// [`AnalysisError::code`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The source failed to lex or parse.
    Parse {
        /// Parser diagnostic.
        message: String,
        /// 1-based line of the offending token (0 when unknown).
        line: u32,
        /// 1-based column of the offending token (0 when unknown).
        col: u32,
    },
    /// AST → CPG translation failed.
    GraphBuild {
        /// Builder diagnostic.
        message: String,
    },
    /// A query could not run — e.g. an unknown detector name in a request.
    Query {
        /// Query diagnostic.
        message: String,
    },
    /// The per-request deadline elapsed before the pipeline finished.
    Timeout {
        /// The pipeline stage that observed the elapsed deadline.
        stage: String,
        /// The configured budget in milliseconds.
        budget_ms: u64,
    },
    /// The request itself is unusable (empty source, nothing tokenizable,
    /// malformed payload, ...).
    InvalidRequest {
        /// Request diagnostic.
        message: String,
    },
    /// The pipeline itself failed: a panic caught by the isolation layer,
    /// an injected fault, or a violated internal invariant. Unlike every
    /// other variant this is *our* fault, not the request's — the analysis
    /// service maps it to HTTP 500 and the circuit breaker counts it.
    Internal {
        /// What went wrong (panic payload or fault description).
        message: String,
    },
    /// A persistent index snapshot failed validation: truncated file,
    /// checksum mismatch, out-of-bounds offsets, bad magic. Like
    /// [`AnalysisError::Internal`] this is our fault (HTTP 500), but the
    /// distinct code lets operators tell "disk state is bad" from "code
    /// panicked".
    IndexCorrupt {
        /// What failed to validate.
        message: String,
    },
    /// A persistent index snapshot was written by an incompatible format
    /// version. The on-disk state is internally consistent but this build
    /// cannot read it — HTTP 409, not 500: re-compact to upgrade.
    IndexVersion {
        /// Format version found in the snapshot header.
        found: u32,
        /// Format version this build reads and writes.
        expected: u32,
    },
    /// An exclusive index operation (compaction) is already in flight.
    /// Transient by construction — HTTP 503, retry after the current
    /// operation finishes.
    IndexBusy {
        /// Which operation holds the exclusive slot.
        message: String,
    },
}

impl AnalysisError {
    /// Shorthand for a [`AnalysisError::Query`] error.
    pub fn query(message: impl Into<String>) -> AnalysisError {
        AnalysisError::Query { message: message.into() }
    }

    /// Shorthand for an [`AnalysisError::InvalidRequest`] error.
    pub fn invalid(message: impl Into<String>) -> AnalysisError {
        AnalysisError::InvalidRequest { message: message.into() }
    }

    /// Shorthand for a [`AnalysisError::Timeout`] error.
    pub fn timeout(stage: impl Into<String>, budget_ms: u64) -> AnalysisError {
        AnalysisError::Timeout { stage: stage.into(), budget_ms }
    }

    /// Shorthand for an [`AnalysisError::Internal`] error.
    pub fn internal(message: impl Into<String>) -> AnalysisError {
        AnalysisError::Internal { message: message.into() }
    }

    /// Shorthand for an [`AnalysisError::IndexCorrupt`] error.
    pub fn index_corrupt(message: impl Into<String>) -> AnalysisError {
        AnalysisError::IndexCorrupt { message: message.into() }
    }

    /// Shorthand for an [`AnalysisError::IndexVersion`] error.
    pub fn index_version(found: u32, expected: u32) -> AnalysisError {
        AnalysisError::IndexVersion { found, expected }
    }

    /// Shorthand for an [`AnalysisError::IndexBusy`] error.
    pub fn index_busy(message: impl Into<String>) -> AnalysisError {
        AnalysisError::IndexBusy { message: message.into() }
    }

    /// Build an [`AnalysisError::Internal`] from a caught panic payload
    /// (the `Box<dyn Any>` handed back by `catch_unwind`).
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>, unit: &str) -> AnalysisError {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        AnalysisError::internal(format!("panic in {unit}: {message}"))
    }

    /// Stable machine-readable error code, used in the versioned JSON
    /// encoding and for HTTP status mapping in the analysis service.
    pub fn code(&self) -> &'static str {
        match self {
            AnalysisError::Parse { .. } => "parse",
            AnalysisError::GraphBuild { .. } => "graph_build",
            AnalysisError::Query { .. } => "query",
            AnalysisError::Timeout { .. } => "timeout",
            AnalysisError::InvalidRequest { .. } => "invalid_request",
            AnalysisError::Internal { .. } => "internal",
            AnalysisError::IndexCorrupt { .. } => "index_corrupt",
            AnalysisError::IndexVersion { .. } => "index_version",
            AnalysisError::IndexBusy { .. } => "index_busy",
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Parse { message, line, col } if *line > 0 => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            AnalysisError::Parse { message, .. } => write!(f, "parse error: {message}"),
            AnalysisError::GraphBuild { message } => write!(f, "graph build error: {message}"),
            AnalysisError::Query { message } => write!(f, "query error: {message}"),
            AnalysisError::Timeout { stage, budget_ms } => {
                write!(f, "timeout in {stage} (budget {budget_ms} ms)")
            }
            AnalysisError::InvalidRequest { message } => {
                write!(f, "invalid request: {message}")
            }
            AnalysisError::Internal { message } => write!(f, "internal error: {message}"),
            AnalysisError::IndexCorrupt { message } => {
                write!(f, "index snapshot corrupt: {message}")
            }
            AnalysisError::IndexVersion { found, expected } => {
                write!(f, "index snapshot format v{found} (this build reads v{expected})")
            }
            AnalysisError::IndexBusy { message } => write!(f, "index busy: {message}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<ParseError> for AnalysisError {
    fn from(e: ParseError) -> Self {
        AnalysisError::Parse { message: e.message, line: e.line, col: e.col }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_carry_location() {
        let err = crate::parse_source("contract {").unwrap_err();
        let shared: AnalysisError = err.into();
        assert_eq!(shared.code(), "parse");
        let AnalysisError::Parse { line, .. } = &shared else {
            panic!("wrong variant: {shared:?}")
        };
        assert!(*line >= 1, "{shared}");
        assert!(shared.to_string().starts_with("parse error"));
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            AnalysisError::Parse { message: "m".into(), line: 0, col: 0 },
            AnalysisError::GraphBuild { message: "m".into() },
            AnalysisError::query("m"),
            AnalysisError::timeout("scan/parse", 5),
            AnalysisError::invalid("m"),
            AnalysisError::internal("m"),
            AnalysisError::index_corrupt("m"),
            AnalysisError::index_version(2, 1),
            AnalysisError::index_busy("m"),
        ];
        let codes: std::collections::HashSet<&str> = all.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn index_errors_render_their_detail() {
        assert_eq!(
            AnalysisError::index_version(3, 1).to_string(),
            "index snapshot format v3 (this build reads v1)"
        );
        assert!(AnalysisError::index_corrupt("short file").to_string().contains("short file"));
        assert!(AnalysisError::index_busy("compaction").to_string().contains("compaction"));
    }
}
