//! Token definitions for the Solidity lexer.

use crate::span::Span;
use intern::Symbol;
use std::borrow::Cow;
use std::fmt;

/// The kind of a lexed token.
///
/// All textual payloads are interned [`Symbol`]s, so tokens are 16-byte
/// `Copy` values: cloning a token stream, bumping the parser cursor and
/// comparing token texts are all integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Identifier or non-reserved word.
    Ident(Symbol),
    /// Reserved keyword (`contract`, `function`, `require`, ...).
    Keyword(Keyword),
    /// Decimal or hexadecimal number literal, including scientific notation.
    Number(Symbol),
    /// String literal, with quotes stripped.
    Str(Symbol),
    /// Hex string literal `hex"..."`, with quotes stripped.
    HexStr(Symbol),
    /// A punctuation or operator token, e.g. `+`, `==`, `=>`.
    Punct(&'static str),
    /// A `...`/`…` placeholder signaling elided code in a snippet.
    Ellipsis,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Return the textual form of the token as it would appear in source.
    ///
    /// Borrowed for every kind except string literals, whose quoted source
    /// form is reconstructed on demand — `text()` no longer allocates on
    /// the identifier/number/keyword hot path.
    pub fn text(&self) -> Cow<'static, str> {
        match self {
            TokenKind::Ident(s) => Cow::Borrowed(s.as_str()),
            TokenKind::Keyword(k) => Cow::Borrowed(k.as_str()),
            TokenKind::Number(s) => Cow::Borrowed(s.as_str()),
            TokenKind::Str(s) => Cow::Owned(format!("\"{s}\"")),
            TokenKind::HexStr(s) => Cow::Owned(format!("hex\"{s}\"")),
            TokenKind::Punct(p) => Cow::Borrowed(p),
            TokenKind::Ellipsis => Cow::Borrowed("..."),
            TokenKind::Eof => Cow::Borrowed(""),
        }
    }
}

/// A token with its source span and layout information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
    /// Whether at least one newline separates this token from the previous
    /// one. The parser uses this to accept newline-terminated statements
    /// (cf. §4.1 "Statement Termination").
    pub newline_before: bool,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.text())
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Reserved Solidity keywords recognized by the lexer.
        ///
        /// This covers the keyword set of Solidity up to 0.8 plus legacy
        /// keywords (`throw`, `suicide`, `var`, `constant` on functions) so
        /// that snippets written against any compiler era parse.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)] // each variant is the keyword it names
        pub enum Keyword {
            $($variant),+
        }

        impl Keyword {
            /// The source text of the keyword.
            pub fn as_str(self) -> &'static str {
                match self { $(Keyword::$variant => $text),+ }
            }

            /// Look a word up in the keyword table.
            #[allow(clippy::should_implement_trait)] // fallible lookup, not parsing
            pub fn from_str(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$variant),)+
                    _ => None,
                }
            }

            /// All keywords, for table-driven tests and corpus filtering.
            pub const ALL: &'static [Keyword] = &[$(Keyword::$variant),+];
        }
    };
}

keywords! {
    Abstract => "abstract",
    Address => "address",
    Anonymous => "anonymous",
    As => "as",
    Assembly => "assembly",
    Bool => "bool",
    Break => "break",
    Byte => "byte",
    Bytes => "bytes",
    Calldata => "calldata",
    Catch => "catch",
    Constant => "constant",
    Constructor => "constructor",
    Continue => "continue",
    Contract => "contract",
    Days => "days",
    Delete => "delete",
    Do => "do",
    Else => "else",
    Emit => "emit",
    Enum => "enum",
    Error => "error",
    Ether => "ether",
    Event => "event",
    External => "external",
    Fallback => "fallback",
    False => "false",
    Finney => "finney",
    Fixed => "fixed",
    For => "for",
    Function => "function",
    Gwei => "gwei",
    Hours => "hours",
    If => "if",
    Immutable => "immutable",
    Import => "import",
    Indexed => "indexed",
    Interface => "interface",
    Internal => "internal",
    Is => "is",
    Library => "library",
    Mapping => "mapping",
    Memory => "memory",
    Minutes => "minutes",
    Modifier => "modifier",
    New => "new",
    Override => "override",
    Payable => "payable",
    Pragma => "pragma",
    Private => "private",
    Public => "public",
    Pure => "pure",
    Receive => "receive",
    Return => "return",
    Returns => "returns",
    Seconds => "seconds",
    Storage => "storage",
    String => "string",
    Struct => "struct",
    Szabo => "szabo",
    Throw => "throw",
    True => "true",
    Try => "try",
    Type => "type",
    Ufixed => "ufixed",
    Unchecked => "unchecked",
    Using => "using",
    Var => "var",
    View => "view",
    Virtual => "virtual",
    Weeks => "weeks",
    Wei => "wei",
    While => "while",
    Years => "years",
}

impl Keyword {
    /// Whether this keyword is a visibility specifier.
    pub fn is_visibility(self) -> bool {
        matches!(
            self,
            Keyword::Public | Keyword::Private | Keyword::Internal | Keyword::External
        )
    }

    /// Whether this keyword is a state-mutability specifier.
    pub fn is_mutability(self) -> bool {
        matches!(
            self,
            Keyword::Pure | Keyword::View | Keyword::Payable | Keyword::Constant
        )
    }

    /// Whether this keyword denotes an ether denomination (`wei`, `ether`, ...).
    pub fn is_denomination(self) -> bool {
        matches!(
            self,
            Keyword::Wei
                | Keyword::Gwei
                | Keyword::Szabo
                | Keyword::Finney
                | Keyword::Ether
        )
    }

    /// Whether this keyword denotes a time unit (`seconds`, `days`, ...).
    pub fn is_time_unit(self) -> bool {
        matches!(
            self,
            Keyword::Seconds
                | Keyword::Minutes
                | Keyword::Hours
                | Keyword::Days
                | Keyword::Weeks
                | Keyword::Years
        )
    }
}

/// Symbol-keyed variant of [`is_elementary_type`]: one integer set probe
/// against the (closed) set of elementary type names. Only the open-ended
/// `fixedMxN`/`ufixedMxN` family falls back to text parsing.
pub fn is_elementary_type_sym(word: intern::Symbol) -> bool {
    use std::sync::OnceLock;
    static ELEMENTARY: OnceLock<intern::FxHashSet<intern::Symbol>> = OnceLock::new();
    let set = ELEMENTARY.get_or_init(|| {
        let mut set = intern::FxHashSet::default();
        for base in ["address", "bool", "string", "var", "byte", "bytes", "uint", "int",
                     "fixed", "ufixed"] {
            set.insert(intern::Symbol::intern(base));
        }
        for bits in (8..=256).step_by(8) {
            set.insert(intern::Symbol::intern(&format!("uint{bits}")));
            set.insert(intern::Symbol::intern(&format!("int{bits}")));
        }
        for n in 1..=32 {
            set.insert(intern::Symbol::intern(&format!("bytes{n}")));
        }
        set
    });
    set.contains(&word) || fixed_point(word.as_str())
}

/// Check whether a word names an elementary Solidity type (including the
/// sized variants `uint8`..`uint256`, `int8`..`int256`, `bytes1`..`bytes32`).
pub fn is_elementary_type(word: &str) -> bool {
    match word {
        "address" | "bool" | "string" | "var" | "byte" | "bytes" | "uint" | "int"
        | "fixed" | "ufixed" => true,
        _ => {
            sized_int(word, "uint")
                || sized_int(word, "int")
                || sized_bytes(word)
                || fixed_point(word)
        }
    }
}

fn sized_int(word: &str, prefix: &str) -> bool {
    word.strip_prefix(prefix)
        .and_then(|rest| rest.parse::<u32>().ok())
        .map(|bits| (8..=256).contains(&bits) && bits % 8 == 0)
        .unwrap_or(false)
}

fn sized_bytes(word: &str) -> bool {
    word.strip_prefix("bytes")
        .and_then(|rest| rest.parse::<u32>().ok())
        .map(|n| (1..=32).contains(&n))
        .unwrap_or(false)
}

fn fixed_point(word: &str) -> bool {
    for prefix in ["ufixed", "fixed"] {
        if let Some(rest) = word.strip_prefix(prefix) {
            let mut parts = rest.splitn(2, 'x');
            if let (Some(m), Some(n)) = (parts.next(), parts.next()) {
                if m.parse::<u32>().is_ok() && n.parse::<u32>().is_ok() {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in Keyword::ALL {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(*kw));
        }
    }

    #[test]
    fn unknown_word_is_not_keyword() {
        assert_eq!(Keyword::from_str("banana"), None);
        assert_eq!(Keyword::from_str("Contract"), None); // case-sensitive
    }

    #[test]
    fn elementary_types() {
        assert!(is_elementary_type("uint256"));
        assert!(is_elementary_type("uint8"));
        assert!(is_elementary_type("bytes32"));
        assert!(is_elementary_type("address"));
        assert!(is_elementary_type("ufixed128x18"));
        assert!(!is_elementary_type("uint7"));
        assert!(!is_elementary_type("uint512"));
        assert!(!is_elementary_type("bytes33"));
        assert!(!is_elementary_type("mapping"));
    }

    #[test]
    fn specifier_classification() {
        assert!(Keyword::Public.is_visibility());
        assert!(!Keyword::Payable.is_visibility());
        assert!(Keyword::Payable.is_mutability());
        assert!(Keyword::Ether.is_denomination());
        assert!(Keyword::Days.is_time_unit());
    }
}
