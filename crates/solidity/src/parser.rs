//! Recursive-descent parser for Solidity sources and snippets.
//!
//! The parser runs in two modes (cf. §4.1 of the paper):
//!
//! * **strict** ([`parse_source`]) — approximates the standard Solidity
//!   grammar: statements must be `;`-terminated, placeholders are rejected,
//!   and only proper top-level items (pragmas, imports, contracts, free
//!   functions, ...) are accepted.
//! * **tolerant** ([`parse_snippet`]) — applies the paper's three grammar
//!   modifications: any hierarchy level may appear at the top level,
//!   statements may be newline-terminated, and `...` placeholders parse.

use crate::ast::*;
use crate::lexer::{lex, LexError};
use crate::span::Span;
use crate::token::{is_elementary_type_sym, Keyword, Token, TokenKind};
use intern::{LineIndex, Symbol};
use std::sync::Arc;
use telemetry::Counter;

/// Tolerant (snippet-grammar) parses started.
static PARSE_SNIPPETS: Counter = Counter::new("solidity.parse.snippets");
/// Strict (standard-grammar) parses started.
static PARSE_SOURCES: Counter = Counter::new("solidity.parse.sources");
/// Parses that failed with a [`ParseError`].
static PARSE_ERRORS: Counter = Counter::new("solidity.parse.errors");
/// `...` placeholder tokens accepted (§4.1 grammar modification 3).
static PARSE_PLACEHOLDERS: Counter = Counter::new("solidity.parse.placeholders");
/// Missing `;` tolerated via newline/`}`/EOF (§4.1 grammar modification 2).
static PARSE_NEWLINE_SEMIS: Counter = Counter::new("solidity.parse.newline_semis");
/// Stray `}`/`;` skipped at the top level (unnested-snippet recovery).
static PARSE_STRAY_TOKENS: Counter = Counter::new("solidity.parse.stray_tokens");

/// Parser configuration. [`ParserOptions::strict`] mimics the standard
/// grammar; [`ParserOptions::snippet`] enables all snippet tolerances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParserOptions {
    /// Allow functions, modifiers and bare statements at the top level.
    pub allow_unnested: bool,
    /// Accept a newline (or `}`/EOF) in place of a missing `;`.
    pub newline_semi: bool,
    /// Accept `...` placeholders in statement, member and argument position.
    pub placeholders: bool,
}

impl ParserOptions {
    /// The standard-grammar approximation.
    pub fn strict() -> Self {
        ParserOptions { allow_unnested: false, newline_semi: false, placeholders: false }
    }

    /// The snippet grammar with all modifications of §4.1 enabled.
    pub fn snippet() -> Self {
        ParserOptions { allow_unnested: true, newline_semi: true, placeholders: true }
    }
}

/// A parse (or lex) failure with location information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending token.
    pub span: Span,
    /// 1-based line of the offending token (0 when unknown).
    pub line: u32,
    /// 1-based byte column of the offending token (0 when unknown).
    pub col: u32,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
        } else {
            write!(f, "parse error at {}: {}", self.span, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, span: e.span, line: 0, col: 0 }
    }
}

type PResult<T> = Result<T, ParseError>;

/// Parse a full Solidity source with the standard-grammar approximation.
pub fn parse_source(src: &str) -> Result<SourceUnit, ParseError> {
    PARSE_SOURCES.incr();
    parse_with(src, ParserOptions::strict())
}

/// Parse a possibly incomplete snippet with all tolerances enabled.
pub fn parse_snippet(src: &str) -> Result<SourceUnit, ParseError> {
    PARSE_SNIPPETS.incr();
    parse_with(src, ParserOptions::snippet())
}

/// Parse with explicit options.
pub fn parse_with(src: &str, opts: ParserOptions) -> Result<SourceUnit, ParseError> {
    let _stage = telemetry::trace::stage("parse");
    telemetry::trace::annotate("bytes", src.len());
    let result = (|| {
        if let Some(message) = faultinject::fire("parse") {
            return Err(ParseError { message, span: Span::DUMMY, line: 0, col: 0 });
        }
        let tokens = lex(src)?;
        if telemetry::enabled() && opts.placeholders {
            let placeholders =
                tokens.iter().filter(|t| matches!(t.kind, TokenKind::Ellipsis)).count();
            PARSE_PLACEHOLDERS.add(placeholders as u64);
        }
        let line_index = Arc::new(LineIndex::new(src));
        Parser { tokens, pos: 0, opts, depth: 0, line_index }.source_unit()
    })();
    if result.is_err() {
        PARSE_ERRORS.incr();
    }
    result
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    opts: ParserOptions,
    depth: usize,
    line_index: Arc<LineIndex>,
}

impl Parser {
    // ----- token helpers ---------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, off: usize) -> &Token {
        &self.tokens[(self.pos + off).min(self.tokens.len() - 1)]
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p)
    }

    fn at_kw(&self, k: Keyword) -> bool {
        matches!(&self.peek().kind, TokenKind::Keyword(q) if *q == k)
    }


    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        if self.at_kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<Span> {
        if self.at_punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.error(format!("expected `{p}`, found `{}`", self.peek().kind.text())))
        }
    }

    fn expect_ident(&mut self) -> PResult<(Symbol, Span)> {
        match self.peek().kind {
            TokenKind::Ident(s) => {
                let span = self.bump().span;
                Ok((s, span))
            }
            // Some keywords double as identifiers in practice (e.g. a
            // variable named `error` pre-0.8); accept soft keywords.
            TokenKind::Keyword(k @ (Keyword::Error | Keyword::Receive | Keyword::Fallback)) => {
                let s = Symbol::intern(k.as_str());
                let span = self.bump().span;
                Ok((s, span))
            }
            _ => Err(self.error(format!(
                "expected identifier, found `{}`",
                self.peek().kind.text()
            ))),
        }
    }

    /// Accept `;`, or — in tolerant mode — a newline before the next token,
    /// a closing brace, a placeholder, or end of input (§4.1).
    fn expect_semi(&mut self) -> PResult<()> {
        if self.eat_punct(";") {
            return Ok(());
        }
        if self.opts.newline_semi
            && (self.peek().newline_before
                || self.at_punct("}")
                || self.at_eof()
                || matches!(self.peek().kind, TokenKind::Ellipsis))
        {
            PARSE_NEWLINE_SEMIS.incr();
            return Ok(());
        }
        Err(self.error(format!("expected `;`, found `{}`", self.peek().kind.text())))
    }

    fn error(&self, message: String) -> ParseError {
        let span = self.span();
        let (line, col) = if span.is_dummy() {
            (0, 0)
        } else {
            self.line_index.line_col(span.start)
        };
        ParseError { message, span, line, col }
    }

    // ----- source unit -----------------------------------------------------

    fn source_unit(&mut self) -> PResult<SourceUnit> {
        let mut items = Vec::new();
        while !self.at_eof() {
            // Stray closing braces appear when a snippet starts mid-body.
            if self.opts.allow_unnested && (self.at_punct("}") || self.at_punct(";")) {
                PARSE_STRAY_TOKENS.incr();
                self.bump();
                continue;
            }
            items.push(self.source_item()?);
        }
        Ok(SourceUnit { items, line_index: Arc::clone(&self.line_index) })
    }

    fn source_item(&mut self) -> PResult<SourceItem> {
        match self.peek().kind {
            TokenKind::Keyword(Keyword::Pragma) => self.pragma().map(SourceItem::Pragma),
            TokenKind::Keyword(Keyword::Import) => self.import().map(SourceItem::Import),
            TokenKind::Keyword(
                Keyword::Contract | Keyword::Interface | Keyword::Library | Keyword::Abstract,
            ) => self.contract().map(SourceItem::Contract),
            TokenKind::Keyword(Keyword::Function)
                if self.opts.allow_unnested || self.is_free_function() =>
            {
                self.function().map(SourceItem::Function)
            }
            TokenKind::Keyword(Keyword::Constructor | Keyword::Receive | Keyword::Fallback)
                if self.opts.allow_unnested && self.looks_like_function_header() =>
            {
                self.function().map(SourceItem::Function)
            }
            TokenKind::Keyword(Keyword::Modifier) if self.opts.allow_unnested => {
                self.modifier().map(SourceItem::Modifier)
            }
            TokenKind::Keyword(Keyword::Struct) => self.struct_def().map(SourceItem::Struct),
            TokenKind::Keyword(Keyword::Enum) => self.enum_def().map(SourceItem::Enum),
            TokenKind::Keyword(Keyword::Event) if self.opts.allow_unnested => {
                self.event_def().map(SourceItem::Event)
            }
            TokenKind::Keyword(Keyword::Error) if self.is_error_def() => {
                self.error_def().map(SourceItem::ErrorDef)
            }
            TokenKind::Keyword(Keyword::Using) => self.using_for().map(SourceItem::UsingFor),
            _ if self.opts.allow_unnested => {
                // State-variable-looking declarations with a visibility or
                // constancy specifier become Variable items; everything else
                // is a bare statement.
                if let Some(var) = self.try_state_var() {
                    Ok(SourceItem::Variable(var))
                } else {
                    self.statement().map(SourceItem::Statement)
                }
            }
            _ => Err(self.error(format!(
                "unexpected `{}` at top level",
                self.peek().kind.text()
            ))),
        }
    }

    /// In strict mode, free functions (Solidity >= 0.7) are still allowed.
    fn is_free_function(&self) -> bool {
        true
    }

    fn looks_like_function_header(&self) -> bool {
        matches!(self.peek_at(1).kind, TokenKind::Punct("(" | "{"))
    }

    fn is_error_def(&self) -> bool {
        // `error Name(...)` vs. a variable named `error`.
        matches!(self.peek_at(1).kind, TokenKind::Ident(_))
            && matches!(self.peek_at(2).kind, TokenKind::Punct("("))
    }

    fn pragma(&mut self) -> PResult<Pragma> {
        let start = self.bump().span; // `pragma`
        let (name, _) = self.expect_ident().unwrap_or(("solidity".into(), start));
        let mut value = String::new();
        let mut end = start;
        while !self.at_punct(";") && !self.at_eof() {
            if self.opts.newline_semi && self.peek().newline_before {
                break;
            }
            let t = self.bump();
            end = t.span;
            value.push_str(&t.kind.text());
        }
        self.eat_punct(";");
        Ok(Pragma { name, value: Symbol::intern(&value), span: start.to(end) })
    }

    fn import(&mut self) -> PResult<Symbol> {
        self.bump(); // `import`
        let mut path = Symbol::default();
        while !self.at_punct(";") && !self.at_eof() {
            if self.opts.newline_semi && self.peek().newline_before {
                break;
            }
            let t = self.bump();
            if let TokenKind::Str(s) = t.kind {
                path = s;
            }
        }
        self.eat_punct(";");
        Ok(path)
    }

    // ----- contracts ---------------------------------------------------------

    fn contract(&mut self) -> PResult<ContractDef> {
        let start = self.span();
        let kind = if self.eat_kw(Keyword::Abstract) {
            if !self.eat_kw(Keyword::Contract) {
                return Err(self.error("expected `contract` after `abstract`".into()));
            }
            ContractKind::AbstractContract
        } else if self.eat_kw(Keyword::Contract) {
            ContractKind::Contract
        } else if self.eat_kw(Keyword::Interface) {
            ContractKind::Interface
        } else if self.eat_kw(Keyword::Library) {
            ContractKind::Library
        } else {
            return Err(self.error("expected contract keyword".into()));
        };

        let (name, _) = self.expect_ident()?;
        let mut bases = Vec::new();
        if self.eat_kw(Keyword::Is) {
            loop {
                let base = self.qualified_name()?;
                let mut args = Vec::new();
                if self.at_punct("(") {
                    args = self.call_args()?;
                }
                bases.push(InheritanceSpecifier { name: base, args });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }

        self.expect_punct("{")?;
        let mut parts = Vec::new();
        while !self.at_punct("}") && !self.at_eof() {
            if self.eat_punct(";") {
                continue;
            }
            parts.push(self.contract_part()?);
        }
        let end = if self.at_punct("}") { self.bump().span } else { self.span() };
        Ok(ContractDef { kind, name, bases, parts, span: start.to(end) })
    }

    fn contract_part(&mut self) -> PResult<ContractPart> {
        match self.peek().kind {
            TokenKind::Ellipsis if self.opts.placeholders => {
                let span = self.bump().span;
                self.eat_punct(";");
                Ok(ContractPart::Placeholder(span))
            }
            TokenKind::Keyword(
                Keyword::Function | Keyword::Constructor | Keyword::Receive | Keyword::Fallback,
            ) => self.function().map(ContractPart::Function),
            TokenKind::Keyword(Keyword::Modifier) => self.modifier().map(ContractPart::Modifier),
            TokenKind::Keyword(Keyword::Struct) => self.struct_def().map(ContractPart::Struct),
            TokenKind::Keyword(Keyword::Enum) => self.enum_def().map(ContractPart::Enum),
            TokenKind::Keyword(Keyword::Event) => self.event_def().map(ContractPart::Event),
            TokenKind::Keyword(Keyword::Error) if self.is_error_def() => {
                self.error_def().map(ContractPart::ErrorDef)
            }
            TokenKind::Keyword(Keyword::Using) => self.using_for().map(ContractPart::UsingFor),
            _ => self.state_var().map(ContractPart::Variable),
        }
    }

    /// Speculatively parse a state variable with a specifier; used for
    /// top-level items in snippets. Never consumes input on failure.
    fn try_state_var(&mut self) -> Option<StateVarDecl> {
        let save = self.pos;
        match self.state_var() {
            Ok(v) if v.visibility.is_some() || v.is_constant || v.is_immutable => Some(v),
            _ => {
                self.pos = save;
                None
            }
        }
    }

    fn state_var(&mut self) -> PResult<StateVarDecl> {
        let start = self.span();
        let ty = self.type_name()?;
        let mut visibility = None;
        let mut is_constant = false;
        let mut is_immutable = false;
        loop {
            match &self.peek().kind {
                TokenKind::Keyword(k) if k.is_visibility() => {
                    visibility = Some(visibility_of(*k));
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Constant) => {
                    is_constant = true;
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Immutable) => {
                    is_immutable = true;
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Override | Keyword::Virtual) => {
                    self.bump();
                }
                _ => break,
            }
        }
        let (name, name_span) = self.expect_ident()?;
        let mut initializer = None;
        if self.eat_punct("=") {
            initializer = Some(self.expression()?);
        }
        let end = initializer.as_ref().map(|e| e.span).unwrap_or(name_span);
        self.expect_semi()?;
        Ok(StateVarDecl {
            ty,
            visibility,
            is_constant,
            is_immutable,
            name,
            initializer,
            span: start.to(end),
        })
    }

    // ----- functions -----------------------------------------------------------

    fn function(&mut self) -> PResult<FunctionDef> {
        let start = self.span();
        let kind;
        let mut name = None;
        if self.eat_kw(Keyword::Constructor) {
            kind = FunctionKind::Constructor;
        } else if self.eat_kw(Keyword::Receive) {
            kind = FunctionKind::Receive;
        } else if self.eat_kw(Keyword::Fallback) {
            kind = FunctionKind::Fallback;
        } else {
            self.bump(); // `function`
            kind = FunctionKind::Function;
            if let TokenKind::Ident(n) = self.peek().kind {
                name = Some(n);
                self.bump();
            }
        }

        // Parameter list; tolerated absent in snippets
        // (e.g. `function withdrawAll public onlyOwner() {`).
        let params =
            if self.at_punct("(") { self.param_list()? } else { Vec::new() };

        let mut visibility = None;
        let mut mutability = None;
        let mut is_virtual = false;
        let mut is_override = false;
        let mut modifiers = Vec::new();
        let mut returns = Vec::new();
        loop {
            match self.peek().kind {
                TokenKind::Keyword(k) if k.is_visibility() => {
                    visibility = Some(visibility_of(k));
                    self.bump();
                }
                TokenKind::Keyword(k) if k.is_mutability() => {
                    mutability = Some(mutability_of(k));
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Virtual) => {
                    is_virtual = true;
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Override) => {
                    is_override = true;
                    self.bump();
                    if self.at_punct("(") {
                        // override(Base1, Base2)
                        self.bump();
                        while !self.at_punct(")") && !self.at_eof() {
                            self.bump();
                        }
                        self.eat_punct(")");
                    }
                }
                TokenKind::Keyword(Keyword::Returns) => {
                    self.bump();
                    returns = self.param_list()?;
                }
                TokenKind::Ident(modname) => {
                    let mspan = self.bump().span;
                    let args = if self.at_punct("(") { self.call_args()? } else { Vec::new() };
                    modifiers.push(ModifierInvocation { name: modname, args, span: mspan });
                }
                _ => break,
            }
        }

        let body = if self.at_punct("{") {
            Some(self.block()?)
        } else {
            self.expect_semi()?;
            None
        };
        let end = body.as_ref().map(|b| b.span).unwrap_or(start);
        Ok(FunctionDef {
            kind,
            name,
            params,
            returns,
            visibility,
            mutability,
            is_virtual,
            is_override,
            modifiers,
            body,
            span: start.to(end),
        })
    }

    fn modifier(&mut self) -> PResult<ModifierDef> {
        let start = self.bump().span; // `modifier`
        let (name, _) = self.expect_ident()?;
        let params = if self.at_punct("(") { self.param_list()? } else { Vec::new() };
        // Skip `virtual` / `override`.
        while self.eat_kw(Keyword::Virtual) || self.eat_kw(Keyword::Override) {}
        let body = if self.at_punct("{") {
            Some(self.block()?)
        } else {
            self.expect_semi()?;
            None
        };
        let end = body.as_ref().map(|b| b.span).unwrap_or(start);
        Ok(ModifierDef { name, params, body, span: start.to(end) })
    }

    fn param_list(&mut self) -> PResult<Vec<Param>> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        while !self.at_punct(")") && !self.at_eof() {
            if matches!(self.peek().kind, TokenKind::Ellipsis) && self.opts.placeholders {
                self.bump();
                self.eat_punct(",");
                continue;
            }
            params.push(self.param()?);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(params)
    }

    fn param(&mut self) -> PResult<Param> {
        let start = self.span();
        let ty = self.type_name()?;
        let mut storage = None;
        let mut indexed = false;
        loop {
            match &self.peek().kind {
                TokenKind::Keyword(Keyword::Memory) => {
                    storage = Some(Storage::Memory);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Storage) => {
                    storage = Some(Storage::Storage);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Calldata) => {
                    storage = Some(Storage::Calldata);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Indexed) => {
                    indexed = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let mut name = None;
        let mut end = start;
        if let TokenKind::Ident(n) = self.peek().kind {
            name = Some(n);
            end = self.bump().span;
        }
        Ok(Param { ty, storage, name, indexed, span: start.to(end) })
    }

    fn struct_def(&mut self) -> PResult<StructDef> {
        let start = self.bump().span; // `struct`
        let (name, _) = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.at_punct("}") && !self.at_eof() {
            if matches!(self.peek().kind, TokenKind::Ellipsis) && self.opts.placeholders {
                self.bump();
                self.eat_punct(";");
                continue;
            }
            let field = self.param()?;
            self.expect_semi()?;
            fields.push(field);
        }
        let end = if self.at_punct("}") { self.bump().span } else { self.span() };
        Ok(StructDef { name, fields, span: start.to(end) })
    }

    fn enum_def(&mut self) -> PResult<EnumDef> {
        let start = self.bump().span; // `enum`
        let (name, _) = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut variants = Vec::new();
        while !self.at_punct("}") && !self.at_eof() {
            if let TokenKind::Ident(v) = self.peek().kind {
                variants.push(v);
                self.bump();
            } else {
                self.bump();
            }
            self.eat_punct(",");
        }
        let end = if self.at_punct("}") { self.bump().span } else { self.span() };
        Ok(EnumDef { name, variants, span: start.to(end) })
    }

    fn event_def(&mut self) -> PResult<EventDef> {
        let start = self.bump().span; // `event`
        let (name, _) = self.expect_ident()?;
        let params = if self.at_punct("(") { self.param_list()? } else { Vec::new() };
        let anonymous = self.eat_kw(Keyword::Anonymous);
        self.expect_semi()?;
        Ok(EventDef { name, params, anonymous, span: start })
    }

    fn error_def(&mut self) -> PResult<ErrorDef> {
        let start = self.bump().span; // `error`
        let (name, _) = self.expect_ident()?;
        let params = if self.at_punct("(") { self.param_list()? } else { Vec::new() };
        self.expect_semi()?;
        Ok(ErrorDef { name, params, span: start })
    }

    fn using_for(&mut self) -> PResult<UsingFor> {
        let start = self.bump().span; // `using`
        let library = self.qualified_name()?;
        let mut target = None;
        if self.eat_kw(Keyword::For) {
            if self.at_punct("*") {
                self.bump();
            } else {
                target = Some(self.type_name()?);
            }
        }
        self.expect_semi()?;
        Ok(UsingFor { library, target, span: start })
    }

    // ----- types -------------------------------------------------------------

    fn qualified_name(&mut self) -> PResult<Symbol> {
        let (first, _) = self.expect_ident()?;
        if !(self.at_punct(".") && matches!(self.peek_at(1).kind, TokenKind::Ident(_))) {
            return Ok(first);
        }
        let mut name = first.as_str().to_string();
        while self.at_punct(".") && matches!(self.peek_at(1).kind, TokenKind::Ident(_)) {
            self.bump();
            let (part, _) = self.expect_ident()?;
            name.push('.');
            name.push_str(&part);
        }
        Ok(Symbol::intern(&name))
    }

    fn type_name(&mut self) -> PResult<TypeName> {
        let mut base = self.base_type()?;
        // Array suffixes.
        while self.at_punct("[") {
            self.bump();
            let len = if self.at_punct("]") {
                None
            } else {
                Some(Box::new(self.expression()?))
            };
            self.expect_punct("]")?;
            base = TypeName::Array(Box::new(base), len);
        }
        Ok(base)
    }

    fn base_type(&mut self) -> PResult<TypeName> {
        match self.peek().kind {
            TokenKind::Keyword(Keyword::Mapping) => {
                self.bump();
                self.expect_punct("(")?;
                let key = self.type_name()?;
                // Mapping key names (0.8.18+) tolerated.
                if matches!(self.peek().kind, TokenKind::Ident(_)) {
                    self.bump();
                }
                self.expect_punct("=>")?;
                let value = self.type_name()?;
                if matches!(self.peek().kind, TokenKind::Ident(_)) {
                    self.bump();
                }
                self.expect_punct(")")?;
                Ok(TypeName::Mapping(Box::new(key), Box::new(value)))
            }
            TokenKind::Keyword(Keyword::Address) => {
                self.bump();
                if self.eat_kw(Keyword::Payable) {
                    Ok(TypeName::Elementary("address payable".into()))
                } else {
                    Ok(TypeName::Elementary("address".into()))
                }
            }
            TokenKind::Keyword(Keyword::Bool) => {
                self.bump();
                Ok(TypeName::Elementary("bool".into()))
            }
            TokenKind::Keyword(Keyword::String) => {
                self.bump();
                Ok(TypeName::Elementary("string".into()))
            }
            TokenKind::Keyword(Keyword::Bytes) => {
                self.bump();
                Ok(TypeName::Elementary("bytes".into()))
            }
            TokenKind::Keyword(Keyword::Byte) => {
                self.bump();
                Ok(TypeName::Elementary("byte".into()))
            }
            TokenKind::Keyword(Keyword::Var) => {
                self.bump();
                Ok(TypeName::Unknown)
            }
            TokenKind::Keyword(Keyword::Fixed) => {
                self.bump();
                Ok(TypeName::Elementary("fixed".into()))
            }
            TokenKind::Keyword(Keyword::Ufixed) => {
                self.bump();
                Ok(TypeName::Elementary("ufixed".into()))
            }
            TokenKind::Keyword(Keyword::Payable) => {
                self.bump();
                Ok(TypeName::Elementary("address payable".into()))
            }
            TokenKind::Keyword(Keyword::Function) => {
                self.bump();
                let params = self.type_list()?;
                // Skip visibility/mutability of the function type.
                loop {
                    match &self.peek().kind {
                        TokenKind::Keyword(k) if k.is_visibility() || k.is_mutability() => {
                            self.bump();
                        }
                        _ => break,
                    }
                }
                let returns = if self.eat_kw(Keyword::Returns) {
                    self.type_list()?
                } else {
                    Vec::new()
                };
                Ok(TypeName::Function { params, returns })
            }
            TokenKind::Ident(word) => {
                if is_elementary_type_sym(word) {
                    self.bump();
                    Ok(TypeName::Elementary(word))
                } else {
                    let name = self.qualified_name()?;
                    Ok(TypeName::UserDefined(name))
                }
            }
            _ => Err(self.error(format!(
                "expected type, found `{}`",
                self.peek().kind.text()
            ))),
        }
    }

    fn type_list(&mut self) -> PResult<Vec<TypeName>> {
        self.expect_punct("(")?;
        let mut tys = Vec::new();
        while !self.at_punct(")") && !self.at_eof() {
            tys.push(self.type_name()?);
            // Parameter name in function type, tolerated.
            if matches!(self.peek().kind, TokenKind::Ident(_)) {
                self.bump();
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(tys)
    }

    // ----- statements ---------------------------------------------------------

    fn block(&mut self) -> PResult<Block> {
        let start = self.expect_punct("{")?;
        // Typical blocks in the study corpus hold a handful of statements;
        // `Statement` is large, so skipping the 1/2/4 growth steps matters.
        let mut statements = Vec::with_capacity(8);
        while !self.at_punct("}") && !self.at_eof() {
            if self.eat_punct(";") {
                continue;
            }
            statements.push(self.statement()?);
        }
        let end = if self.at_punct("}") { self.bump().span } else { self.span() };
        Ok(Block { statements, span: start.to(end) })
    }

    fn statement(&mut self) -> PResult<Statement> {
        self.enter()?;
        let result = self.statement_inner();
        self.depth -= 1;
        result
    }

    fn statement_inner(&mut self) -> PResult<Statement> {
        let start = self.span();
        let kind = match self.peek().kind {
            TokenKind::Ellipsis if self.opts.placeholders => {
                self.bump();
                self.eat_punct(";");
                StatementKind::Ellipsis
            }
            TokenKind::Punct("{") => StatementKind::Block(self.block()?),
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expression()?;
                self.expect_punct(")")?;
                let then = Box::new(self.statement()?);
                let alt = if self.eat_kw(Keyword::Else) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                StatementKind::If { cond, then, alt }
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expression()?;
                self.expect_punct(")")?;
                let body = Box::new(self.statement()?);
                StatementKind::While { cond, body }
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.statement()?);
                if !self.eat_kw(Keyword::While) {
                    return Err(self.error("expected `while` after `do` body".into()));
                }
                self.expect_punct("(")?;
                let cond = self.expression()?;
                self.expect_punct(")")?;
                self.expect_semi()?;
                StatementKind::DoWhile { body, cond }
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct("(")?;
                let init = if self.at_punct(";") {
                    self.bump();
                    None
                } else {
                    let s = self.simple_statement()?;
                    // `simple_statement` consumed the `;` via expect_semi —
                    // but inside `for(...)` the `;` is mandatory, already
                    // eaten by the tolerant path only if present; eat if not.
                    Some(Box::new(s))
                };
                let cond = if self.at_punct(";") {
                    None
                } else if self.peek_is_expression_start() {
                    Some(self.expression()?)
                } else {
                    None
                };
                self.eat_punct(";");
                let update = if self.at_punct(")") {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(")")?;
                let body = Box::new(self.statement()?);
                StatementKind::For { init, cond, update, body }
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.at_punct(";")
                    || self.at_punct("}")
                    || self.at_eof()
                    || (self.opts.newline_semi && self.peek().newline_before)
                {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_semi()?;
                StatementKind::Return(value)
            }
            TokenKind::Keyword(Keyword::Emit) => {
                self.bump();
                let call = self.expression()?;
                self.expect_semi()?;
                StatementKind::Emit(call)
            }
            TokenKind::Keyword(Keyword::Throw) => {
                self.bump();
                self.expect_semi()?;
                StatementKind::Throw
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_semi()?;
                StatementKind::Break
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_semi()?;
                StatementKind::Continue
            }
            TokenKind::Keyword(Keyword::Unchecked) => {
                self.bump();
                StatementKind::Unchecked(self.block()?)
            }
            TokenKind::Keyword(Keyword::Assembly) => {
                self.bump();
                // Optional dialect string: assembly "evmasm" { ... }
                if matches!(self.peek().kind, TokenKind::Str(_)) {
                    self.bump();
                }
                let text = self.raw_braced()?;
                StatementKind::Assembly(text)
            }
            TokenKind::Keyword(Keyword::Try) => {
                self.bump();
                let expr = self.expression()?;
                if self.eat_kw(Keyword::Returns) {
                    self.param_list()?;
                }
                let success = self.block()?;
                let mut catches = Vec::new();
                while self.eat_kw(Keyword::Catch) {
                    // catch Error(string memory reason) { ... }
                    if matches!(self.peek().kind, TokenKind::Ident(_))
                        || self.at_kw(Keyword::Error)
                    {
                        self.bump();
                    }
                    if self.at_punct("(") {
                        self.param_list()?;
                    }
                    catches.push(self.block()?);
                }
                StatementKind::Try { expr, success, catches }
            }
            TokenKind::Ident(id) if id == "_" && self.stmt_ends_after(1) => {
                self.bump();
                self.expect_semi()?;
                StatementKind::ModifierPlaceholder
            }
            TokenKind::Ident(id) if id == "revert" => {
                // `revert;`, `revert("why")`, `revert CustomError(...)`.
                self.bump();
                let arg = if self.at_punct(";")
                    || self.at_punct("}")
                    || self.at_eof()
                    || (self.opts.newline_semi && self.peek().newline_before)
                {
                    None
                } else if self.at_punct("(") {
                    let args = self.call_args()?;
                    args.into_iter().next()
                } else {
                    Some(self.expression()?)
                };
                self.expect_semi()?;
                StatementKind::Revert(arg)
            }
            _ => return self.simple_statement(),
        };
        let end = self.tokens[self.pos.saturating_sub(1)].span;
        Ok(Statement { kind, span: start.to(end) })
    }

    fn stmt_ends_after(&self, off: usize) -> bool {
        match &self.peek_at(off).kind {
            TokenKind::Punct(";" | "}") | TokenKind::Eof => true,
            _ => self.opts.newline_semi && self.peek_at(off).newline_before,
        }
    }

    fn peek_is_expression_start(&self) -> bool {
        !matches!(self.peek().kind, TokenKind::Punct(";" | ")" | "}") | TokenKind::Eof)
    }

    /// Variable declaration or expression statement.
    fn simple_statement(&mut self) -> PResult<Statement> {
        let start = self.span();
        if let Some(kind) = self.try_variable_decl()? {
            let end = self.tokens[self.pos.saturating_sub(1)].span;
            return Ok(Statement { kind, span: start.to(end) });
        }
        let expr = self.expression()?;
        self.expect_semi()?;
        let end = expr.span;
        Ok(Statement { kind: StatementKind::Expression(expr), span: start.to(end) })
    }

    /// Speculatively parse a variable declaration statement. Restores the
    /// position and returns `Ok(None)` when the lookahead is an expression.
    fn try_variable_decl(&mut self) -> PResult<Option<StatementKind>> {
        let save = self.pos;

        // Tuple form: `(uint a, uint b) = f();` — heuristically detected by
        // `(` followed eventually by `) =` with a leading type.
        if self.at_punct("(") && self.tuple_decl_ahead() {
            self.bump();
            let mut parts = Vec::new();
            while !self.at_punct(")") && !self.at_eof() {
                if self.at_punct(",") {
                    self.bump();
                    continue;
                }
                match self.var_decl_part() {
                    Ok(p) => parts.push(p),
                    Err(_) => {
                        self.pos = save;
                        return Ok(None);
                    }
                }
            }
            self.expect_punct(")")?;
            if !self.eat_punct("=") {
                self.pos = save;
                return Ok(None);
            }
            let value = Some(self.expression()?);
            self.expect_semi()?;
            return Ok(Some(StatementKind::VariableDecl { parts, value }));
        }

        // Simple form: `type [storage] name [= expr] ;`
        let looks_like_type = matches!(
            self.peek().kind,
            TokenKind::Keyword(
                Keyword::Mapping
                    | Keyword::Address
                    | Keyword::Bool
                    | Keyword::String
                    | Keyword::Bytes
                    | Keyword::Byte
                    | Keyword::Var
                    | Keyword::Fixed
                    | Keyword::Ufixed
                    | Keyword::Function
            ) | TokenKind::Ident(_)
        );
        if !looks_like_type {
            return Ok(None);
        }
        match self.var_decl_part() {
            Ok(part) => {
                let value = if self.eat_punct("=") {
                    Some(self.expression()?)
                } else {
                    None
                };
                if self.expect_semi().is_err() {
                    self.pos = save;
                    return Ok(None);
                }
                Ok(Some(StatementKind::VariableDecl { parts: vec![part], value }))
            }
            Err(_) => {
                self.pos = save;
                Ok(None)
            }
        }
    }

    fn tuple_decl_ahead(&self) -> bool {
        // Scan ahead (bounded) for `) =` at depth 0 starting after `(`.
        let mut depth = 0usize;
        for off in 0..64 {
            match &self.peek_at(off).kind {
                TokenKind::Punct("(") => depth += 1,
                TokenKind::Punct(")") => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return matches!(self.peek_at(off + 1).kind, TokenKind::Punct("="))
                            && !matches!(self.peek_at(off + 2).kind, TokenKind::Punct("="));
                    }
                }
                TokenKind::Eof => return false,
                _ => {}
            }
        }
        false
    }

    fn var_decl_part(&mut self) -> PResult<VarDeclPart> {
        let start = self.span();
        let ty = self.type_name()?;
        let mut storage = None;
        loop {
            match &self.peek().kind {
                TokenKind::Keyword(Keyword::Memory) => {
                    storage = Some(Storage::Memory);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Storage) => {
                    storage = Some(Storage::Storage);
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Calldata) => {
                    storage = Some(Storage::Calldata);
                    self.bump();
                }
                _ => break,
            }
        }
        let (name, end) = self.expect_ident()?;
        let ty = if matches!(ty, TypeName::Unknown) { None } else { Some(ty) };
        Ok(VarDeclPart { ty, storage, name, span: start.to(end) })
    }

    fn raw_braced(&mut self) -> PResult<String> {
        self.expect_punct("{")?;
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 && !self.at_eof() {
            let t = self.bump();
            match &t.kind {
                TokenKind::Punct("{") => {
                    depth += 1;
                    text.push('{');
                }
                TokenKind::Punct("}") => {
                    depth -= 1;
                    if depth > 0 {
                        text.push('}');
                    }
                }
                other => {
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(&other.text());
                }
            }
        }
        Ok(text)
    }

    // ----- expressions ---------------------------------------------------------

    fn expression(&mut self) -> PResult<Expr> {
        self.enter()?;
        let result = self.assignment();
        self.depth -= 1;
        result
    }

    /// Guard against stack exhaustion on pathologically nested input
    /// (hostile snippets are part of the threat model of a Q&A crawler).
    fn enter(&mut self) -> PResult<()> {
        self.depth += 1;
        if self.depth > 48 {
            return Err(self.error("nesting too deep".into()));
        }
        Ok(())
    }

    fn assignment(&mut self) -> PResult<Expr> {
        let lhs = self.ternary()?;
        let op = match &self.peek().kind {
            TokenKind::Punct("=") => Some(AssignOp::Assign),
            TokenKind::Punct("+=") => Some(AssignOp::AddAssign),
            TokenKind::Punct("-=") => Some(AssignOp::SubAssign),
            TokenKind::Punct("*=") => Some(AssignOp::MulAssign),
            TokenKind::Punct("/=") => Some(AssignOp::DivAssign),
            TokenKind::Punct("%=") => Some(AssignOp::ModAssign),
            TokenKind::Punct("|=") => Some(AssignOp::OrAssign),
            TokenKind::Punct("&=") => Some(AssignOp::AndAssign),
            TokenKind::Punct("^=") => Some(AssignOp::XorAssign),
            TokenKind::Punct("<<=") => Some(AssignOp::ShlAssign),
            TokenKind::Punct(">>=") => Some(AssignOp::ShrAssign),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assignment()?;
            let span = lhs.span.to(rhs.span);
            return Ok(Expr {
                kind: ExprKind::Assign { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            });
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let then = self.expression()?;
            self.expect_punct(":")?;
            let alt = self.expression()?;
            let span = cond.span.to(alt.span);
            return Ok(Expr {
                kind: ExprKind::Ternary {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    alt: Box::new(alt),
                },
                span,
            });
        }
        Ok(cond)
    }

    fn binop_at(&self, min_prec: u8) -> Option<(BinOp, u8, u8)> {
        // (op, precedence, right-assoc precedence bump)
        let (op, prec) = match &self.peek().kind {
            TokenKind::Punct("||") => (BinOp::Or, 1),
            TokenKind::Punct("&&") => (BinOp::And, 2),
            TokenKind::Punct("==") => (BinOp::Eq, 3),
            TokenKind::Punct("!=") => (BinOp::Ne, 3),
            TokenKind::Punct("<") => (BinOp::Lt, 4),
            TokenKind::Punct(">") => (BinOp::Gt, 4),
            TokenKind::Punct("<=") => (BinOp::Le, 4),
            TokenKind::Punct(">=") => (BinOp::Ge, 4),
            TokenKind::Punct("|") => (BinOp::BitOr, 5),
            TokenKind::Punct("^") => (BinOp::BitXor, 6),
            TokenKind::Punct("&") => (BinOp::BitAnd, 7),
            TokenKind::Punct("<<") => (BinOp::Shl, 8),
            TokenKind::Punct(">>") => (BinOp::Shr, 8),
            TokenKind::Punct("+") => (BinOp::Add, 9),
            TokenKind::Punct("-") => (BinOp::Sub, 9),
            TokenKind::Punct("*") => (BinOp::Mul, 10),
            TokenKind::Punct("/") => (BinOp::Div, 10),
            TokenKind::Punct("%") => (BinOp::Mod, 10),
            TokenKind::Punct("**") => (BinOp::Pow, 11),
            _ => return None,
        };
        if prec < min_prec {
            return None;
        }
        // `**` is right-associative.
        let next_min = if op == BinOp::Pow { prec } else { prec + 1 };
        Some((op, prec, next_min))
    }

    fn binary(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, _prec, next_min)) = self.binop_at(min_prec) {
            self.bump();
            let rhs = self.binary(next_min)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        let start = self.span();
        let op = match &self.peek().kind {
            TokenKind::Punct("!") => Some(UnOp::Not),
            TokenKind::Punct("-") => Some(UnOp::Neg),
            TokenKind::Punct("~") => Some(UnOp::BitNot),
            TokenKind::Punct("++") => Some(UnOp::Inc),
            TokenKind::Punct("--") => Some(UnOp::Dec),
            TokenKind::Keyword(Keyword::Delete) => Some(UnOp::Delete),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            let span = start.to(operand.span);
            return Ok(Expr {
                kind: ExprKind::Unary { op, prefix: true, operand: Box::new(operand) },
                span,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut expr = self.primary()?;
        loop {
            match self.peek().kind {
                TokenKind::Punct(".") => {
                    self.bump();
                    // `.value(x)` legacy call options chain naturally as
                    // member + call.
                    let member = match self.peek().kind {
                        TokenKind::Ident(m) => {
                            self.bump();
                            m
                        }
                        // address.call / block.timestamp style members that
                        // collide with keywords.
                        TokenKind::Keyword(k) => {
                            self.bump();
                            Symbol::intern(k.as_str())
                        }
                        TokenKind::Ellipsis if self.opts.placeholders => {
                            self.bump();
                            Symbol::intern("...")
                        }
                        _ => {
                            return Err(self.error(format!(
                                "expected member name, found `{}`",
                                self.peek().kind.text()
                            )))
                        }
                    };
                    let span = expr.span.to(self.tokens[self.pos - 1].span);
                    expr = Expr {
                        kind: ExprKind::Member { base: Box::new(expr), member },
                        span,
                    };
                }
                TokenKind::Punct("[") => {
                    self.bump();
                    let index = if self.at_punct("]") {
                        None
                    } else {
                        Some(Box::new(self.expression()?))
                    };
                    let end = self.expect_punct("]")?;
                    let span = expr.span.to(end);
                    expr = Expr {
                        kind: ExprKind::Index { base: Box::new(expr), index },
                        span,
                    };
                }
                TokenKind::Punct("{") if self.call_options_ahead() => {
                    let options = self.call_options()?;
                    let args = if self.at_punct("(") { self.call_args()? } else { Vec::new() };
                    let span = expr.span.to(self.tokens[self.pos - 1].span);
                    expr = Expr {
                        kind: ExprKind::Call {
                            callee: Box::new(expr),
                            options,
                            args,
                            arg_names: vec![],
                        },
                        span,
                    };
                }
                TokenKind::Punct("(") => {
                    let (args, arg_names) = self.call_args_named()?;
                    let span = expr.span.to(self.tokens[self.pos - 1].span);
                    expr = Expr {
                        kind: ExprKind::Call {
                            callee: Box::new(expr),
                            options: vec![],
                            args,
                            arg_names,
                        },
                        span,
                    };
                }
                TokenKind::Punct("++") => {
                    let end = self.bump().span;
                    let span = expr.span.to(end);
                    expr = Expr {
                        kind: ExprKind::Unary {
                            op: UnOp::Inc,
                            prefix: false,
                            operand: Box::new(expr),
                        },
                        span,
                    };
                }
                TokenKind::Punct("--") => {
                    let end = self.bump().span;
                    let span = expr.span.to(end);
                    expr = Expr {
                        kind: ExprKind::Unary {
                            op: UnOp::Dec,
                            prefix: false,
                            operand: Box::new(expr),
                        },
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    /// Distinguish call options `f{value: 1}(...)` from a block statement
    /// following an expression (tolerant mode ambiguity).
    fn call_options_ahead(&self) -> bool {
        matches!(self.peek_at(1).kind, TokenKind::Ident(_) | TokenKind::Keyword(_))
            && matches!(self.peek_at(2).kind, TokenKind::Punct(":"))
    }

    fn call_options(&mut self) -> PResult<Vec<(Symbol, Expr)>> {
        self.expect_punct("{")?;
        let mut options = Vec::new();
        while !self.at_punct("}") && !self.at_eof() {
            let name = match self.peek().kind {
                TokenKind::Ident(n) => {
                    self.bump();
                    n
                }
                TokenKind::Keyword(k) => {
                    self.bump();
                    Symbol::intern(k.as_str())
                }
                _ => return Err(self.error("expected call option name".into())),
            };
            self.expect_punct(":")?;
            let value = self.expression()?;
            options.push((name, value));
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct("}")?;
        Ok(options)
    }

    fn call_args(&mut self) -> PResult<Vec<Expr>> {
        Ok(self.call_args_named()?.0)
    }

    fn call_args_named(&mut self) -> PResult<(Vec<Expr>, Vec<Symbol>)> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        let mut names = Vec::new();
        // Named-argument call `f({a: 1, b: 2})`.
        if self.at_punct("{") {
            let options = self.call_options()?;
            for (name, value) in options {
                names.push(name);
                args.push(value);
            }
            self.expect_punct(")")?;
            return Ok((args, names));
        }
        while !self.at_punct(")") && !self.at_eof() {
            if matches!(self.peek().kind, TokenKind::Ellipsis) && self.opts.placeholders {
                let span = self.bump().span;
                args.push(Expr { kind: ExprKind::Ellipsis, span });
            } else {
                args.push(self.expression()?);
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok((args, names))
    }

    fn primary(&mut self) -> PResult<Expr> {
        let start = self.span();
        let kind = match self.peek().kind {
            TokenKind::Number(n) => {
                self.bump();
                let unit = match self.peek().kind {
                    TokenKind::Keyword(k) if k.is_denomination() || k.is_time_unit() => {
                        let u = Symbol::intern(k.as_str());
                        self.bump();
                        Some(u)
                    }
                    _ => None,
                };
                ExprKind::Literal(Lit::Number { value: n, unit })
            }
            TokenKind::Str(s) => {
                self.bump();
                ExprKind::Literal(Lit::Str(s))
            }
            TokenKind::HexStr(s) => {
                self.bump();
                ExprKind::Literal(Lit::Hex(s))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                ExprKind::Literal(Lit::Bool(true))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                ExprKind::Literal(Lit::Bool(false))
            }
            TokenKind::Keyword(Keyword::New) => {
                self.bump();
                let ty = self.type_name()?;
                ExprKind::New(ty)
            }
            TokenKind::Keyword(Keyword::Payable) => {
                self.bump();
                ExprKind::ElementaryType("payable".into())
            }
            TokenKind::Keyword(Keyword::Address) => {
                self.bump();
                ExprKind::ElementaryType("address".into())
            }
            TokenKind::Keyword(Keyword::String) => {
                self.bump();
                ExprKind::ElementaryType("string".into())
            }
            TokenKind::Keyword(Keyword::Bytes) => {
                self.bump();
                ExprKind::ElementaryType("bytes".into())
            }
            TokenKind::Keyword(Keyword::Byte) => {
                self.bump();
                ExprKind::ElementaryType("byte".into())
            }
            TokenKind::Keyword(Keyword::Bool) => {
                self.bump();
                ExprKind::ElementaryType("bool".into())
            }
            TokenKind::Keyword(Keyword::Type) => {
                self.bump();
                ExprKind::Ident("type".into())
            }
            TokenKind::Keyword(Keyword::Throw) => {
                // `cond ? throw : x` appears in ancient snippets; treat as
                // identifier so the expression parses.
                self.bump();
                ExprKind::Ident("throw".into())
            }
            TokenKind::Ident(word) => {
                if is_elementary_type_sym(word) {
                    self.bump();
                    ExprKind::ElementaryType(word)
                } else {
                    self.bump();
                    ExprKind::Ident(word)
                }
            }
            TokenKind::Punct("(") => {
                self.bump();
                let mut entries: Vec<Option<Expr>> = Vec::new();
                let mut saw_comma = false;
                while !self.at_punct(")") && !self.at_eof() {
                    if self.at_punct(",") {
                        self.bump();
                        saw_comma = true;
                        if entries.is_empty() {
                            entries.push(None);
                        }
                        if self.at_punct(")") || self.at_punct(",") {
                            entries.push(None);
                        }
                        continue;
                    }
                    entries.push(Some(self.expression()?));
                }
                self.expect_punct(")")?;
                if entries.len() == 1 && !saw_comma {
                    let inner = entries.pop().unwrap().unwrap();
                    let end = self.tokens[self.pos - 1].span;
                    return Ok(Expr { kind: inner.kind, span: start.to(end) });
                }
                ExprKind::Tuple(entries)
            }
            TokenKind::Punct("[") => {
                // Inline array literal `[1, 2, 3]`.
                self.bump();
                let mut entries = Vec::new();
                while !self.at_punct("]") && !self.at_eof() {
                    entries.push(Some(self.expression()?));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct("]")?;
                ExprKind::Tuple(entries)
            }
            TokenKind::Ellipsis if self.opts.placeholders => {
                self.bump();
                ExprKind::Ellipsis
            }
            other => {
                return Err(self.error(format!(
                    "expected expression, found `{}`",
                    other.text()
                )))
            }
        };
        let end = self.tokens[self.pos.saturating_sub(1)].span;
        Ok(Expr { kind, span: start.to(end) })
    }
}

fn visibility_of(k: Keyword) -> Visibility {
    match k {
        Keyword::Public => Visibility::Public,
        Keyword::Private => Visibility::Private,
        Keyword::Internal => Visibility::Internal,
        Keyword::External => Visibility::External,
        _ => unreachable!("not a visibility keyword"),
    }
}

fn mutability_of(k: Keyword) -> Mutability {
    match k {
        Keyword::Pure => Mutability::Pure,
        Keyword::View => Mutability::View,
        Keyword::Payable => Mutability::Payable,
        Keyword::Constant => Mutability::Constant,
        _ => unreachable!("not a mutability keyword"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_listing_1() {
        // The paper's Listing 1 (with the missing `;` and loose header kept).
        let src = r#"
            contract Parent {
                address owner;
                constructor() { owner = msg.sender; }
            }
            contract Main is Parent {
                uint state_var;
                constructor() { state_var = 0; }
                function() payable {}
                function withdrawAll public onlyOwner() {
                    msg.sender.call{value: this.balance}("");
                }
                modifier onlyOwner() {
                    require(msg.sender == owner, "Not owner"); _;
                }
            }
        "#;
        let unit = parse_snippet(src).unwrap();
        assert_eq!(unit.items.len(), 2);
        let SourceItem::Contract(main) = &unit.items[1] else { panic!() };
        assert_eq!(main.name, "Main");
        assert_eq!(main.bases[0].name, "Parent");
        assert_eq!(main.parts.len(), 5);
    }

    #[test]
    fn bare_function_snippet() {
        let unit = parse_snippet("function() {lib.delegatecall(msg.data);}").unwrap();
        let SourceItem::Function(f) = &unit.items[0] else { panic!() };
        assert!(f.is_default_function());
    }

    #[test]
    fn bare_statements_snippet() {
        let unit = parse_snippet("owner = msg.sender;\nballance += msg.value").unwrap();
        assert_eq!(unit.items.len(), 2);
        assert!(matches!(unit.items[1], SourceItem::Statement(_)));
    }

    #[test]
    fn newline_terminated_statements() {
        let unit = parse_snippet("uint a = 1\nuint b = 2\na = a + b").unwrap();
        assert_eq!(unit.items.len(), 3);
    }

    #[test]
    fn strict_mode_rejects_missing_semi() {
        assert!(parse_source("contract C { function f() public { uint a = 1 uint b = 2; } }").is_err());
    }

    #[test]
    fn strict_mode_rejects_bare_statements() {
        assert!(parse_source("owner = msg.sender;").is_err());
        assert!(parse_snippet("owner = msg.sender;").is_ok());
    }

    #[test]
    fn strict_mode_rejects_placeholders() {
        assert!(parse_source("contract C { function f() public { ... } }").is_err());
        assert!(parse_snippet("contract C { function f() public { ... } }").is_ok());
    }

    #[test]
    fn placeholders_in_contract_body() {
        let unit = parse_snippet("contract C {\n ...\n function f() public {} }").unwrap();
        let SourceItem::Contract(c) = &unit.items[0] else { panic!() };
        assert!(matches!(c.parts[0], ContractPart::Placeholder(_)));
    }

    #[test]
    fn mapping_and_arrays() {
        let unit = parse_snippet(
            "mapping(address => uint256) public balances;\nuint[] values;\nuint[10] fixed_values;",
        )
        .unwrap();
        let SourceItem::Variable(v) = &unit.items[0] else { panic!() };
        assert!(v.ty.is_collection());
        assert_eq!(v.name, "balances");
    }

    #[test]
    fn call_options_and_legacy_value() {
        let unit = parse_snippet(
            "to.call{value: amount, gas: 2300}(\"\");\nto.call.value(amount)();",
        )
        .unwrap();
        assert_eq!(unit.items.len(), 2);
        let SourceItem::Statement(s) = &unit.items[0] else { panic!() };
        let StatementKind::Expression(e) = &s.kind else { panic!() };
        let ExprKind::Call { options, .. } = &e.kind else { panic!() };
        assert_eq!(options.len(), 2);
        assert_eq!(options[0].0, "value");
    }

    #[test]
    fn modifier_with_placeholder() {
        let unit =
            parse_snippet("modifier onlyOwner { require(msg.sender == owner); _; }").unwrap();
        let SourceItem::Modifier(m) = &unit.items[0] else { panic!() };
        let body = m.body.as_ref().unwrap();
        assert!(matches!(body.statements[1].kind, StatementKind::ModifierPlaceholder));
    }

    #[test]
    fn loops_and_control_flow() {
        let src = r#"
            function f(uint n) public {
                for (uint i = 0; i < n; i++) { total += i; }
                while (total > 0) { total--; }
                do { x += 1; } while (x < 10);
                if (x == 1) { return; } else { revert("bad"); }
            }
        "#;
        let unit = parse_snippet(src).unwrap();
        let SourceItem::Function(f) = &unit.items[0] else { panic!() };
        assert_eq!(f.body.as_ref().unwrap().statements.len(), 4);
    }

    #[test]
    fn tuple_destructuring() {
        let unit = parse_snippet("(uint a, uint b) = f();").unwrap();
        let SourceItem::Statement(s) = &unit.items[0] else { panic!() };
        let StatementKind::VariableDecl { parts, value } = &s.kind else { panic!() };
        assert_eq!(parts.len(), 2);
        assert!(value.is_some());
    }

    #[test]
    fn emit_revert_throw() {
        let unit = parse_snippet(
            "emit Transfer(from, to, value);\nrevert(\"nope\");\nthrow;",
        )
        .unwrap();
        assert!(matches!(
            unit.items[0],
            SourceItem::Statement(Statement { kind: StatementKind::Emit(_), .. })
        ));
        assert!(matches!(
            unit.items[1],
            SourceItem::Statement(Statement { kind: StatementKind::Revert(_), .. })
        ));
        assert!(matches!(
            unit.items[2],
            SourceItem::Statement(Statement { kind: StatementKind::Throw, .. })
        ));
    }

    #[test]
    fn assembly_is_captured_not_parsed() {
        let unit =
            parse_snippet("function f() public { assembly { let x := mload(0x40) } }").unwrap();
        let SourceItem::Function(f) = &unit.items[0] else { panic!() };
        let body = f.body.as_ref().unwrap();
        assert!(matches!(body.statements[0].kind, StatementKind::Assembly(_)));
    }

    #[test]
    fn units_parse() {
        let unit = parse_snippet("uint x = 1 ether + 30 days;").unwrap();
        let SourceItem::Statement(s) = &unit.items[0] else { panic!() };
        let StatementKind::VariableDecl { value: Some(v), .. } = &s.kind else { panic!() };
        let ExprKind::Binary { lhs, .. } = &v.kind else { panic!() };
        let ExprKind::Literal(Lit::Number { unit: Some(u), .. }) = &lhs.kind else { panic!() };
        assert_eq!(u, "ether");
    }

    #[test]
    fn interface_and_library() {
        let src = r#"
            interface IERC20 { function transfer(address to, uint256 value) external returns (bool); }
            library SafeMath { function add(uint a, uint b) internal pure returns (uint) { return a + b; } }
        "#;
        let unit = parse_source(src).unwrap();
        assert_eq!(unit.items.len(), 2);
    }

    #[test]
    fn pragma_and_import() {
        let unit = parse_source(
            "pragma solidity ^0.8.0;\nimport \"./IERC20.sol\";\ncontract C {}",
        )
        .unwrap();
        assert_eq!(unit.items.len(), 3);
        let SourceItem::Pragma(p) = &unit.items[0] else { panic!() };
        assert!(p.value.contains("0.8.0"));
    }

    #[test]
    fn precedence() {
        let unit = parse_snippet("x = a + b * c ** d;").unwrap();
        let SourceItem::Statement(s) = &unit.items[0] else { panic!() };
        let StatementKind::Expression(e) = &s.kind else { panic!() };
        assert_eq!(e.code(), "x = a + b * c ** d");
        let ExprKind::Assign { rhs, .. } = &e.kind else { panic!() };
        let ExprKind::Binary { op: BinOp::Add, .. } = &rhs.kind else { panic!() };
    }

    #[test]
    fn ternary_and_comparison() {
        let unit = parse_snippet("y = a > b ? a - b : b - a;").unwrap();
        assert_eq!(unit.items.len(), 1);
    }

    #[test]
    fn struct_enum_event_error() {
        let src = r#"
            struct Position { address owner; uint amount; }
            enum State { Created, Locked, Released }
            event Paid(address indexed from, uint value);
            error NotOwner(address caller);
        "#;
        let unit = parse_snippet(src).unwrap();
        assert_eq!(unit.items.len(), 4);
    }

    #[test]
    fn try_catch() {
        let src = r#"
            function f(address t) public {
                try IThing(t).doIt() returns (uint v) { total = v; }
                catch Error(string memory reason) { emit Failed(reason); }
                catch {}
            }
        "#;
        let unit = parse_snippet(src).unwrap();
        let SourceItem::Function(f) = &unit.items[0] else { panic!() };
        let StatementKind::Try { catches, .. } = &f.body.as_ref().unwrap().statements[0].kind
        else {
            panic!()
        };
        assert_eq!(catches.len(), 2);
    }

    #[test]
    fn unparsable_prose_is_rejected() {
        assert!(parse_snippet("you should use the transfer function like when x then do").is_err());
    }

    #[test]
    fn snippet_levels() {
        use crate::SnippetLevel;
        assert_eq!(
            parse_snippet("contract C {}").unwrap().snippet_level(),
            SnippetLevel::Contract
        );
        assert_eq!(
            parse_snippet("function f() public {}").unwrap().snippet_level(),
            SnippetLevel::Function
        );
        assert_eq!(
            parse_snippet("x = 1;").unwrap().snippet_level(),
            SnippetLevel::Statement
        );
    }

    #[test]
    fn unchecked_block() {
        let unit = parse_snippet("function f() public { unchecked { x += 1; } }").unwrap();
        let SourceItem::Function(f) = &unit.items[0] else { panic!() };
        assert!(matches!(
            f.body.as_ref().unwrap().statements[0].kind,
            StatementKind::Unchecked(_)
        ));
    }

    #[test]
    fn named_call_arguments() {
        let unit = parse_snippet("f({a: 1, b: 2});").unwrap();
        let SourceItem::Statement(s) = &unit.items[0] else { panic!() };
        let StatementKind::Expression(e) = &s.kind else { panic!() };
        let ExprKind::Call { args, arg_names, .. } = &e.kind else { panic!() };
        assert_eq!(args.len(), 2);
        assert_eq!(arg_names, &["a", "b"]);
    }

    #[test]
    fn using_for() {
        let unit = parse_snippet("using SafeMath for uint256;").unwrap();
        let SourceItem::UsingFor(u) = &unit.items[0] else { panic!() };
        assert_eq!(u.library, "SafeMath");
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;

    #[test]
    fn deeply_nested_expression_is_rejected_not_crashed() {
        let src = format!("x = {}1{};", "(".repeat(2000), ")".repeat(2000));
        assert!(parse_snippet(&src).is_err());
    }

    #[test]
    fn deeply_nested_blocks_are_rejected_not_crashed() {
        let src = format!(
            "function f() public {} x = 1; {}",
            "{ if (a) {".repeat(500),
            "} }".repeat(500)
        );
        assert!(parse_snippet(&src).is_err());
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let src = format!("x = {}1{};", "(".repeat(30), ")".repeat(30));
        assert!(parse_snippet(&src).is_ok());
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The parser never panics, whatever bytes arrive — Q&A snippets
        /// are adversarial input by nature.
        #[test]
        fn parser_never_panics_on_arbitrary_text(s in "\\PC{0,200}") {
            let _ = parse_snippet(&s);
            let _ = parse_source(&s);
        }

        /// Solidity-ish token soup must not panic either.
        #[test]
        fn parser_never_panics_on_token_soup(
            words in proptest::collection::vec(
                prop_oneof![
                    Just("contract"), Just("function"), Just("{"), Just("}"),
                    Just("("), Just(")"), Just(";"), Just("..."), Just("uint"),
                    Just("x"), Just("="), Just("1"), Just("if"), Just("mapping"),
                    Just("=>"), Just("["), Just("]"), Just("msg"), Just("."),
                    Just("sender"), Just("require"), Just("modifier"), Just("_"),
                ],
                0..64,
            ),
        ) {
            let source = words.join(" ");
            let _ = parse_snippet(&source);
        }

        /// Whatever parses must also print and re-parse (no panics in the
        /// printer on any accepted tree).
        #[test]
        fn accepted_input_roundtrips_without_panic(s in "\\PC{0,200}") {
            if let Ok(unit) = parse_snippet(&s) {
                let printed = crate::printer::print_unit(&unit);
                let _ = parse_snippet(&printed);
            }
        }
    }
}
