//! Canonical pretty-printer for the AST.
//!
//! The printer produces a normalized single-space-separated source form. It
//! is used for three purposes:
//!
//! 1. producing the `code` property of CPG nodes that vulnerability queries
//!    match against (e.g. `code = 'msg.sender'`),
//! 2. emitting normalized code for the clone detector (after identifier
//!    renaming, see the `ccd` crate), and
//! 3. round-trip testing the parser (print → reparse → equal shape).

use crate::ast::*;

/// Print a full source unit.
pub fn print_unit(unit: &SourceUnit) -> String {
    let mut out = String::new();
    let mut p = Printer::new(&mut out);
    for item in &unit.items {
        p.item(item);
    }
    out
}

/// Print a single expression in canonical form (`msg.sender`, `a + b`, ...).
pub fn print_expr(expr: &Expr) -> String {
    let mut out = String::new();
    print_expr_into(expr, &mut out);
    out
}

/// Print an expression into an existing buffer (appended, not cleared).
///
/// The CPG builder prints a `code` string for every expression node; going
/// through one reused scratch buffer instead of a fresh `String` per node
/// keeps that loop allocation-free.
pub fn print_expr_into(expr: &Expr, out: &mut String) {
    Printer::new(out).expr(expr);
}

/// Print a single statement in canonical form.
pub fn print_stmt(stmt: &Statement) -> String {
    let mut out = String::new();
    Printer::new(&mut out).stmt(stmt);
    out
}

/// Print a type name.
pub fn print_type(ty: &TypeName) -> String {
    let mut out = String::new();
    print_type_into(ty, &mut out);
    out
}

/// Print a type name into an existing buffer (appended, not cleared).
pub fn print_type_into(ty: &TypeName, out: &mut String) {
    Printer::new(out).ty(ty);
}

/// Print a function definition, including its header and body.
pub fn print_function(f: &FunctionDef) -> String {
    let mut out = String::new();
    Printer::new(&mut out).function(f);
    out
}

/// Print a contract definition.
pub fn print_contract(c: &ContractDef) -> String {
    let mut out = String::new();
    Printer::new(&mut out).contract(c);
    out
}

struct Printer<'a> {
    out: &'a mut String,
    indent: usize,
}

impl<'a> Printer<'a> {
    fn new(out: &'a mut String) -> Self {
        Printer { out, indent: 0 }
    }

    fn push(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn item(&mut self, item: &SourceItem) {
        match item {
            SourceItem::Pragma(p) => {
                self.push(&format!("pragma {} {};", p.name, p.value));
                self.nl();
            }
            SourceItem::Import(path) => {
                self.push(&format!("import \"{path}\";"));
                self.nl();
            }
            SourceItem::Contract(c) => {
                self.contract(c);
                self.nl();
            }
            SourceItem::Function(f) => {
                self.function(f);
                self.nl();
            }
            SourceItem::Modifier(m) => {
                self.modifier(m);
                self.nl();
            }
            SourceItem::Struct(s) => {
                self.struct_def(s);
                self.nl();
            }
            SourceItem::Enum(e) => {
                self.enum_def(e);
                self.nl();
            }
            SourceItem::Event(e) => {
                self.event_def(e);
                self.nl();
            }
            SourceItem::ErrorDef(e) => {
                self.error_def(e);
                self.nl();
            }
            SourceItem::Variable(v) => {
                self.state_var(v);
                self.nl();
            }
            SourceItem::UsingFor(u) => {
                self.using_for(u);
                self.nl();
            }
            SourceItem::Statement(s) => {
                self.stmt(s);
                self.nl();
            }
        }
    }

    fn contract(&mut self, c: &ContractDef) {
        self.push(c.kind.as_str());
        self.push(" ");
        self.push(&c.name);
        if !c.bases.is_empty() {
            self.push(" is ");
            for (i, base) in c.bases.iter().enumerate() {
                if i > 0 {
                    self.push(", ");
                }
                self.push(&base.name);
                if !base.args.is_empty() {
                    self.push("(");
                    self.exprs(&base.args);
                    self.push(")");
                }
            }
        }
        self.push(" {");
        self.indent += 1;
        for part in &c.parts {
            self.nl();
            self.contract_part(part);
        }
        self.indent -= 1;
        self.nl();
        self.push("}");
    }

    fn contract_part(&mut self, part: &ContractPart) {
        match part {
            ContractPart::Variable(v) => self.state_var(v),
            ContractPart::Function(f) => self.function(f),
            ContractPart::Modifier(m) => self.modifier(m),
            ContractPart::Struct(s) => self.struct_def(s),
            ContractPart::Enum(e) => self.enum_def(e),
            ContractPart::Event(e) => self.event_def(e),
            ContractPart::ErrorDef(e) => self.error_def(e),
            ContractPart::UsingFor(u) => self.using_for(u),
            ContractPart::Placeholder(_) => self.push("..."),
        }
    }

    fn state_var(&mut self, v: &StateVarDecl) {
        self.ty(&v.ty);
        if let Some(vis) = v.visibility {
            self.push(" ");
            self.push(vis.as_str());
        }
        if v.is_constant {
            self.push(" constant");
        }
        if v.is_immutable {
            self.push(" immutable");
        }
        self.push(" ");
        self.push(&v.name);
        if let Some(init) = &v.initializer {
            self.push(" = ");
            self.expr(init);
        }
        self.push(";");
    }

    fn function(&mut self, f: &FunctionDef) {
        match f.kind {
            FunctionKind::Constructor => self.push("constructor"),
            FunctionKind::Receive => self.push("receive"),
            FunctionKind::Fallback => self.push("fallback"),
            FunctionKind::Function => {
                self.push("function");
                if let Some(name) = &f.name {
                    self.push(" ");
                    self.push(name);
                }
            }
        }
        self.push("(");
        self.params(&f.params);
        self.push(")");
        if let Some(vis) = f.visibility {
            self.push(" ");
            self.push(vis.as_str());
        }
        if let Some(m) = f.mutability {
            self.push(" ");
            self.push(m.as_str());
        }
        if f.is_virtual {
            self.push(" virtual");
        }
        if f.is_override {
            self.push(" override");
        }
        for m in &f.modifiers {
            self.push(" ");
            self.push(&m.name);
            if !m.args.is_empty() {
                self.push("(");
                self.exprs(&m.args);
                self.push(")");
            }
        }
        if !f.returns.is_empty() {
            self.push(" returns (");
            self.params(&f.returns);
            self.push(")");
        }
        match &f.body {
            Some(body) => {
                self.push(" ");
                self.block(body);
            }
            None => self.push(";"),
        }
    }

    fn modifier(&mut self, m: &ModifierDef) {
        self.push("modifier ");
        self.push(&m.name);
        if !m.params.is_empty() {
            self.push("(");
            self.params(&m.params);
            self.push(")");
        }
        match &m.body {
            Some(body) => {
                self.push(" ");
                self.block(body);
            }
            None => self.push(";"),
        }
    }

    fn struct_def(&mut self, s: &StructDef) {
        self.push("struct ");
        self.push(&s.name);
        self.push(" {");
        self.indent += 1;
        for field in &s.fields {
            self.nl();
            self.param(field);
            self.push(";");
        }
        self.indent -= 1;
        self.nl();
        self.push("}");
    }

    fn enum_def(&mut self, e: &EnumDef) {
        self.push("enum ");
        self.push(&e.name);
        self.push(" { ");
        self.push(&e.variants.join(", "));
        self.push(" }");
    }

    fn event_def(&mut self, e: &EventDef) {
        self.push("event ");
        self.push(&e.name);
        self.push("(");
        self.params(&e.params);
        self.push(")");
        if e.anonymous {
            self.push(" anonymous");
        }
        self.push(";");
    }

    fn error_def(&mut self, e: &ErrorDef) {
        self.push("error ");
        self.push(&e.name);
        self.push("(");
        self.params(&e.params);
        self.push(");");
    }

    fn using_for(&mut self, u: &UsingFor) {
        self.push("using ");
        self.push(&u.library);
        self.push(" for ");
        match &u.target {
            Some(ty) => self.ty(ty),
            None => self.push("*"),
        }
        self.push(";");
    }

    fn params(&mut self, params: &[Param]) {
        for (i, p) in params.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.param(p);
        }
    }

    fn param(&mut self, p: &Param) {
        self.ty(&p.ty);
        if p.indexed {
            self.push(" indexed");
        }
        if let Some(storage) = p.storage {
            self.push(" ");
            self.push(storage.as_str());
        }
        if let Some(name) = &p.name {
            self.push(" ");
            self.push(name);
        }
    }

    fn ty(&mut self, ty: &TypeName) {
        match ty {
            TypeName::Elementary(s) | TypeName::UserDefined(s) => self.push(s),
            TypeName::Mapping(k, v) => {
                self.push("mapping(");
                self.ty(k);
                self.push(" => ");
                self.ty(v);
                self.push(")");
            }
            TypeName::Array(inner, len) => {
                self.ty(inner);
                self.push("[");
                if let Some(len) = len {
                    self.expr(len);
                }
                self.push("]");
            }
            TypeName::Function { params, returns } => {
                self.push("function(");
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.ty(p);
                }
                self.push(")");
                if !returns.is_empty() {
                    self.push(" returns (");
                    for (i, r) in returns.iter().enumerate() {
                        if i > 0 {
                            self.push(", ");
                        }
                        self.ty(r);
                    }
                    self.push(")");
                }
            }
            TypeName::Unknown => self.push("var"),
        }
    }

    fn block(&mut self, b: &Block) {
        self.push("{");
        self.indent += 1;
        for s in &b.statements {
            self.nl();
            self.stmt(s);
        }
        self.indent -= 1;
        self.nl();
        self.push("}");
    }

    fn stmt(&mut self, s: &Statement) {
        match &s.kind {
            StatementKind::Block(b) => self.block(b),
            StatementKind::If { cond, then, alt } => {
                self.push("if (");
                self.expr(cond);
                self.push(") ");
                self.stmt(then);
                if let Some(alt) = alt {
                    self.push(" else ");
                    self.stmt(alt);
                }
            }
            StatementKind::While { cond, body } => {
                self.push("while (");
                self.expr(cond);
                self.push(") ");
                self.stmt(body);
            }
            StatementKind::DoWhile { body, cond } => {
                self.push("do ");
                self.stmt(body);
                self.push(" while (");
                self.expr(cond);
                self.push(");");
            }
            StatementKind::For { init, cond, update, body } => {
                self.push("for (");
                match init {
                    Some(init) => self.stmt_inline(init),
                    None => self.push(";"),
                }
                self.push(" ");
                if let Some(cond) = cond {
                    self.expr(cond);
                }
                self.push("; ");
                if let Some(update) = update {
                    self.expr(update);
                }
                self.push(") ");
                self.stmt(body);
            }
            StatementKind::Expression(e) => {
                self.expr(e);
                self.push(";");
            }
            StatementKind::VariableDecl { parts, value } => {
                if parts.len() > 1 {
                    self.push("(");
                }
                for (i, part) in parts.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    match &part.ty {
                        Some(ty) => self.ty(ty),
                        None => self.push("var"),
                    }
                    if let Some(storage) = part.storage {
                        self.push(" ");
                        self.push(storage.as_str());
                    }
                    self.push(" ");
                    self.push(&part.name);
                }
                if parts.len() > 1 {
                    self.push(")");
                }
                if let Some(value) = value {
                    self.push(" = ");
                    self.expr(value);
                }
                self.push(";");
            }
            StatementKind::Return(value) => {
                self.push("return");
                if let Some(value) = value {
                    self.push(" ");
                    self.expr(value);
                }
                self.push(";");
            }
            StatementKind::Emit(call) => {
                self.push("emit ");
                self.expr(call);
                self.push(";");
            }
            StatementKind::Revert(arg) => {
                self.push("revert");
                if let Some(arg) = arg {
                    self.push("(");
                    self.expr(arg);
                    self.push(")");
                }
                self.push(";");
            }
            StatementKind::Throw => self.push("throw;"),
            StatementKind::Break => self.push("break;"),
            StatementKind::Continue => self.push("continue;"),
            StatementKind::ModifierPlaceholder => self.push("_;"),
            StatementKind::Ellipsis => self.push("..."),
            StatementKind::Unchecked(b) => {
                self.push("unchecked ");
                self.block(b);
            }
            StatementKind::Assembly(text) => {
                self.push("assembly { ");
                self.push(text);
                self.push(" }");
            }
            StatementKind::Try { expr, success, catches } => {
                self.push("try ");
                self.expr(expr);
                self.push(" ");
                self.block(success);
                for c in catches {
                    self.push(" catch ");
                    self.block(c);
                }
            }
        }
    }

    /// Statement printed without trailing newline handling, used in `for`.
    fn stmt_inline(&mut self, s: &Statement) {
        self.stmt(s);
    }

    fn exprs(&mut self, exprs: &[Expr]) {
        for (i, e) in exprs.iter().enumerate() {
            if i > 0 {
                self.push(", ");
            }
            self.expr(e);
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Binary { op, lhs, rhs } => {
                self.maybe_paren(lhs, prec_of(lhs) < bin_prec(*op));
                self.push(" ");
                self.push(op.as_str());
                self.push(" ");
                self.maybe_paren(rhs, prec_of(rhs) <= bin_prec(*op) && is_binary(rhs));
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.expr(lhs);
                self.push(" ");
                self.push(op.as_str());
                self.push(" ");
                self.expr(rhs);
            }
            ExprKind::Unary { op, prefix, operand } => {
                if *prefix {
                    self.push(op.as_str());
                    if *op == UnOp::Delete {
                        self.push(" ");
                    }
                    self.maybe_paren(operand, is_binary(operand));
                } else {
                    self.maybe_paren(operand, is_binary(operand));
                    self.push(op.as_str());
                }
            }
            ExprKind::Ternary { cond, then, alt } => {
                self.expr(cond);
                self.push(" ? ");
                self.expr(then);
                self.push(" : ");
                self.expr(alt);
            }
            ExprKind::Call { callee, options, args, arg_names } => {
                self.expr(callee);
                if !options.is_empty() {
                    self.push("{");
                    for (i, (name, value)) in options.iter().enumerate() {
                        if i > 0 {
                            self.push(", ");
                        }
                        self.push(name);
                        self.push(": ");
                        self.expr(value);
                    }
                    self.push("}");
                }
                self.push("(");
                if arg_names.is_empty() {
                    self.exprs(args);
                } else {
                    self.push("{");
                    for (i, (name, value)) in arg_names.iter().zip(args).enumerate() {
                        if i > 0 {
                            self.push(", ");
                        }
                        self.push(name);
                        self.push(": ");
                        self.expr(value);
                    }
                    self.push("}");
                }
                self.push(")");
            }
            ExprKind::Member { base, member } => {
                self.maybe_paren(base, is_binary(base));
                self.push(".");
                self.push(member);
            }
            ExprKind::Index { base, index } => {
                self.expr(base);
                self.push("[");
                if let Some(index) = index {
                    self.expr(index);
                }
                self.push("]");
            }
            ExprKind::Ident(name) => self.push(name),
            ExprKind::Literal(lit) => match lit {
                Lit::Number { value, unit } => {
                    self.push(value);
                    if let Some(unit) = unit {
                        self.push(" ");
                        self.push(unit);
                    }
                }
                Lit::Str(s) => {
                    self.push("\"");
                    self.push(s);
                    self.push("\"");
                }
                Lit::Bool(b) => self.push(if *b { "true" } else { "false" }),
                Lit::Hex(h) => {
                    self.push("hex\"");
                    self.push(h);
                    self.push("\"");
                }
            },
            ExprKind::Tuple(entries) => {
                self.push("(");
                for (i, entry) in entries.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    if let Some(e) = entry {
                        self.expr(e);
                    }
                }
                self.push(")");
            }
            ExprKind::New(ty) => {
                self.push("new ");
                self.ty(ty);
            }
            ExprKind::ElementaryType(name) => self.push(name),
            ExprKind::Ellipsis => self.push("..."),
        }
    }

    fn maybe_paren(&mut self, e: &Expr, needed: bool) {
        if needed {
            self.push("(");
            self.expr(e);
            self.push(")");
        } else {
            self.expr(e);
        }
    }
}

fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne => 3,
        BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => 4,
        BinOp::BitOr => 5,
        BinOp::BitXor => 6,
        BinOp::BitAnd => 7,
        BinOp::Shl | BinOp::Shr => 8,
        BinOp::Add | BinOp::Sub => 9,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 10,
        BinOp::Pow => 11,
    }
}

fn prec_of(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::Binary { op, .. } => bin_prec(*op),
        ExprKind::Assign { .. } => 0,
        ExprKind::Ternary { .. } => 0,
        _ => 12,
    }
}

fn is_binary(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::Binary { .. } | ExprKind::Assign { .. } | ExprKind::Ternary { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_snippet;

    fn roundtrip(src: &str) {
        let unit = parse_snippet(src).expect("first parse");
        let printed = print_unit(&unit);
        let reparsed = parse_snippet(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        let reprinted = print_unit(&reparsed);
        assert_eq!(printed, reprinted, "printer not a fixpoint for `{src}`");
    }

    #[test]
    fn expr_code_matches_paper_examples() {
        let unit = parse_snippet("require(msg.sender == owner);").unwrap();
        let crate::ast::SourceItem::Statement(s) = &unit.items[0] else { panic!() };
        let crate::ast::StatementKind::Expression(e) = &s.kind else { panic!() };
        assert_eq!(e.code(), "require(msg.sender == owner)");
        let crate::ast::ExprKind::Call { args, .. } = &e.kind else { panic!() };
        assert_eq!(args[0].code(), "msg.sender == owner");
    }

    #[test]
    fn member_chain_code() {
        let unit = parse_snippet("x = msg.data.length;").unwrap();
        let crate::ast::SourceItem::Statement(s) = &unit.items[0] else { panic!() };
        let crate::ast::StatementKind::Expression(e) = &s.kind else { panic!() };
        let crate::ast::ExprKind::Assign { rhs, .. } = &e.kind else { panic!() };
        assert_eq!(rhs.code(), "msg.data.length");
    }

    #[test]
    fn roundtrip_contract() {
        roundtrip(
            "contract Bank { mapping(address => uint) balances; \
             function deposit() public payable { balances[msg.sender] += msg.value; } \
             function withdraw(uint amount) public { \
               require(balances[msg.sender] >= amount); \
               msg.sender.call{value: amount}(\"\"); \
               balances[msg.sender] -= amount; } }",
        );
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            "function f(uint n) public returns (uint) { \
               uint total = 0; \
               for (uint i = 0; i < n; i++) { total += i; } \
               while (total > 100) { total -= 10; } \
               if (total == 0) { return 0; } else { return total; } }",
        );
    }

    #[test]
    fn roundtrip_snippet_with_placeholders() {
        roundtrip("contract C { ... function f() public { ... } }");
    }

    #[test]
    fn roundtrip_events_and_structs() {
        roundtrip(
            "struct P { address who; uint amt; } \
             event Paid(address indexed who, uint amt); \
             function pay() public { emit Paid(msg.sender, 1 ether); }",
        );
    }

    #[test]
    fn precedence_parens_preserved() {
        let unit = parse_snippet("x = (a + b) * c;").unwrap();
        let printed = print_unit(&unit);
        assert!(printed.contains("(a + b) * c"), "got: {printed}");
    }
}
