//! Abstract syntax tree for (possibly incomplete) Solidity sources.
//!
//! The tree is deliberately permissive: every hierarchy level of the language
//! may appear at the top level of a [`SourceUnit`], names may be missing
//! (default functions), and elided code is represented by explicit
//! placeholder nodes. This mirrors the grammar modifications of §4.1.

use crate::span::Span;
use intern::{LineIndex, Symbol};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A parsed source unit: a full file, a bare function, or a pile of
/// statements, depending on what the snippet contained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceUnit {
    /// Top-level items in source order.
    pub items: Vec<SourceItem>,
    /// Newline index of the source this unit was parsed from. Spans carry
    /// only byte offsets; diagnostics and findings resolve them to 1-based
    /// line/column through this shared index.
    pub line_index: Arc<LineIndex>,
}

impl SourceUnit {
    /// The 1-based line of a span's start (0 for synthesized dummy spans),
    /// resolved against the source this unit was parsed from.
    pub fn line_of(&self, span: Span) -> u32 {
        if span.is_dummy() {
            0
        } else {
            self.line_index.line_of(span.start)
        }
    }
}

/// Anything that can appear at the top level of a (snippet) source unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceItem {
    /// `pragma solidity ^0.8.0;`
    Pragma(Pragma),
    /// `import "...";` (the path only; symbol aliases are not modelled).
    Import(Symbol),
    /// A contract, interface or library definition.
    Contract(ContractDef),
    /// A free-standing function definition (unnested snippet).
    Function(FunctionDef),
    /// A free-standing modifier definition (unnested snippet).
    Modifier(ModifierDef),
    /// A free-standing struct definition.
    Struct(StructDef),
    /// A free-standing enum definition.
    Enum(EnumDef),
    /// A free-standing event declaration.
    Event(EventDef),
    /// A free-standing custom error declaration.
    ErrorDef(ErrorDef),
    /// A state-variable-looking declaration at the top level.
    Variable(StateVarDecl),
    /// `using SafeMath for uint256;`
    UsingFor(UsingFor),
    /// A bare statement (unnested snippet).
    Statement(Statement),
}

/// `pragma <name> <value>;`
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pragma {
    /// Pragma name, usually `solidity`.
    pub name: Symbol,
    /// Raw value text, e.g. `^0.8.0`.
    pub value: Symbol,
    /// Source location.
    pub span: Span,
}

/// Kind of a contract-like definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContractKind {
    /// `contract`
    Contract,
    /// `interface`
    Interface,
    /// `library`
    Library,
    /// `abstract contract`
    AbstractContract,
}

impl ContractKind {
    /// Keyword text of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ContractKind::Contract => "contract",
            ContractKind::Interface => "interface",
            ContractKind::Library => "library",
            ContractKind::AbstractContract => "abstract contract",
        }
    }
}

/// A contract, interface or library definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContractDef {
    /// Contract kind.
    pub kind: ContractKind,
    /// Declared name.
    pub name: Symbol,
    /// Base contracts from the `is` clause, with optional constructor args.
    pub bases: Vec<InheritanceSpecifier>,
    /// Body members in source order.
    pub parts: Vec<ContractPart>,
    /// Source location.
    pub span: Span,
}

/// One entry of an `is` clause: base name plus optional constructor args.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InheritanceSpecifier {
    /// Possibly qualified base name (`A.B` is stored joined with `.`).
    pub name: Symbol,
    /// Constructor arguments, if given inline.
    pub args: Vec<Expr>,
}

/// A member of a contract body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ContractPart {
    /// State variable declaration.
    Variable(StateVarDecl),
    /// Function, constructor, fallback or receive definition.
    Function(FunctionDef),
    /// Modifier definition.
    Modifier(ModifierDef),
    /// Struct definition.
    Struct(StructDef),
    /// Enum definition.
    Enum(EnumDef),
    /// Event declaration.
    Event(EventDef),
    /// Custom error declaration.
    ErrorDef(ErrorDef),
    /// `using X for Y;`
    UsingFor(UsingFor),
    /// `...` placeholder standing in for elided members.
    Placeholder(Span),
}

/// Kind of a function-like definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunctionKind {
    /// A named (or unnamed legacy default) function.
    Function,
    /// `constructor(...)` or the legacy `function ContractName(...)` form —
    /// the parser only produces this for the keyword form; the CPG pass
    /// upgrades legacy constructors during translation.
    Constructor,
    /// `fallback()` or the legacy unnamed `function()`.
    Fallback,
    /// `receive()`.
    Receive,
}

/// Visibility of functions and state variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Visibility {
    /// `public`
    Public,
    /// `private`
    Private,
    /// `internal`
    Internal,
    /// `external`
    External,
}

impl Visibility {
    /// Keyword text.
    pub fn as_str(self) -> &'static str {
        match self {
            Visibility::Public => "public",
            Visibility::Private => "private",
            Visibility::Internal => "internal",
            Visibility::External => "external",
        }
    }
}

/// State mutability of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mutability {
    /// `pure`
    Pure,
    /// `view`
    View,
    /// `payable`
    Payable,
    /// legacy `constant`
    Constant,
}

impl Mutability {
    /// Keyword text.
    pub fn as_str(self) -> &'static str {
        match self {
            Mutability::Pure => "pure",
            Mutability::View => "view",
            Mutability::Payable => "payable",
            Mutability::Constant => "constant",
        }
    }
}

/// Data location of a parameter or local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Storage {
    /// `memory`
    Memory,
    /// `storage`
    Storage,
    /// `calldata`
    Calldata,
}

impl Storage {
    /// Keyword text.
    pub fn as_str(self) -> &'static str {
        match self {
            Storage::Memory => "memory",
            Storage::Storage => "storage",
            Storage::Calldata => "calldata",
        }
    }
}

/// A function, constructor, fallback or receive definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionDef {
    /// What kind of function this is.
    pub kind: FunctionKind,
    /// Name; `None` for constructors, fallback/receive and the legacy
    /// unnamed default function `function() {...}`.
    pub name: Option<Symbol>,
    /// Declared parameters.
    pub params: Vec<Param>,
    /// Return parameters from the `returns (...)` clause.
    pub returns: Vec<Param>,
    /// Declared visibility, if any.
    pub visibility: Option<Visibility>,
    /// Declared mutability, if any.
    pub mutability: Option<Mutability>,
    /// `virtual` flag.
    pub is_virtual: bool,
    /// `override` flag.
    pub is_override: bool,
    /// Applied modifiers / base-constructor invocations, in order.
    pub modifiers: Vec<ModifierInvocation>,
    /// Body; `None` for declarations ending in `;` (interfaces, abstracts).
    pub body: Option<Block>,
    /// Source location.
    pub span: Span,
}

impl FunctionDef {
    /// Whether this is the default function of a pre-0.6 contract or a
    /// fallback/receive function — i.e. the function invoked when a call
    /// names no function. Relevant for the Default Proxy Delegate query.
    pub fn is_default_function(&self) -> bool {
        matches!(self.kind, FunctionKind::Fallback | FunctionKind::Receive)
            || (self.kind == FunctionKind::Function && self.name.is_none())
    }
}

/// One `Modifier(args)` or bare `Modifier` in a function header.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModifierInvocation {
    /// Modifier (or base contract) name.
    pub name: Symbol,
    /// Arguments; empty for bare mentions.
    pub args: Vec<Expr>,
    /// Source location.
    pub span: Span,
}

/// A modifier definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModifierDef {
    /// Modifier name.
    pub name: Symbol,
    /// Declared parameters.
    pub params: Vec<Param>,
    /// Body containing `_;` placeholders.
    pub body: Option<Block>,
    /// Source location.
    pub span: Span,
}

/// A function/event/error/modifier parameter or return slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Declared type.
    pub ty: TypeName,
    /// Data location, if given.
    pub storage: Option<Storage>,
    /// Name; anonymous slots have `None`.
    pub name: Option<Symbol>,
    /// `indexed` flag (events only).
    pub indexed: bool,
    /// Source location.
    pub span: Span,
}

/// A state variable declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateVarDecl {
    /// Declared type.
    pub ty: TypeName,
    /// Visibility, if declared.
    pub visibility: Option<Visibility>,
    /// `constant` flag.
    pub is_constant: bool,
    /// `immutable` flag.
    pub is_immutable: bool,
    /// Variable name.
    pub name: Symbol,
    /// Initializer expression, if any.
    pub initializer: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructDef {
    /// Struct name.
    pub name: Symbol,
    /// Member fields.
    pub fields: Vec<Param>,
    /// Source location.
    pub span: Span,
}

/// An enum definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnumDef {
    /// Enum name.
    pub name: Symbol,
    /// Variant names.
    pub variants: Vec<Symbol>,
    /// Source location.
    pub span: Span,
}

/// An event declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventDef {
    /// Event name.
    pub name: Symbol,
    /// Event parameters.
    pub params: Vec<Param>,
    /// `anonymous` flag.
    pub anonymous: bool,
    /// Source location.
    pub span: Span,
}

/// A custom error declaration (`error NotOwner(address caller);`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorDef {
    /// Error name.
    pub name: Symbol,
    /// Error parameters.
    pub params: Vec<Param>,
    /// Source location.
    pub span: Span,
}

/// `using <library> for <type>;`
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsingFor {
    /// Library name.
    pub library: Symbol,
    /// Target type; `None` for `using X for *`.
    pub target: Option<TypeName>,
    /// Source location.
    pub span: Span,
}

/// A type name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TypeName {
    /// An elementary type (`uint256`, `address`, `address payable`, ...).
    Elementary(Symbol),
    /// A user-defined (possibly qualified) type, path joined by `.`.
    UserDefined(Symbol),
    /// `mapping(K => V)`.
    Mapping(Box<TypeName>, Box<TypeName>),
    /// `T[]` or `T[n]` with the optional length expression.
    Array(Box<TypeName>, Option<Box<Expr>>),
    /// A function type (`function(uint) external returns (bool)`),
    /// flattened to its parameter/return types.
    Function {
        /// Parameter types.
        params: Vec<TypeName>,
        /// Return types.
        returns: Vec<TypeName>,
    },
    /// The legacy `var` keyword / unknown type in a snippet.
    Unknown,
}

impl TypeName {
    /// Canonical display name used for normalization and type matching.
    /// Borrowed (no allocation) for every shape except mappings and arrays,
    /// whose composite form is built on demand.
    pub fn canonical(&self) -> std::borrow::Cow<'static, str> {
        match self {
            TypeName::Elementary(s) => std::borrow::Cow::Borrowed(s.as_str()),
            TypeName::UserDefined(s) => std::borrow::Cow::Borrowed(s.as_str()),
            TypeName::Mapping(k, v) => {
                std::borrow::Cow::Owned(format!("mapping({}=>{})", k.canonical(), v.canonical()))
            }
            TypeName::Array(inner, _) => {
                std::borrow::Cow::Owned(format!("{}[]", inner.canonical()))
            }
            TypeName::Function { .. } => std::borrow::Cow::Borrowed("function"),
            TypeName::Unknown => std::borrow::Cow::Borrowed("uint"),
        }
    }

    /// Whether the type is (or decays to) `address`.
    pub fn is_address(&self) -> bool {
        matches!(self, TypeName::Elementary(s) if s.starts_with("address"))
    }

    /// Whether the type is an integer type.
    pub fn is_integer(&self) -> bool {
        matches!(self, TypeName::Elementary(s)
            if s.starts_with("uint") || s.starts_with("int"))
    }

    /// Whether the type is a mapping or a dynamic array — i.e. a collection.
    pub fn is_collection(&self) -> bool {
        matches!(self, TypeName::Mapping(..) | TypeName::Array(..))
    }
}

/// A block of statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Statements in order.
    pub statements: Vec<Statement>,
    /// Source location.
    pub span: Span,
}

/// A statement with its source location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Statement {
    /// The statement proper.
    pub kind: StatementKind,
    /// Source location.
    pub span: Span,
}

/// One local declaration slot inside a variable-declaration statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarDeclPart {
    /// Declared type; `None` inside tuple destructuring with `var`.
    pub ty: Option<TypeName>,
    /// Data location.
    pub storage: Option<Storage>,
    /// Variable name.
    pub name: Symbol,
    /// Source location.
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StatementKind {
    /// `{ ... }`
    Block(Block),
    /// `if (cond) then else alt`
    If {
        /// Branch condition.
        cond: Expr,
        /// Then branch.
        then: Box<Statement>,
        /// Else branch, if present.
        alt: Option<Box<Statement>>,
    },
    /// `while (cond) body`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Statement>,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: Box<Statement>,
        /// Loop condition.
        cond: Expr,
    },
    /// `for (init; cond; update) body`
    For {
        /// Initializer; `None` when omitted.
        init: Option<Box<Statement>>,
        /// Condition; `None` when omitted.
        cond: Option<Expr>,
        /// Update expression; `None` when omitted.
        update: Option<Expr>,
        /// Loop body.
        body: Box<Statement>,
    },
    /// A bare expression statement.
    Expression(Expr),
    /// `uint x = 1;` or `(uint a, uint b) = f();`
    VariableDecl {
        /// Declared slots (one for simple, many for tuple form).
        parts: Vec<VarDeclPart>,
        /// Initializer, if any.
        value: Option<Expr>,
    },
    /// `return expr;`
    Return(Option<Expr>),
    /// `emit Event(args);` — the call expression.
    Emit(Expr),
    /// `revert()` / `revert CustomError(...)` as a statement.
    Revert(Option<Expr>),
    /// legacy `throw;`
    Throw,
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `_;` inside a modifier body — the function-body placeholder.
    ModifierPlaceholder,
    /// `...` — elided code in a snippet.
    Ellipsis,
    /// `unchecked { ... }`
    Unchecked(Block),
    /// `assembly { ... }` — body kept as raw text, not analyzed (§4.5).
    Assembly(String),
    /// `try expr returns (...) { } catch { }` — simplified: the guarded
    /// expression and the flattened handler blocks.
    Try {
        /// Guarded external call expression.
        expr: Expr,
        /// Success block.
        success: Block,
        /// Catch blocks.
        catches: Vec<Block>,
    },
}

/// An expression with its source location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expr {
    /// The expression proper.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl BinOp {
    /// Operator text.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
        }
    }

    /// Whether this operator can arithmetically over- or underflow.
    pub fn can_overflow(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Pow)
    }

    /// Whether this operator is a comparison.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge
        )
    }
}

/// Assignment operators (`=`, `+=`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
    /// `%=`
    ModAssign,
    /// `|=`
    OrAssign,
    /// `&=`
    AndAssign,
    /// `^=`
    XorAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
}

impl AssignOp {
    /// Operator text.
    pub fn as_str(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
            AssignOp::DivAssign => "/=",
            AssignOp::ModAssign => "%=",
            AssignOp::OrAssign => "|=",
            AssignOp::AndAssign => "&=",
            AssignOp::XorAssign => "^=",
            AssignOp::ShlAssign => "<<=",
            AssignOp::ShrAssign => ">>=",
        }
    }

    /// Whether the compound form can arithmetically over- or underflow.
    pub fn can_overflow(self) -> bool {
        matches!(
            self,
            AssignOp::AddAssign | AssignOp::SubAssign | AssignOp::MulAssign
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// `!`
    Not,
    /// `-`
    Neg,
    /// `~`
    BitNot,
    /// `++`
    Inc,
    /// `--`
    Dec,
    /// `delete`
    Delete,
}

impl UnOp {
    /// Operator text.
    pub fn as_str(self) -> &'static str {
        match self {
            UnOp::Not => "!",
            UnOp::Neg => "-",
            UnOp::BitNot => "~",
            UnOp::Inc => "++",
            UnOp::Dec => "--",
            UnOp::Delete => "delete",
        }
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Lit {
    /// Numeric literal with an optional unit suffix (`1 ether`, `30 days`).
    Number {
        /// Digits as written (underscores removed).
        value: Symbol,
        /// Denomination or time unit, if present.
        unit: Option<Symbol>,
    },
    /// String literal.
    Str(Symbol),
    /// `true` / `false`.
    Bool(bool),
    /// `hex"..."` literal.
    Hex(Symbol),
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExprKind {
    /// `lhs op rhs`
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `lhs op= rhs`
    Assign {
        /// Operator.
        op: AssignOp,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// Prefix or postfix unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Whether the operator is prefix (`++x`) or postfix (`x++`).
        prefix: bool,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `cond ? then : alt`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value if true.
        then: Box<Expr>,
        /// Value if false.
        alt: Box<Expr>,
    },
    /// A call `callee{value: v, gas: g}(args)`; the option block is the
    /// paper's `SpecifiedExpression` (§4.2.1).
    Call {
        /// Called expression.
        callee: Box<Expr>,
        /// `{value: .., gas: ..}` options in source order.
        options: Vec<(Symbol, Expr)>,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Argument names for `f({a: 1, b: 2})` named-call syntax, parallel
        /// to `args`; empty for positional calls.
        arg_names: Vec<Symbol>,
    },
    /// `base.member`
    Member {
        /// Base expression.
        base: Box<Expr>,
        /// Member name.
        member: Symbol,
    },
    /// `base[index]`; `index` may be `None` for array type expressions.
    Index {
        /// Base expression.
        base: Box<Expr>,
        /// Index expression.
        index: Option<Box<Expr>>,
    },
    /// A plain identifier reference.
    Ident(Symbol),
    /// A literal.
    Literal(Lit),
    /// `(a, b)` tuple expression, entries may be empty (`(, b)`).
    Tuple(Vec<Option<Expr>>),
    /// `new ContractOrArray`
    New(TypeName),
    /// An elementary type used as an expression, e.g. `address(this)`,
    /// `uint(x)`, `payable(msg.sender)`.
    ElementaryType(Symbol),
    /// `...` placeholder in expression position.
    Ellipsis,
}

impl Expr {
    /// Canonical source form, resolved via the pretty printer. This is what
    /// is stored in the CPG `code` property that queries match against
    /// (e.g. `code = 'msg.sender'`).
    pub fn code(&self) -> String {
        crate::printer::print_expr(self)
    }

    /// [`Expr::code`] as an interned [`Symbol`]. The expression is printed
    /// into a thread-local scratch buffer, so repeated calls on the CPG
    /// build hot path amortize the String allocation away.
    pub fn code_sym(&self) -> Symbol {
        // Leaf fast paths: the printed form of these is a symbol the AST
        // already holds, so skip the print-and-rehash round trip entirely.
        match &self.kind {
            ExprKind::Ident(name) | ExprKind::ElementaryType(name) => return *name,
            ExprKind::Literal(Lit::Number { value, unit: None }) => return *value,
            ExprKind::Literal(Lit::Bool(b)) => {
                return if *b { intern::sym::TRUE } else { intern::sym::FALSE }
            }
            _ => {}
        }
        thread_local! {
            static SCRATCH: std::cell::RefCell<String> =
                const { std::cell::RefCell::new(String::new()) };
        }
        SCRATCH.with(|s| {
            let mut buf = s.borrow_mut();
            buf.clear();
            crate::printer::print_expr_into(self, &mut buf);
            Symbol::intern(&buf)
        })
    }

    /// Whether the expression is exactly the member chain `base.member`
    /// given as dotted text, e.g. `is_member_path("msg.sender")`.
    pub fn is_member_path(&self, path: &str) -> bool {
        self.code() == path
    }

    /// The rightmost name of the expression: for `a.b.c` this is `c`, for a
    /// call it is the callee's local name. Mirrors the CPG `localName`.
    pub fn local_name(&self) -> Option<Symbol> {
        match &self.kind {
            ExprKind::Ident(name) => Some(*name),
            ExprKind::Member { member, .. } => Some(*member),
            ExprKind::Call { callee, .. } => callee.local_name(),
            ExprKind::Index { base, .. } => base.local_name(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(name: &str) -> Expr {
        Expr { kind: ExprKind::Ident(name.into()), span: Span::DUMMY }
    }

    #[test]
    fn local_name_of_member_chain() {
        let e = Expr {
            kind: ExprKind::Member {
                base: Box::new(Expr {
                    kind: ExprKind::Member {
                        base: Box::new(ident("a")),
                        member: "b".into(),
                    },
                    span: Span::DUMMY,
                }),
                member: "c".into(),
            },
            span: Span::DUMMY,
        };
        assert_eq!(e.local_name(), Some(Symbol::intern("c")));
    }

    #[test]
    fn local_name_of_call() {
        let e = Expr {
            kind: ExprKind::Call {
                callee: Box::new(Expr {
                    kind: ExprKind::Member {
                        base: Box::new(ident("lib")),
                        member: "delegatecall".into(),
                    },
                    span: Span::DUMMY,
                }),
                options: vec![],
                args: vec![],
                arg_names: vec![],
            },
            span: Span::DUMMY,
        };
        assert_eq!(e.local_name(), Some(Symbol::intern("delegatecall")));
    }

    #[test]
    fn type_predicates() {
        assert!(TypeName::Elementary("uint256".into()).is_integer());
        assert!(TypeName::Elementary("address payable".into()).is_address());
        assert!(TypeName::Mapping(
            Box::new(TypeName::Elementary("address".into())),
            Box::new(TypeName::Elementary("uint".into()))
        )
        .is_collection());
        assert_eq!(TypeName::Unknown.canonical(), "uint");
    }

    #[test]
    fn overflow_ops() {
        assert!(BinOp::Add.can_overflow());
        assert!(!BinOp::Div.can_overflow());
        assert!(AssignOp::SubAssign.can_overflow());
        assert!(!AssignOp::Assign.can_overflow());
    }
}
