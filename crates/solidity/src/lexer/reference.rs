//! The pre-interning lexer, preserved verbatim as a differential-testing
//! oracle.
//!
//! This is the `String`-allocating, line/column-tracking implementation the
//! interned lexer in the parent module replaced. It is kept (not compiled
//! out) so property tests can assert that the rebuilt lexer produces the
//! same token text sequence, the same byte spans, the same newline flags
//! and — via [`intern::LineIndex`] — the same line/column positions on
//! arbitrary inputs. It is not part of the supported API.

#![doc(hidden)]

use crate::token::Keyword;

/// A span as the old lexer produced it: byte offsets plus the 1-based
/// line/column of the start, tracked per byte while lexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefSpan {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based byte column of `start`.
    pub col: u32,
}

/// Token kinds with owned `String` payloads, as lexed before interning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefTokenKind {
    /// Identifier or non-reserved word.
    Ident(String),
    /// Reserved keyword.
    Keyword(Keyword),
    /// Number literal (underscores stripped).
    Number(String),
    /// String literal, quotes stripped, escapes decoded.
    Str(String),
    /// Hex string literal, quotes stripped.
    HexStr(String),
    /// Punctuation or operator.
    Punct(&'static str),
    /// `...` / `…` placeholder.
    Ellipsis,
    /// End of input.
    Eof,
}

impl RefTokenKind {
    /// The textual form of the token, as `TokenKind::text` produced it
    /// before the rebuild.
    pub fn text(&self) -> String {
        match self {
            RefTokenKind::Ident(s) => s.clone(),
            RefTokenKind::Keyword(k) => k.as_str().to_string(),
            RefTokenKind::Number(s) => s.clone(),
            RefTokenKind::Str(s) => format!("\"{s}\""),
            RefTokenKind::HexStr(s) => format!("hex\"{s}\""),
            RefTokenKind::Punct(p) => (*p).to_string(),
            RefTokenKind::Ellipsis => "...".to_string(),
            RefTokenKind::Eof => String::new(),
        }
    }
}

/// A token as the old lexer produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefToken {
    /// What was lexed.
    pub kind: RefTokenKind,
    /// Where it was lexed from.
    pub span: RefSpan,
    /// Whether a newline separates this token from the previous one.
    pub newline_before: bool,
}

const PUNCTS: &[&str] = &[
    ">>>=", "<<=", ">>=", "**=", "...", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=",
    "*=", "/=", "%=", "|=", "&=", "^=", "=>", "->", "++", "--", "**", "<<", ">>", "(",
    ")", "{", "}", "[", "]", ";", ",", ".", "?", ":", "=", "+", "-", "*", "/", "%", "!",
    "<", ">", "&", "|", "^", "~",
];

/// Tokenize `src` with the pre-interning algorithm. Infallible in practice,
/// exactly like the old `lex` was.
pub fn lex(src: &str) -> Vec<RefToken> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    newline_pending: bool,
    tokens: Vec<RefToken>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            newline_pending: false,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<RefToken> {
        while self.pos < self.bytes.len() {
            self.skip_trivia();
            if self.pos >= self.bytes.len() {
                break;
            }
            self.next_token();
        }
        let span =
            RefSpan { start: self.pos, end: self.pos, line: self.line, col: self.col };
        self.push(RefTokenKind::Eof, span);
        self.tokens
    }

    fn peek(&self) -> u8 {
        self.bytes.get(self.pos).copied().unwrap_or(0)
    }

    fn peek_at(&self, offset: usize) -> u8 {
        self.bytes.get(self.pos + offset).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.newline_pending = true;
        } else {
            self.col += 1;
        }
        b
    }

    fn push(&mut self, kind: RefTokenKind, span: RefSpan) {
        let newline_before = std::mem::take(&mut self.newline_pending);
        self.tokens.push(RefToken { kind, span, newline_before });
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == b'/' => {
                    while self.pos < self.bytes.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek_at(1) == b'*' => {
                    self.bump();
                    self.bump();
                    while self.pos < self.bytes.len() {
                        if self.peek() == b'*' && self.peek_at(1) == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                0xE2 if self.peek_at(1) == 0x80 && self.peek_at(2) == 0xA6 => {
                    let start = self.pos;
                    let (line, col) = (self.line, self.col);
                    self.pos += 3;
                    self.col += 1;
                    let span = RefSpan { start, end: self.pos, line, col };
                    self.push(RefTokenKind::Ellipsis, span);
                }
                b if b >= 0x80 => {
                    self.bump();
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        let b = self.peek();

        if b.is_ascii_alphabetic() || b == b'_' || b == b'$' {
            self.lex_word(start, line, col);
            return;
        }
        if b.is_ascii_digit() {
            self.lex_number(start, line, col);
            return;
        }
        if b == b'"' || b == b'\'' {
            self.lex_string(start, line, col);
            return;
        }

        for punct in PUNCTS {
            if self.src[self.pos..].starts_with(punct) {
                for _ in 0..punct.len() {
                    self.bump();
                }
                let span = RefSpan { start, end: self.pos, line, col };
                if *punct == "..." {
                    self.push(RefTokenKind::Ellipsis, span);
                } else {
                    self.push(RefTokenKind::Punct(punct), span);
                }
                return;
            }
        }

        self.bump();
    }

    fn lex_word(&mut self, start: usize, line: u32, col: u32) {
        while {
            let b = self.peek();
            b.is_ascii_alphanumeric() || b == b'_' || b == b'$'
        } {
            self.bump();
        }
        let word = &self.src[start..self.pos];

        if word == "hex" && (self.peek() == b'"' || self.peek() == b'\'') {
            let quote = self.bump();
            let content_start = self.pos;
            while self.pos < self.bytes.len() && self.peek() != quote && self.peek() != b'\n'
            {
                self.bump();
            }
            let content = self.src[content_start..self.pos].to_string();
            if self.peek() == quote {
                self.bump();
            }
            let span = RefSpan { start, end: self.pos, line, col };
            self.push(RefTokenKind::HexStr(content), span);
            return;
        }

        let span = RefSpan { start, end: self.pos, line, col };
        match Keyword::from_str(word) {
            Some(kw) => self.push(RefTokenKind::Keyword(kw), span),
            None => self.push(RefTokenKind::Ident(word.to_string()), span),
        }
    }

    fn lex_number(&mut self, start: usize, line: u32, col: u32) {
        if self.peek() == b'0' && (self.peek_at(1) | 0x20) == b'x' {
            self.bump();
            self.bump();
            while self.peek().is_ascii_hexdigit() || self.peek() == b'_' {
                self.bump();
            }
        } else {
            while self.peek().is_ascii_digit() || self.peek() == b'_' {
                self.bump();
            }
            if self.peek() == b'.' && self.peek_at(1).is_ascii_digit() {
                self.bump();
                while self.peek().is_ascii_digit() || self.peek() == b'_' {
                    self.bump();
                }
            }
            if (self.peek() | 0x20) == b'e'
                && (self.peek_at(1).is_ascii_digit()
                    || (self.peek_at(1) == b'-' && self.peek_at(2).is_ascii_digit()))
            {
                self.bump();
                if self.peek() == b'-' {
                    self.bump();
                }
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            }
        }
        let span = RefSpan { start, end: self.pos, line, col };
        let text = self.src[start..self.pos].replace('_', "");
        self.push(RefTokenKind::Number(text), span);
    }

    fn lex_string(&mut self, start: usize, line: u32, col: u32) {
        let quote = self.bump();
        let mut content = String::new();
        while self.pos < self.bytes.len() {
            let b = self.peek();
            if b == quote {
                self.bump();
                break;
            }
            if b == b'\n' {
                break;
            }
            if b == b'\\' {
                self.bump();
                let escaped = self.bump();
                content.push(match escaped {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'0' => '\0',
                    other => other as char,
                });
                continue;
            }
            content.push(self.bump() as char);
        }
        let span = RefSpan { start, end: self.pos, line, col };
        self.push(RefTokenKind::Str(content), span);
    }
}
