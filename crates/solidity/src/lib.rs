//! Snippet-tolerant Solidity front-end.
//!
//! This crate provides a lexer, a recursive-descent parser and an abstract
//! syntax tree for the Solidity smart-contract language. Unlike the official
//! grammar, the parser is designed to accept *incomplete* code snippets as
//! they appear on Q&A websites such as Stack Overflow and the Ethereum Stack
//! Exchange (cf. §4.1 of the paper):
//!
//! * **Unnesting of hierarchy** — contracts, functions, modifiers, events,
//!   state variables and bare statements may all appear at the top level of a
//!   source unit, so a snippet copied from inside a contract body parses.
//! * **Statement termination** — a missing `;` is tolerated when a newline
//!   (or a closing brace / end of input) terminates the statement.
//! * **Placeholders** — the ellipsis `...` (and `…`) frequently used in
//!   snippets to elide code is tokenized and parsed as a placeholder
//!   statement/expression instead of a syntax error.
//!
//! The entry points are [`parse_source`] for strict(ish) full sources and
//! [`parse_snippet`] for tolerant snippet parsing. Both return a
//! [`ast::SourceUnit`].
//!
//! ```
//! // A bare function with a missing semicolon and a placeholder parses:
//! let unit = solidity::parse_snippet(
//!     "function pay(address to) {\n to.transfer(1 ether)\n ... \n}",
//! ).unwrap();
//! assert_eq!(unit.items.len(), 1);
//! ```


#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;
pub mod visitor;

pub use ast::SourceUnit;
pub use error::AnalysisError;
pub use parser::{parse_snippet, parse_source, ParseError, ParserOptions};
pub use span::Span;

/// Classification of what a parsed snippet contains at its top level,
/// mirroring the composition statistics reported in §6.1 of the paper
/// (contract definitions vs. only functions vs. only statements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SnippetLevel {
    /// At least one contract / interface / library definition.
    Contract,
    /// No contract, but at least one function or modifier definition.
    Function,
    /// Only statements, expressions or declarations.
    Statement,
}

impl SourceUnit {
    /// Classify the hierarchy level of this source unit (cf. §6.1).
    pub fn snippet_level(&self) -> SnippetLevel {
        use ast::SourceItem;
        let mut has_fn = false;
        for item in &self.items {
            match item {
                SourceItem::Contract(_) => return SnippetLevel::Contract,
                SourceItem::Function(_) | SourceItem::Modifier(_) => has_fn = true,
                _ => {}
            }
        }
        if has_fn {
            SnippetLevel::Function
        } else {
            SnippetLevel::Statement
        }
    }
}
