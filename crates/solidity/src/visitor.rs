//! Generic AST traversal.
//!
//! [`Visit`] walks the tree in source order, calling the overridable hooks
//! before descending. The default implementations recurse, so an
//! implementation only overrides what it cares about and calls the `walk_*`
//! functions to continue.

use crate::ast::*;

/// An AST visitor. All hooks default to plain recursion.
pub trait Visit {
    /// Called for every source item.
    fn visit_item(&mut self, item: &SourceItem) {
        walk_item(self, item);
    }
    /// Called for every contract definition.
    fn visit_contract(&mut self, contract: &ContractDef) {
        walk_contract(self, contract);
    }
    /// Called for every function definition.
    fn visit_function(&mut self, function: &FunctionDef) {
        walk_function(self, function);
    }
    /// Called for every modifier definition.
    fn visit_modifier(&mut self, modifier: &ModifierDef) {
        walk_modifier(self, modifier);
    }
    /// Called for every state variable.
    fn visit_state_var(&mut self, var: &StateVarDecl) {
        walk_state_var(self, var);
    }
    /// Called for every statement.
    fn visit_stmt(&mut self, stmt: &Statement) {
        walk_stmt(self, stmt);
    }
    /// Called for every expression.
    fn visit_expr(&mut self, expr: &Expr) {
        walk_expr(self, expr);
    }
}

/// Walk a whole source unit.
pub fn walk_unit<V: Visit + ?Sized>(v: &mut V, unit: &SourceUnit) {
    for item in &unit.items {
        v.visit_item(item);
    }
}

/// Default recursion for a source item.
pub fn walk_item<V: Visit + ?Sized>(v: &mut V, item: &SourceItem) {
    match item {
        SourceItem::Contract(c) => v.visit_contract(c),
        SourceItem::Function(f) => v.visit_function(f),
        SourceItem::Modifier(m) => v.visit_modifier(m),
        SourceItem::Variable(var) => v.visit_state_var(var),
        SourceItem::Statement(s) => v.visit_stmt(s),
        SourceItem::Pragma(_)
        | SourceItem::Import(_)
        | SourceItem::Struct(_)
        | SourceItem::Enum(_)
        | SourceItem::Event(_)
        | SourceItem::ErrorDef(_)
        | SourceItem::UsingFor(_) => {}
    }
}

/// Default recursion for a contract.
pub fn walk_contract<V: Visit + ?Sized>(v: &mut V, contract: &ContractDef) {
    for base in &contract.bases {
        for arg in &base.args {
            v.visit_expr(arg);
        }
    }
    for part in &contract.parts {
        match part {
            ContractPart::Variable(var) => v.visit_state_var(var),
            ContractPart::Function(f) => v.visit_function(f),
            ContractPart::Modifier(m) => v.visit_modifier(m),
            ContractPart::Struct(_)
            | ContractPart::Enum(_)
            | ContractPart::Event(_)
            | ContractPart::ErrorDef(_)
            | ContractPart::UsingFor(_)
            | ContractPart::Placeholder(_) => {}
        }
    }
}

/// Default recursion for a function.
pub fn walk_function<V: Visit + ?Sized>(v: &mut V, function: &FunctionDef) {
    for m in &function.modifiers {
        for arg in &m.args {
            v.visit_expr(arg);
        }
    }
    if let Some(body) = &function.body {
        for s in &body.statements {
            v.visit_stmt(s);
        }
    }
}

/// Default recursion for a modifier.
pub fn walk_modifier<V: Visit + ?Sized>(v: &mut V, modifier: &ModifierDef) {
    if let Some(body) = &modifier.body {
        for s in &body.statements {
            v.visit_stmt(s);
        }
    }
}

/// Default recursion for a state variable.
pub fn walk_state_var<V: Visit + ?Sized>(v: &mut V, var: &StateVarDecl) {
    if let Some(init) = &var.initializer {
        v.visit_expr(init);
    }
}

/// Default recursion for a statement.
pub fn walk_stmt<V: Visit + ?Sized>(v: &mut V, stmt: &Statement) {
    match &stmt.kind {
        StatementKind::Block(b) | StatementKind::Unchecked(b) => {
            for s in &b.statements {
                v.visit_stmt(s);
            }
        }
        StatementKind::If { cond, then, alt } => {
            v.visit_expr(cond);
            v.visit_stmt(then);
            if let Some(alt) = alt {
                v.visit_stmt(alt);
            }
        }
        StatementKind::While { cond, body } => {
            v.visit_expr(cond);
            v.visit_stmt(body);
        }
        StatementKind::DoWhile { body, cond } => {
            v.visit_stmt(body);
            v.visit_expr(cond);
        }
        StatementKind::For { init, cond, update, body } => {
            if let Some(init) = init {
                v.visit_stmt(init);
            }
            if let Some(cond) = cond {
                v.visit_expr(cond);
            }
            if let Some(update) = update {
                v.visit_expr(update);
            }
            v.visit_stmt(body);
        }
        StatementKind::Expression(e) | StatementKind::Emit(e) => v.visit_expr(e),
        StatementKind::VariableDecl { value, .. } => {
            if let Some(value) = value {
                v.visit_expr(value);
            }
        }
        StatementKind::Return(value) | StatementKind::Revert(value) => {
            if let Some(value) = value {
                v.visit_expr(value);
            }
        }
        StatementKind::Try { expr, success, catches } => {
            v.visit_expr(expr);
            for s in &success.statements {
                v.visit_stmt(s);
            }
            for c in catches {
                for s in &c.statements {
                    v.visit_stmt(s);
                }
            }
        }
        StatementKind::Throw
        | StatementKind::Break
        | StatementKind::Continue
        | StatementKind::ModifierPlaceholder
        | StatementKind::Ellipsis
        | StatementKind::Assembly(_) => {}
    }
}

/// Default recursion for an expression.
pub fn walk_expr<V: Visit + ?Sized>(v: &mut V, expr: &Expr) {
    match &expr.kind {
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        ExprKind::Unary { operand, .. } => v.visit_expr(operand),
        ExprKind::Ternary { cond, then, alt } => {
            v.visit_expr(cond);
            v.visit_expr(then);
            v.visit_expr(alt);
        }
        ExprKind::Call { callee, options, args, .. } => {
            v.visit_expr(callee);
            for (_, option) in options {
                v.visit_expr(option);
            }
            for arg in args {
                v.visit_expr(arg);
            }
        }
        ExprKind::Member { base, .. } => v.visit_expr(base),
        ExprKind::Index { base, index } => {
            v.visit_expr(base);
            if let Some(index) = index {
                v.visit_expr(index);
            }
        }
        ExprKind::Tuple(entries) => {
            for entry in entries.iter().flatten() {
                v.visit_expr(entry);
            }
        }
        ExprKind::Ident(_)
        | ExprKind::Literal(_)
        | ExprKind::New(_)
        | ExprKind::ElementaryType(_)
        | ExprKind::Ellipsis => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_snippet;

    struct Counter {
        exprs: usize,
        stmts: usize,
        calls: usize,
    }

    impl Visit for Counter {
        fn visit_stmt(&mut self, stmt: &Statement) {
            self.stmts += 1;
            walk_stmt(self, stmt);
        }
        fn visit_expr(&mut self, expr: &Expr) {
            self.exprs += 1;
            if matches!(expr.kind, ExprKind::Call { .. }) {
                self.calls += 1;
            }
            walk_expr(self, expr);
        }
    }

    #[test]
    fn visitor_counts_nodes() {
        let unit = parse_snippet(
            "function f() public { require(msg.sender == owner); msg.sender.transfer(1); }",
        )
        .unwrap();
        let mut c = Counter { exprs: 0, stmts: 0, calls: 0 };
        walk_unit(&mut c, &unit);
        assert_eq!(c.stmts, 2);
        assert_eq!(c.calls, 2);
        assert!(c.exprs >= 8);
    }

    #[test]
    fn visitor_reaches_nested_loops() {
        let unit = parse_snippet(
            "function f(uint n) public { for (uint i = 0; i < n; i++) { if (i % 2 == 0) { g(i); } } }",
        )
        .unwrap();
        let mut c = Counter { exprs: 0, stmts: 0, calls: 0 };
        walk_unit(&mut c, &unit);
        assert_eq!(c.calls, 1);
        assert!(c.stmts >= 4);
    }
}
