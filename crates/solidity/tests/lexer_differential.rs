//! Differential property tests: the interned lexer against the preserved
//! pre-interning oracle (`solidity::lexer::reference`).
//!
//! The rebuilt lexer replaced owned `String` payloads with `Symbol`s and
//! per-byte line/column tracking with offset-only spans resolved through
//! [`intern::LineIndex`]. These tests assert, on arbitrary generated
//! inputs, that the two implementations agree on the token text sequence,
//! the byte spans, the newline flags, and the line/column positions.

use intern::LineIndex;
use proptest::prelude::*;
use solidity::lexer::{lex, reference};

/// Fragments the generator splices together: representative Solidity
/// syntax, every token class, comment forms, escapes, underscored and
/// scientific numbers, and multi-byte UTF-8 (including the `…` ellipsis
/// and a stray non-ASCII char the lexer must skip).
const FRAGMENTS: &[&str] = &[
    "contract C {",
    "}",
    "function transfer(address to, uint256 amount) public returns (bool)",
    "mapping(address => uint) balances;",
    "msg.sender.call{value: amount}(\"\")",
    "require(balances[msg.sender] >= amount, \"insufficient\");",
    "balances[to] += amount;",
    "pragma solidity ^0.8.0;",
    "uint x = 1_000_000;",
    "x = 2e10 + 0xDEAD_BEEF;",
    "y = 1.5e3;",
    "// line comment\n",
    "/* block\ncomment */",
    "hex\"deadbeef\"",
    "\"escaped\\n\\t\\\"quote\\\"\"",
    "'single'",
    "a >>>= b; c <<= d; e **= f;",
    "…",
    "...",
    "owner = msg.sender;",
    "emit Transfer(from, to, value);",
    "\n\n",
    "\t ",
    "é",
    "δx",
    "_ $dollar _under9",
    "if (x != y) { x++; } else { --y; }",
];

fn source_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..FRAGMENTS.len(), 0..40).prop_map(|picks| {
        let mut src = String::new();
        for (i, pick) in picks.iter().enumerate() {
            if i > 0 {
                src.push(if i % 3 == 0 { '\n' } else { ' ' });
            }
            src.push_str(FRAGMENTS[*pick]);
        }
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Token-by-token equivalence of the interned lexer and the oracle.
    #[test]
    fn interned_lexer_matches_reference(src in source_strategy()) {
        let new_tokens = lex(&src).expect("interned lexer failed on generated input");
        let ref_tokens = reference::lex(&src);
        prop_assert_eq!(
            new_tokens.len(),
            ref_tokens.len(),
            "token count diverged on {:?}",
            &src
        );

        let index = LineIndex::new(&src);
        for (new, old) in new_tokens.iter().zip(&ref_tokens) {
            // Same text and same token class.
            prop_assert_eq!(
                new.kind.text().as_ref(),
                old.kind.text().as_str(),
                "text diverged on {:?}",
                &src
            );
            prop_assert_eq!(
                kind_tag(&new.kind),
                ref_kind_tag(&old.kind),
                "kind diverged on {:?}",
                &src
            );
            // Same byte span (u32 offsets vs the oracle's usize).
            prop_assert_eq!(new.span.start as usize, old.span.start);
            prop_assert_eq!(new.span.end as usize, old.span.end);
            // Same statement-termination layout flag.
            prop_assert_eq!(new.newline_before, old.newline_before);
            // LineIndex reproduces the oracle's per-byte line/col tracking.
            // One documented divergence: the oracle advanced its column by 1
            // for the 3-byte `…` ellipsis while counting every other
            // multi-byte char per byte; LineIndex reports uniform byte
            // columns. Skip the column check when an ellipsis precedes the
            // token on its line.
            let (line, col) = index.line_col(new.span.start);
            prop_assert_eq!(line, old.span.line, "line diverged on {:?}", &src);
            let line_start = src[..new.span.start as usize]
                .rfind('\n')
                .map(|i| i + 1)
                .unwrap_or(0);
            if !src[line_start..new.span.start as usize].contains('…') {
                prop_assert_eq!(col, old.span.col, "col diverged on {:?}", &src);
            }
        }
    }

    /// The interned lexer never fails, matching the oracle's infallibility,
    /// even on raw near-arbitrary ASCII-plus-unicode soup.
    #[test]
    fn interned_lexer_never_fails(raw in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..12)) {
        let src: String = raw.iter().map(|i| FRAGMENTS[*i]).collect::<Vec<_>>().concat();
        let tokens = lex(&src).expect("lex failed");
        prop_assert!(!tokens.is_empty()); // at least Eof
    }
}

fn kind_tag(kind: &solidity::token::TokenKind) -> u8 {
    use solidity::token::TokenKind::*;
    match kind {
        Ident(_) => 0,
        Keyword(_) => 1,
        Number(_) => 2,
        Str(_) => 3,
        HexStr(_) => 4,
        Punct(_) => 5,
        Ellipsis => 6,
        Eof => 7,
    }
}

fn ref_kind_tag(kind: &reference::RefTokenKind) -> u8 {
    use reference::RefTokenKind::*;
    match kind {
        Ident(_) => 0,
        Keyword(_) => 1,
        Number(_) => 2,
        Str(_) => 3,
        HexStr(_) => 4,
        Punct(_) => 5,
        Ellipsis => 6,
        Eof => 7,
    }
}
