//! End-to-end tests of the analysis daemon over real sockets.

use pipeline::api::{AnalysisConfig, AnalysisEngine, AnalysisRequest, AnalysisResponse};
use server::{client, Server, ServerConfig, ShutdownHandle};
use std::sync::Arc;

const VULNERABLE: &str = "function f(address to) public { to.send(1); }";
const CORPUS_CONTRACT: &str = "contract Wallet { \
    function takeOut(uint amount) public { msg.sender.transfer(amount); } }";

fn start(
    config: ServerConfig,
    engine: AnalysisEngine,
) -> (String, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config, Arc::new(engine)).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn default_engine() -> AnalysisEngine {
    AnalysisEngine::with_corpus(AnalysisConfig::default(), [(1u64, CORPUS_CONTRACT)])
}

#[test]
fn scan_over_http_is_byte_identical_to_batch() {
    let (addr, handle, join) = start(ServerConfig::default(), default_engine());
    let request = AnalysisRequest::scan(VULNERABLE);
    let (status, body) = client::post(&addr, "/v1/scan", &request.to_json()).expect("scan");
    assert_eq!(status, 200);

    // The batch path: same facade, same engine configuration.
    let batch_engine = default_engine();
    let batch_body = batch_engine.analyze(&request).expect("batch analyze").to_json();
    assert_eq!(body, batch_body, "service and batch JSON must be byte-identical");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn clone_check_over_http_matches_warm_corpus() {
    let (addr, handle, join) = start(ServerConfig::default(), default_engine());
    let query = "contract Unsafe { \
        function unsafeWithdraw(uint value) public { msg.sender.transfer(value); } }";
    let request = AnalysisRequest::clone_check(query);
    let (status, body) = client::post(&addr, "/v1/clone-check", &request.to_json()).unwrap();
    assert_eq!(status, 200);
    match AnalysisResponse::from_json(&body).expect("decodes") {
        AnalysisResponse::Clones(hits) => {
            assert_eq!(hits[0].doc, 1);
            assert_eq!(hits[0].score, 100.0);
        }
        other => panic!("expected clones, got {other:?}"),
    }
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn serves_64_concurrent_requests() {
    let config = ServerConfig { queue_capacity: 256, ..ServerConfig::default() };
    let (addr, handle, join) = start(config, default_engine());
    let body = AnalysisRequest::scan(VULNERABLE).to_json();
    let expected = {
        let engine = default_engine();
        engine.analyze(&AnalysisRequest::scan(VULNERABLE)).unwrap().to_json()
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..64)
            .map(|_| {
                scope.spawn(|| client::post(&addr, "/v1/scan", &body).expect("request"))
            })
            .collect();
        for h in handles {
            let (status, response) = h.join().expect("client thread");
            assert_eq!(status, 200);
            assert_eq!(response, expected, "all concurrent responses byte-identical");
        }
    });
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn sheds_load_with_429_past_the_queue_bound() {
    // One worker, queue of one: concurrent expensive scans must overflow.
    let config = ServerConfig { workers: 1, queue_capacity: 1, ..ServerConfig::default() };
    let expensive = format!(
        "contract C {{ {} }}",
        "function f(uint a) public { total += a; msg.sender.call{value: a}(\"\"); } "
            .repeat(60)
    );
    let (addr, handle, join) = start(config, AnalysisEngine::new(AnalysisConfig::default()));
    let body = AnalysisRequest::scan(expensive).to_json();
    let statuses: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..24)
            .map(|_| scope.spawn(|| client::post(&addr, "/v1/scan", &body).map(|(s, _)| s)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread").unwrap_or(0))
            .collect()
    });
    assert!(
        statuses.iter().any(|s| *s == 429),
        "no request was shed: {statuses:?}"
    );
    assert!(
        statuses.iter().any(|s| *s == 200),
        "no request succeeded: {statuses:?}"
    );
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn timeout_maps_to_504() {
    let engine = AnalysisEngine::new(AnalysisConfig::default().with_timeout_ms(0));
    let (addr, handle, join) = start(ServerConfig::default(), engine);
    let (status, body) = client::post(
        &addr,
        "/v1/scan",
        &AnalysisRequest::scan(VULNERABLE).to_json(),
    )
    .unwrap();
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("\"code\":\"timeout\""), "{body}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn error_paths_over_http() {
    let (addr, handle, join) = start(ServerConfig::default(), default_engine());
    // Malformed JSON body.
    let (status, body) = client::post(&addr, "/v1/scan", "{oops").unwrap();
    assert_eq!(status, 400, "{body}");
    // Unknown detector name.
    let bad = "{\"v\":1,\"kind\":\"scan\",\"source\":\"x = 1;\",\"detectors\":[\"Nope\"]}";
    let (status, body) = client::post(&addr, "/v1/scan", bad).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"query\""), "{body}");
    // Zero-length clone-check source.
    let empty = AnalysisRequest::clone_check("").to_json();
    let (status, body) = client::post(&addr, "/v1/clone-check", &empty).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("\"code\":\"invalid_request\""), "{body}");
    // Unknown endpoint.
    let (status, _) = client::get(&addr, "/nope").unwrap();
    assert_eq!(status, 404);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let (addr, _handle, join) = start(ServerConfig::default(), default_engine());
    let (status, body) = client::post(&addr, "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("shutting_down"));
    // run() must return on its own — no handle.shutdown() here.
    join.join().unwrap();
}

#[test]
fn telemetry_endpoint_serves_the_report_schema() {
    let (addr, handle, join) = start(ServerConfig::default(), default_engine());
    let (status, body) = client::get(&addr, "/telemetry").unwrap();
    assert_eq!(status, 200);
    let parsed = telemetry::json::parse(&body).expect("telemetry JSON parses");
    assert!(parsed.get("version").is_some());
    handle.shutdown();
    join.join().unwrap();
}
