//! Transport-level tests of the sharded reactor: incremental parsing
//! across arbitrary read boundaries, HTTP/1.1 keep-alive and
//! pipelining, slow-client (slowloris) eviction, and the bounded
//! in-flight pipeline depth. Everything here talks raw sockets so the
//! byte-level framing is what is actually asserted.

use pipeline::api::{AnalysisConfig, AnalysisEngine, AnalysisRequest};
use server::{client, Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const VULNERABLE: &str = "function f(address to) public { to.send(1); }";
const CORPUS_CONTRACT: &str = "contract Wallet { \
    function takeOut(uint amount) public { msg.sender.transfer(amount); } }";

fn start(config: ServerConfig) -> (String, ShutdownHandle, std::thread::JoinHandle<()>) {
    let engine = AnalysisEngine::with_corpus(AnalysisConfig::default(), [(1u64, CORPUS_CONTRACT)]);
    let server = Server::bind("127.0.0.1:0", config, Arc::new(engine)).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

/// A scan request plus a health request, as one keep-alive byte stream.
fn pipelined_pair() -> Vec<u8> {
    let body = AnalysisRequest::scan(VULNERABLE).to_json();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(
        format!(
            "POST /v1/scan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    );
    bytes.extend_from_slice(b"GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    bytes
}

/// Read until EOF and split the stream into individual HTTP responses
/// by `Content-Length` framing; returns their status codes and bodies.
fn read_responses(stream: &mut TcpStream) -> Vec<(u16, String)> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read responses");
    split_responses(&raw)
}

fn split_responses(mut raw: &[u8]) -> Vec<(u16, String)> {
    let mut out = Vec::new();
    while !raw.is_empty() {
        let head_end = raw
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("response head terminator")
            + 4;
        let head = std::str::from_utf8(&raw[..head_end]).expect("ASCII head");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let length: usize = head
            .lines()
            .find_map(|line| {
                let (name, value) = line.split_once(':')?;
                name.eq_ignore_ascii_case("content-length").then(|| value.trim().parse().ok())?
            })
            .expect("Content-Length header");
        let body = String::from_utf8_lossy(&raw[head_end..head_end + length]).into_owned();
        out.push((status, body));
        raw = &raw[head_end + length..];
    }
    out
}

/// Both responses must come back whole and in order no matter where the
/// request byte stream is cut — every split point of the pipelined pair
/// is exercised against one live server.
#[test]
fn requests_split_at_every_byte_parse_whole() {
    let (addr, handle, join) = start(ServerConfig::default());
    let bytes = pipelined_pair();
    // Every-byte coverage on a short prefix window is where the parser
    // state machine lives (request line + headers); past the head the
    // remaining splits land in the body and are sampled more coarsely.
    let splits: Vec<usize> =
        (1..bytes.len()).filter(|&at| at <= 96 || at % 7 == 0 || at + 4 >= bytes.len()).collect();
    for at in splits {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&bytes[..at]).expect("first fragment");
        stream.flush().unwrap();
        // Give the reactor a chance to consume the partial request
        // before the rest arrives.
        std::thread::sleep(Duration::from_millis(1));
        stream.write_all(&bytes[at..]).expect("second fragment");
        stream.flush().unwrap();
        let responses = read_responses(&mut stream);
        assert_eq!(responses.len(), 2, "split at byte {at}");
        assert_eq!(responses[0].0, 200, "scan after split at byte {at}: {}", responses[0].1);
        assert_eq!(responses[1].0, 200, "health after split at byte {at}");
    }
    handle.shutdown();
    join.join().unwrap();
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig { cases: 16, ..Default::default() })]

    /// Random multi-way fragmentation: the pair of requests arrives in
    /// arbitrary chunks and must still produce exactly two in-order
    /// responses.
    #[test]
    fn randomly_fragmented_requests_parse_whole(cuts in proptest::collection::vec(0.0f64..1.0, 1..6)) {
        let (addr, handle, join) = start(ServerConfig::default());
        let bytes = pipelined_pair();
        let mut at: Vec<usize> =
            cuts.iter().map(|f| 1 + ((bytes.len() - 2) as f64 * f) as usize).collect();
        at.sort_unstable();
        at.dedup();
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut prev = 0;
        for &cut in at.iter().chain(std::iter::once(&bytes.len())) {
            stream.write_all(&bytes[prev..cut]).expect("fragment");
            stream.flush().unwrap();
            prev = cut;
        }
        let responses = read_responses(&mut stream);
        proptest::prop_assert_eq!(responses.len(), 2);
        proptest::prop_assert_eq!(responses[0].0, 200);
        proptest::prop_assert_eq!(responses[1].0, 200);
        handle.shutdown();
        join.join().unwrap();
    }
}

/// A burst of pipelined requests written as one segment comes back as
/// distinct, in-order responses on the same connection.
#[test]
fn pipelined_burst_in_one_segment_answers_in_order() {
    let (addr, handle, join) = start(ServerConfig::default());
    let mut bytes = Vec::new();
    for i in 0..8 {
        let path = if i % 2 == 0 { "/health" } else { "/metrics" };
        bytes.extend_from_slice(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes());
    }
    bytes.extend_from_slice(b"GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(&bytes).unwrap();
    stream.flush().unwrap();
    let responses = read_responses(&mut stream);
    assert_eq!(responses.len(), 9);
    for (i, (status, body)) in responses.iter().enumerate() {
        assert_eq!(*status, 200, "response {i}");
        let expect_health = i == 8 || i % 2 == 0;
        assert_eq!(
            body.contains("\"status\":\"ok\""),
            expect_health,
            "response {i} out of order: {body}"
        );
    }
    handle.shutdown();
    join.join().unwrap();
}

/// A pipelined burst deeper than `max_pipeline` must still answer every
/// request — the reactor stops reading while the in-flight window is
/// full and resumes as responses drain, rather than dropping requests.
#[test]
fn burst_past_the_pipeline_cap_still_answers_everything() {
    let config = ServerConfig { max_pipeline: 4, ..ServerConfig::default() };
    let (addr, handle, join) = start(config);
    let mut bytes = Vec::new();
    for _ in 0..15 {
        bytes.extend_from_slice(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
    }
    bytes.extend_from_slice(b"GET /health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(&bytes).unwrap();
    stream.flush().unwrap();
    let responses = read_responses(&mut stream);
    assert_eq!(responses.len(), 16, "all pipelined requests answered despite cap 4");
    assert!(responses.iter().all(|(status, _)| *status == 200));
    handle.shutdown();
    join.join().unwrap();
}

/// A client that trickles header bytes and then stalls gets a 408 and a
/// closed connection once the read deadline passes — the shard keeps
/// serving other connections instead of hanging.
#[test]
fn slowloris_header_trickle_gets_408_and_close() {
    let config = ServerConfig { read_timeout_ms: 150, ..ServerConfig::default() };
    let (addr, handle, join) = start(config);
    let mut slow = TcpStream::connect(&addr).expect("connect");
    slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    slow.write_all(b"GET /health HTTP/1.1\r\nX-Slow").unwrap();
    slow.flush().unwrap();

    // While the slow client stalls, a healthy one is still served.
    let (status, _) = client::get(&addr, "/health").expect("healthy client");
    assert_eq!(status, 200);

    let responses = read_responses(&mut slow);
    assert_eq!(responses.len(), 1, "exactly one timeout response then EOF");
    assert_eq!(responses[0].0, 408, "stalled header read must time out: {}", responses[0].1);
    assert!(responses[0].1.contains("timeout"), "body carries the typed code: {}", responses[0].1);

    handle.shutdown();
    join.join().unwrap();
}

/// An idle keep-alive connection (no partial request buffered) is not
/// subject to the read deadline; it survives quietly between requests.
#[test]
fn idle_keep_alive_connection_outlives_the_read_deadline() {
    let config = ServerConfig { read_timeout_ms: 100, ..ServerConfig::default() };
    let (addr, handle, join) = start(config);
    let mut conn = client::Connection::new(&addr);
    assert_eq!(conn.get("/health").expect("first request").0, 200);
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(conn.get("/health").expect("after idling past deadline").0, 200);
    handle.shutdown();
    join.join().unwrap();
}

/// The keep-alive client reuses its socket across sequential requests
/// against the real daemon, and responses match the connect-per-request
/// path byte for byte.
#[test]
fn keep_alive_client_matches_connection_close_responses() {
    let (addr, handle, join) = start(ServerConfig::default());
    let body = AnalysisRequest::scan(VULNERABLE).to_json();
    let (status, oneshot) = client::post(&addr, "/v1/scan", &body).expect("oneshot");
    assert_eq!(status, 200);
    let mut conn = client::Connection::new(&addr);
    for _ in 0..3 {
        let (status, kept) = conn.post("/v1/scan", &body).expect("keep-alive request");
        assert_eq!(status, 200);
        assert_eq!(kept, oneshot, "keep-alive and close responses byte-identical");
    }
    handle.shutdown();
    join.join().unwrap();
}

/// Graceful drain closes keep-alive connections: responses issued
/// during shutdown carry `Connection: close` and the socket ends.
#[test]
fn drain_ends_keep_alive_connections() {
    let (addr, handle, join) = start(ServerConfig::default());
    let mut conn = client::Connection::new(&addr);
    assert_eq!(conn.get("/health").expect("pre-drain request").0, 200);
    handle.shutdown();
    // The connection is idle, so the drain may close it outright; a
    // response, when one arrives, must carry close framing. `send`/
    // `recv` directly (no transparent reconnect) so a closed socket
    // surfaces as an error instead of retrying against a dead daemon.
    match conn.send("GET", "/health", "", &[]).and_then(|()| conn.recv()) {
        Ok(response) => {
            assert_eq!(response.status, 200);
            assert!(!conn.is_connected(), "drain response must close the connection");
        }
        Err(_) => {} // idle connection closed by the drain first
    }
    join.join().unwrap();
}
