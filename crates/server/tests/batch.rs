//! End-to-end tests of `POST /v1/batch`: per-item byte identity with
//! the single-request endpoints, per-item error isolation, id echoing,
//! and the request-size/item-count limits.

use pipeline::api::{AnalysisConfig, AnalysisEngine, AnalysisRequest};
use server::{client, Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use telemetry::json::{parse, Value};

const VULNERABLE: &str = "function f(address to) public { to.send(1); }";
const CORPUS_CONTRACT: &str = "contract Wallet { \
    function takeOut(uint amount) public { msg.sender.transfer(amount); } }";

fn start(config: ServerConfig) -> (String, ShutdownHandle, std::thread::JoinHandle<()>) {
    let engine = AnalysisEngine::with_corpus(AnalysisConfig::default(), [(1u64, CORPUS_CONTRACT)]);
    let server = Server::bind("127.0.0.1:0", config, Arc::new(engine)).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

/// Render a parsed batch element back to a JSON string so it can be
/// compared against a single-endpoint response body. Key order is
/// normalized through the same parser on both sides.
fn reparse(text: &str) -> Value {
    parse(text).expect("valid JSON")
}

#[test]
fn batch_items_match_single_endpoint_responses() {
    let (addr, handle, join) = start(ServerConfig::default());
    let scan = AnalysisRequest::scan(VULNERABLE).to_json();
    let check = AnalysisRequest::clone_check(CORPUS_CONTRACT).to_json();

    let (status, scan_single) = client::post(&addr, "/v1/scan", &scan).expect("scan");
    assert_eq!(status, 200);
    let (status, check_single) = client::post(&addr, "/v1/clone-check", &check).expect("check");
    assert_eq!(status, 200);

    let (status, body) =
        client::post(&addr, "/v1/batch", &format!("[{scan},{check}]")).expect("batch");
    assert_eq!(status, 200, "batch returned {status}: {body}");
    let doc = reparse(&body);
    assert_eq!(doc.get("kind").and_then(Value::as_str), Some("batch"));
    let results = doc.get("results").and_then(Value::as_array).expect("results array");
    assert_eq!(results.len(), 2);
    // Byte-level framing is asserted via structural equality after one
    // round through the same parser — the batch elements are rendered by
    // exactly the same `to_json` the single endpoints use.
    assert_eq!(results[0], reparse(&scan_single), "batch item 0 != /v1/scan response");
    assert_eq!(results[1], reparse(&check_single), "batch item 1 != /v1/clone-check response");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn batch_isolates_failing_items() {
    let (addr, handle, join) = start(ServerConfig::default());
    let good = AnalysisRequest::scan(VULNERABLE).to_json();
    let bad = "{\"v\":1,\"kind\":\"nope\",\"source\":\"x\"}";
    let empty = "{\"v\":1,\"kind\":\"clone_check\",\"source\":\"\"}";
    let (status, body) = client::post(&addr, "/v1/batch", &format!("[{bad},{good},{empty}]"))
        .expect("batch with failing items");
    assert_eq!(status, 200, "item failures must not fail the batch: {body}");
    let doc = reparse(&body);
    let results = doc.get("results").and_then(Value::as_array).expect("results array");
    assert_eq!(results.len(), 3);
    assert_eq!(
        results[0].get("kind").and_then(Value::as_str),
        Some("error"),
        "unknown kind stays in its slot: {body}"
    );
    assert_eq!(
        results[1].get("kind").and_then(Value::as_str),
        Some("findings"),
        "healthy item unaffected by its neighbors: {body}"
    );
    assert_eq!(
        results[2].get("kind").and_then(Value::as_str),
        Some("error"),
        "empty clone-check source is a per-item error: {body}"
    );

    // Client errors inside items must not trip the batch breaker.
    let (status, health) = client::get(&addr, "/health").expect("health");
    assert_eq!(status, 200);
    assert!(health.contains("\"batch\":\"closed\""), "breaker opened on client errors: {health}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn batch_echoes_ids_once_per_response() {
    let (addr, handle, join) = start(ServerConfig::default());
    let scan = AnalysisRequest::scan(VULNERABLE).to_json();
    let response = client::request_full(
        &addr,
        "POST",
        "/v1/batch",
        &format!("[{scan},{scan}]"),
        &[("X-Trace-Id", "feedfacefeedface"), ("X-Request-Id", "batch-test-1")],
    )
    .expect("batch with ids");
    assert_eq!(response.status, 200);
    let traces: Vec<_> =
        response.headers.iter().filter(|(name, _)| name == "x-trace-id").collect();
    let requests: Vec<_> =
        response.headers.iter().filter(|(name, _)| name == "x-request-id").collect();
    assert_eq!(traces.len(), 1, "exactly one X-Trace-Id on the batch response");
    assert_eq!(traces[0].1, "feedfacefeedface");
    assert_eq!(requests.len(), 1, "exactly one X-Request-Id on the batch response");
    assert_eq!(requests[0].1, "batch-test-1");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn batch_rejects_non_array_and_item_overflow() {
    let (addr, handle, join) = start(ServerConfig::default());
    let (status, body) =
        client::post(&addr, "/v1/batch", "{\"v\":1,\"kind\":\"scan\"}").expect("non-array");
    assert_eq!(status, 400, "non-array batch body: {body}");
    assert!(body.contains("invalid_request"), "typed error expected: {body}");

    let item = "{\"v\":1,\"kind\":\"scan\",\"source\":\"contract C {}\"}";
    let oversized = format!("[{}]", vec![item; 257].join(","));
    let (status, body) = client::post(&addr, "/v1/batch", &oversized).expect("overflow");
    assert_eq!(status, 400, "257 items must exceed the batch limit: {body}");
    assert!(body.contains("invalid_request"), "typed error expected: {body}");

    let (status, body) = client::post(&addr, "/v1/batch", "[]").expect("empty batch");
    assert_eq!(status, 200, "an empty batch is a valid no-op: {body}");
    assert!(body.contains("\"results\":[]"), "empty results array: {body}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn oversized_batch_body_gets_413_before_upload_completes() {
    let (addr, handle, join) = start(ServerConfig::default());
    // Announce a body far past the 4 MiB cap; the server must refuse
    // from the headers alone instead of buffering the upload.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(b"POST /v1/batch HTTP/1.1\r\nHost: t\r\nContent-Length: 268435456\r\n\r\n")
        .unwrap();
    stream.flush().unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read 413");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 413"), "expected 413, got: {text}");
    assert!(text.contains("Connection: close"), "oversized request closes the connection");
    handle.shutdown();
    join.join().unwrap();
}
