//! Observability contract tests over real sockets: tracing must be a
//! true no-op when off, correlation ids must appear on every response
//! class, adopted trace ids must round-trip to the debug endpoints, and
//! the access log must record what the server did — including the
//! requests it refused.
//!
//! Tracing and id-minting state is process-global, so every test holds
//! `OBS_LOCK` and restores the tracing switch before releasing it.

use pipeline::api::{AnalysisConfig, AnalysisEngine, AnalysisRequest};
use server::{client, Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

static OBS_LOCK: Mutex<()> = Mutex::new(());

const VULNERABLE: &str = "function f(address to) public { to.send(1); }";
const CORPUS_CONTRACT: &str = "contract Wallet { \
    function takeOut(uint amount) public { msg.sender.transfer(amount); } }";

fn start(
    config: ServerConfig,
) -> (String, ShutdownHandle, std::thread::JoinHandle<()>) {
    let engine = AnalysisEngine::with_corpus(AnalysisConfig::default(), [(1u64, CORPUS_CONTRACT)]);
    let server = Server::bind("127.0.0.1:0", config, Arc::new(engine)).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn stop(handle: ShutdownHandle, join: std::thread::JoinHandle<()>) {
    handle.shutdown();
    join.join().expect("server thread");
}

/// Run `f` with tracing forced to `on`, restoring "off" afterwards even
/// on panic (the suite's baseline state is tracing disabled).
fn with_tracing(on: bool, f: impl FnOnce()) {
    let _lock = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::trace::set_enabled(on);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    telemetry::trace::set_enabled(false);
    if let Err(payload) = outcome {
        std::panic::resume_unwind(payload);
    }
}

#[test]
fn tracing_state_does_not_change_v1_response_bytes() {
    let _lock = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (addr, handle, join) = start(ServerConfig::default());
    let scan = AnalysisRequest::scan(VULNERABLE).to_json();
    let check = AnalysisRequest::clone_check(CORPUS_CONTRACT).to_json();

    telemetry::trace::set_enabled(false);
    let (status_off, scan_off) = client::post(&addr, "/v1/scan", &scan).expect("scan off");
    let (_, check_off) = client::post(&addr, "/v1/clone-check", &check).expect("check off");

    telemetry::trace::set_enabled(true);
    let (status_on, scan_on) = client::post(&addr, "/v1/scan", &scan).expect("scan on");
    let (_, check_on) = client::post(&addr, "/v1/clone-check", &check).expect("check on");
    telemetry::trace::set_enabled(false);

    stop(handle, join);
    assert_eq!(status_off, 200);
    assert_eq!(status_on, 200);
    assert_eq!(scan_off, scan_on, "tracing changed the scan response body");
    assert_eq!(check_off, check_on, "tracing changed the clone-check response body");
}

#[test]
fn every_response_class_carries_correlation_ids() {
    let _lock = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (addr, handle, join) = start(ServerConfig::default());

    // 404, 405 and analysis-level 400 all answer with both ids.
    let cases: Vec<client::Response> = vec![
        client::request_full(&addr, "GET", "/nope", "", &[]).expect("404"),
        client::request_full(&addr, "DELETE", "/health", "", &[]).expect("405"),
        client::request_full(&addr, "POST", "/v1/scan", "{not json", &[]).expect("400"),
    ];
    for response in &cases {
        assert!(
            response.header("x-trace-id").is_some(),
            "{} response lacks X-Trace-Id",
            response.status
        );
        assert!(
            response.header("x-request-id").is_some(),
            "{} response lacks X-Request-Id",
            response.status
        );
    }
    assert_eq!(
        cases.iter().map(|r| r.status).collect::<Vec<_>>(),
        vec![404, 405, 400]
    );

    // Protocol-level 413 (declared body over the limit): the request
    // never parses, so the ids must be minted, not adopted.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"POST /v1/scan HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .expect("write oversized head");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read 413");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 413"), "expected 413, got: {text}");
    assert!(text.to_ascii_lowercase().contains("x-trace-id:"), "413 lacks X-Trace-Id: {text}");
    assert!(text.to_ascii_lowercase().contains("x-request-id:"), "413 lacks X-Request-Id: {text}");

    stop(handle, join);
}

#[test]
fn adopted_trace_id_round_trips_through_debug_endpoints() {
    with_tracing(true, || {
        let (addr, handle, join) = start(ServerConfig::default());
        // A snippet unique to this test: a CPG cache hit would elide the
        // parse/cpg-build spans the assertions below require.
        let scan = AnalysisRequest::scan(
            "contract ObsTest { function pay(address to) public { to.send(2); } }",
        )
        .to_json();
        let response = client::request_full(
            &addr,
            "POST",
            "/v1/scan",
            &scan,
            &[("X-Trace-Id", "0000feedfacef00d")],
        )
        .expect("traced scan");
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(response.header("x-trace-id"), Some("0000feedfacef00d"));

        let (status, body) =
            client::get(&addr, "/debug/trace/0000feedfacef00d").expect("trace fetch");
        assert_eq!(status, 200, "{body}");
        for span in ["\"name\":\"request\"", "\"name\":\"parse\"", "\"name\":\"cpg-build\"", "\"name\":\"ccc-check\""] {
            assert!(body.contains(span), "trace missing {span}: {body}");
        }
        telemetry::json::parse(&body).unwrap_or_else(|e| panic!("{e}: {body}"));

        let (status, recent) = client::get(&addr, "/debug/traces/recent").expect("recent");
        assert_eq!(status, 200);
        assert!(recent.contains("0000feedfacef00d"), "recent misses the trace: {recent}");

        let (status, chrome) =
            client::get(&addr, "/debug/trace/0000feedfacef00d?format=chrome").expect("chrome");
        assert_eq!(status, 200);
        assert!(chrome.contains("traceEvents"), "not a Chrome trace document: {chrome}");
        telemetry::json::parse(&chrome).unwrap_or_else(|e| panic!("{e}: {chrome}"));

        stop(handle, join);
    });
}

#[test]
fn unparseable_trace_header_is_replaced_not_adopted() {
    let _lock = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (addr, handle, join) = start(ServerConfig::default());
    let response = client::request_full(
        &addr,
        "GET",
        "/health",
        "",
        &[("X-Trace-Id", "definitely-not-hex")],
    )
    .expect("health");
    let echoed = response.header("x-trace-id").expect("echoed id");
    assert_ne!(echoed, "definitely-not-hex");
    assert_eq!(echoed.len(), 16, "minted ids are 16 hex digits: {echoed}");
    assert!(echoed.chars().all(|c| c.is_ascii_hexdigit()));
    stop(handle, join);
}

#[test]
fn access_log_records_served_and_shed_requests() {
    let _lock = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("obs-log-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let access_path = dir.join("access.jsonl");
    let slow_path = dir.join("slow.jsonl");
    let _ = std::fs::remove_file(&access_path);
    let _ = std::fs::remove_file(&slow_path);

    // One worker, a one-slot queue and a 300 ms injected stall per
    // request: firing four requests at once forces the queue to refuse
    // at least one of them.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        access_log: Some(access_path.clone()),
        slow_log: Some(slow_path.clone()),
        slow_ms: 100,
        ..ServerConfig::default()
    };
    let plan =
        faultinject::FaultPlan::parse("server/request:delay:300ms", 1).expect("valid spec");
    faultinject::install(Some(plan));
    let (addr, handle, join) = start(config);
    let scan = AnalysisRequest::scan(VULNERABLE).to_json();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    // Shed (429) and served (200) are both acceptable
                    // per-request outcomes here; the log must see both.
                    let (status, _) =
                        client::post(&addr, "/v1/scan", &scan).expect("scan under load");
                    assert!(status == 200 || status == 429, "unexpected status {status}");
                });
            }
        });
    }));
    faultinject::install(None);
    stop(handle, join);
    if let Err(payload) = outcome {
        std::panic::resume_unwind(payload);
    }

    let log = std::fs::read_to_string(&access_path).expect("access log exists");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 4, "one line per request:\n{log}");
    for line in &lines {
        let value = telemetry::json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        let trace_id = value
            .get("trace_id")
            .and_then(telemetry::json::Value::as_str)
            .expect("trace_id field");
        assert!(!trace_id.is_empty());
    }
    assert!(log.contains("\"outcome\":\"ok\""), "no served request in log:\n{log}");
    assert!(log.contains("\"outcome\":\"shed\""), "no shed request in log:\n{log}");
    assert!(log.contains("\"status\":429"), "no 429 in log:\n{log}");

    // The 300 ms stall pushes served requests past the 100 ms slow
    // threshold, so the slow log tees them with the slow flag set.
    let slow = std::fs::read_to_string(&slow_path).expect("slow log exists");
    assert!(slow.contains("\"slow\":true"), "slow log missing slow entries:\n{slow}");

    let _ = std::fs::remove_dir_all(&dir);
}
