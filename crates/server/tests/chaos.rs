//! Chaos suite: every injected fault must surface as a *typed* error —
//! never an escaped panic, never a dead process.
//!
//! The fault plan is process-global, so every test takes `CHAOS_LOCK`
//! and uninstalls its plan before releasing it (even on panic).

use pipeline::api::{AnalysisConfig, AnalysisEngine, AnalysisRequest};
use server::breaker::BreakerConfig;
use server::{client, Server, ServerConfig};
use std::sync::{Arc, Mutex};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

const VULNERABLE: &str = "function f(address to) public { to.send(1); }";
const CORPUS_CONTRACT: &str = "contract Wallet { \
    function takeOut(uint amount) public { msg.sender.transfer(amount); } }";

/// Run `f` with `spec` installed, serialized against other chaos tests,
/// uninstalling the plan afterwards even if `f` panics.
fn with_plan(spec: &str, seed: u64, f: impl FnOnce()) {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = faultinject::FaultPlan::parse(spec, seed).expect("valid fault spec");
    faultinject::install(Some(plan));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    faultinject::install(None);
    if let Err(payload) = outcome {
        std::panic::resume_unwind(payload);
    }
}

fn engine() -> AnalysisEngine {
    AnalysisEngine::with_corpus(AnalysisConfig::default(), [(1u64, CORPUS_CONTRACT)])
}

#[test]
fn parse_fault_maps_to_parse_error() {
    with_plan("parse:err:1.0", 1, || {
        let error = engine()
            .analyze(&AnalysisRequest::scan(VULNERABLE))
            .expect_err("injected parse fault must fail the request");
        assert_eq!(error.code(), "parse");
    });
}

#[test]
fn cpg_build_fault_maps_to_graph_build_error() {
    with_plan("cpg/build:err:1.0", 1, || {
        let error = engine()
            .analyze(&AnalysisRequest::scan(VULNERABLE))
            .expect_err("injected build fault must fail the request");
        assert_eq!(error.code(), "graph_build");
    });
}

#[test]
fn faults_at_infallible_points_become_isolated_internal_errors() {
    // These sites have no error channel of their own: an injected error
    // escalates to a panic that the isolation layers (per-detector
    // catch_unwind, request-level catch_unwind) must convert.
    for spec in ["cpg/expand:err:1.0", "ccc/detector:err:1.0"] {
        with_plan(spec, 1, || {
            let error = engine()
                .analyze(&AnalysisRequest::scan(VULNERABLE))
                .expect_err("injected fault must fail the request");
            assert_eq!(error.code(), "internal", "spec {spec} leaked code {}", error.code());
        });
    }
    with_plan("ccd/match:err:1.0", 1, || {
        let error = engine()
            .analyze(&AnalysisRequest::clone_check(CORPUS_CONTRACT))
            .expect_err("injected match fault must fail the request");
        assert_eq!(error.code(), "internal");
    });
}

#[test]
fn query_eval_fault_escalates_to_catchable_panic() {
    // The scan detectors are programmatic graph walks; `query/eval` fires
    // on the declarative pattern path (`ccc::cypherlike`), whose faults
    // must surface as marked, catchable panics for the caller's isolation
    // layer (the same contract the sweep point has).
    with_plan("query/eval:err:1.0", 1, || {
        let cpg = cpg::Cpg::from_snippet(VULNERABLE).expect("snippet builds");
        let payload = std::panic::catch_unwind(|| {
            ccc::cypherlike::run_base_pattern(&cpg, &ccc::cypherlike::BASE_PATTERNS[0])
        })
        .expect_err("eval fault must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(message.starts_with("faultinject:"), "unexpected panic: {message}");
    });
}

#[test]
fn sweep_fault_escalates_to_catchable_panic() {
    // The batch sweep has no per-request isolation layer of its own; the
    // contract is that its injected faults are catchable panics with the
    // faultinject marker, which batch drivers absorb via their pool's
    // respawn sentinel.
    with_plan("ccd/sweep:err:1.0", 1, || {
        let payload = std::panic::catch_unwind(|| {
            let mut corpus = ccd::LabelledCorpus::default();
            corpus.add_document(1, CORPUS_CONTRACT);
            corpus.add_document(2, VULNERABLE);
            ccd::sweep(&corpus)
        })
        .expect_err("sweep fault must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(message.starts_with("faultinject:"), "unexpected panic: {message}");
    });
}

#[test]
fn soak_at_low_rates_yields_only_typed_outcomes() {
    // The acceptance regime: ≥1% rates across every in-process injection
    // point at once, a few hundred mixed requests, and every outcome is
    // either a success or a known error code.
    let spec = "parse:err:0.02,cpg:panic:0.01,query:err:0.01,ccc:panic:0.01,ccd:err:0.01";
    with_plan(spec, 0xC4A05, || {
        let engine = engine();
        let before = faultinject::injected_counts();
        let mut failures = 0usize;
        for i in 0..300 {
            let request = if i % 2 == 0 {
                AnalysisRequest::scan(VULNERABLE)
            } else {
                AnalysisRequest::clone_check(CORPUS_CONTRACT)
            };
            match engine.analyze(&request) {
                Ok(_) => {}
                Err(error) => {
                    failures += 1;
                    assert!(
                        matches!(
                            error.code(),
                            "parse" | "graph_build" | "query" | "timeout" | "internal"
                        ),
                        "unknown error code {}",
                        error.code()
                    );
                }
            }
        }
        let after = faultinject::injected_counts();
        let fired = (after.0 - before.0) + (after.1 - before.1);
        assert!(fired > 0, "fault plan never fired over 300 requests");
        assert!(failures > 0, "injected faults never surfaced as errors");
    });
}

#[test]
fn server_request_fault_returns_typed_500() {
    with_plan("server/request:err:1.0", 1, || {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default(), Arc::new(engine()))
            .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().expect("run"));

        let (status, body) = client::get(&addr, "/health").expect("typed response");
        assert_eq!(status, 500);
        assert!(body.contains("\"code\":\"internal\""), "unexpected body: {body}");

        faultinject::install(None);
        handle.shutdown();
        let _ = client::get(&addr, "/health");
        join.join().unwrap();
    });
}

#[test]
fn worker_panics_are_respawned_and_reported() {
    with_plan("server/request:panic:1.0", 1, || {
        let mut config = ServerConfig::default();
        config.workers = 2;
        let server =
            Server::bind("127.0.0.1:0", config, Arc::new(engine())).expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().expect("run"));

        // Each request panics its worker mid-connection: the client sees
        // a dead socket, the pool's sentinel respawns the worker.
        for _ in 0..3 {
            assert!(
                client::get(&addr, "/health").is_err(),
                "panicking worker cannot have answered"
            );
        }

        faultinject::install(None);
        let policy = client::RetryPolicy::default();
        let (status, body) =
            client::get_with_retry(&addr, "/health", &policy).expect("daemon recovered");
        assert_eq!(status, 200, "daemon must survive worker panics: {body}");
        let health = telemetry::json::parse(&body).expect("health is JSON");
        let respawns = health
            .get("pool")
            .and_then(|p| p.get("respawns"))
            .and_then(telemetry::json::Value::as_f64)
            .expect("health reports pool.respawns");
        assert!(respawns >= 3.0, "expected ≥3 respawns, saw {respawns}");

        handle.shutdown();
        let _ = client::get(&addr, "/health");
        join.join().unwrap();
    });
}

#[test]
fn breaker_opens_on_internal_errors_and_recovers() {
    // Detector faults produce internal errors (500); the scan endpoint's
    // breaker must open after the configured run of failures, shed with
    // 503, and close again via the half-open probe once faults stop.
    with_plan("ccc/detector:err:1.0", 1, || {
        let config = ServerConfig {
            breaker: BreakerConfig { failure_threshold: 3, open_ms: 300 },
            ..ServerConfig::default()
        };
        let server =
            Server::bind("127.0.0.1:0", config, Arc::new(engine())).expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().expect("run"));

        let scan = AnalysisRequest::scan(VULNERABLE).to_json();
        for i in 0..3 {
            let (status, body) = client::post(&addr, "/v1/scan", &scan).expect("scan");
            assert_eq!(status, 500, "request {i} should fail internally: {body}");
        }
        let (status, body) = client::post(&addr, "/v1/scan", &scan).expect("scan");
        assert_eq!(status, 503, "breaker should be open: {body}");
        assert!(body.contains("\"code\":\"breaker_open\""), "unexpected body: {body}");

        let (_, health) = client::get(&addr, "/health").expect("health");
        assert!(health.contains("\"scan\":\"open\""), "health must report open: {health}");
        // Other endpoints keep their own breakers.
        assert!(health.contains("\"clone_check\":\"closed\""), "health: {health}");

        // Fault cleared + cooldown elapsed: the half-open probe succeeds
        // and the breaker closes.
        faultinject::install(None);
        std::thread::sleep(std::time::Duration::from_millis(400));
        let (status, body) = client::post(&addr, "/v1/scan", &scan).expect("scan");
        assert_eq!(status, 200, "probe after cooldown should succeed: {body}");
        let (_, health) = client::get(&addr, "/health").expect("health");
        assert!(health.contains("\"scan\":\"closed\""), "breaker must reclose: {health}");

        handle.shutdown();
        let _ = client::get(&addr, "/health");
        join.join().unwrap();
    });
}
