//! End-to-end tests of the `/v1/index` management API and the snapshot
//! warm-start lifecycle over real sockets.

use pipeline::api::{AnalysisConfig, AnalysisEngine, AnalysisRequest};
use pipeline::corpus_index::CorpusBuilder;
use server::{client, Server, ServerConfig, ShutdownHandle};
use std::path::PathBuf;
use std::sync::Arc;

const CORPUS_CONTRACT: &str = "contract Wallet { \
    function takeOut(uint amount) public { msg.sender.transfer(amount); } }";
const NEW_CONTRACT: &str = "contract Counter { uint total; \
    function add(uint v) public { total += v; } }";

fn start(engine: AnalysisEngine) -> (String, ShutdownHandle, std::thread::JoinHandle<()>) {
    let server =
        Server::bind("127.0.0.1:0", ServerConfig::default(), Arc::new(engine)).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sodd_index_api_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn field(body: &str, name: &str) -> f64 {
    telemetry::json::parse(body)
        .unwrap_or_else(|e| panic!("{body}: {e}"))
        .get(name)
        .and_then(telemetry::json::Value::as_f64)
        .unwrap_or_else(|| panic!("no {name} in {body}"))
}

#[test]
fn insert_compact_and_warm_restart_roundtrip() {
    let dir = temp_dir("lifecycle");
    let config = AnalysisConfig::default();
    let corpus = CorpusBuilder::new(config.ccd_params())
        .snapshot_dir(&dir)
        .from_sources([(1u64, CORPUS_CONTRACT)]);
    corpus.compact().expect("initial commit");
    let (addr, handle, join) = start(AnalysisEngine::with_corpus_handle(config.clone(), corpus));

    // Baseline status: generation 1, one doc, no deltas.
    let (status, body) = client::get(&addr, "/v1/index/status").unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(field(&body, "generation"), 1.0, "{body}");
    assert_eq!(field(&body, "docs"), 1.0, "{body}");
    assert_eq!(field(&body, "deltas"), 0.0, "{body}");

    // Insert a new document; the id is echoed and the delta counted.
    let insert = format!(
        "{{\"v\":1,\"source\":\"{}\",\"id\":9}}",
        pipeline::api::escape_json(NEW_CONTRACT)
    );
    let (status, body) = client::post(&addr, "/v1/index/insert", &insert).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(field(&body, "doc"), 9.0, "{body}");
    assert_eq!(field(&body, "deltas"), 1.0, "{body}");

    // The inserted document is matchable before any compaction.
    let probe = AnalysisRequest::clone_check(
        "contract Tally { uint total; function bump(uint n) public { total += n; } }",
    );
    let (status, body) = client::post(&addr, "/v1/clone-check", &probe.to_json()).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"doc\":9"), "{body}");

    // Compact: deltas fold into generation 2.
    let (status, body) = client::post(&addr, "/v1/index/compact", "").unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(field(&body, "generation"), 2.0, "{body}");
    assert_eq!(field(&body, "deltas"), 0.0, "{body}");
    handle.shutdown();
    join.join().unwrap();

    // "Restart": a fresh warm-started service sees generation 2 with both
    // documents — including the one inserted over HTTP.
    let corpus = CorpusBuilder::new(config.ccd_params())
        .snapshot_dir(&dir)
        .load_snapshot()
        .expect("snapshot loads")
        .expect("snapshot exists");
    assert_eq!(corpus.generation(), 2);
    assert_eq!(corpus.len(), 2);
    let (addr, handle, join) = start(AnalysisEngine::with_corpus_handle(config, corpus));
    let (status, body) = client::post(&addr, "/v1/clone-check", &probe.to_json()).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"doc\":9"), "warm-started corpus lost the insert: {body}");
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_backed_responses_are_byte_identical_to_in_memory() {
    let dir = temp_dir("byteident");
    let config = AnalysisConfig::default();
    let docs = [
        (1u64, CORPUS_CONTRACT),
        (2u64, NEW_CONTRACT),
        (3u64, "contract Escrow { function release(address to) public { to.send(5); } }"),
    ];
    let in_memory = CorpusBuilder::new(config.ccd_params()).from_sources(docs);
    let snapshot_src = CorpusBuilder::new(config.ccd_params())
        .snapshot_dir(&dir)
        .from_sources(docs);
    snapshot_src.compact().expect("commit");
    // Load the snapshot sharded differently from the in-memory build —
    // neither the backing store nor the shard count may leak into bytes.
    let warm = CorpusBuilder::new(config.ccd_params())
        .snapshot_dir(&dir)
        .shards(3)
        .load_snapshot()
        .expect("loads")
        .expect("exists");

    let (addr_a, handle_a, join_a) = start(AnalysisEngine::with_corpus_handle(config.clone(), in_memory));
    let (addr_b, handle_b, join_b) = start(AnalysisEngine::with_corpus_handle(config, warm));
    for query in [
        "contract W { function out(uint v) public { msg.sender.transfer(v); } }",
        "contract T { uint total; function inc(uint v) public { total += v; } }",
        "contract Z { function f() public {} }",
    ] {
        let body = AnalysisRequest::clone_check(query).to_json();
        let (sa, ra) = client::post(&addr_a, "/v1/clone-check", &body).unwrap();
        let (sb, rb) = client::post(&addr_b, "/v1/clone-check", &body).unwrap();
        assert_eq!((sa, &ra), (sb, &rb), "snapshot-backed response diverged for {query}");
    }
    handle_a.shutdown();
    handle_b.shutdown();
    join_a.join().unwrap();
    join_b.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The durability contract end-to-end: inserts acknowledged over HTTP but
/// never compacted survive an abrupt stop (the service and handle are
/// simply dropped — the WAL is the only place the deltas live on disk)
/// and the restarted service answers byte-identically.
#[test]
fn uncompacted_inserts_survive_an_abrupt_restart() {
    let dir = temp_dir("waldurable");
    let config = AnalysisConfig::default();
    let corpus = CorpusBuilder::new(config.ccd_params())
        .snapshot_dir(&dir)
        .from_sources([(1u64, CORPUS_CONTRACT)]);
    corpus.compact().expect("initial commit");
    let (addr, handle, join) = start(AnalysisEngine::with_corpus_handle(config.clone(), corpus));

    let insert = format!(
        "{{\"v\":1,\"source\":\"{}\",\"id\":9}}",
        pipeline::api::escape_json(NEW_CONTRACT)
    );
    let (status, body) = client::post(&addr, "/v1/index/insert", &insert).unwrap();
    assert_eq!(status, 200, "{body}");

    // Status reports the WAL view: one record durable, one replay pending.
    let (status, body) = client::get(&addr, "/v1/index/status").unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(field(&body, "wal_records"), 1.0, "{body}");
    assert!(field(&body, "wal_bytes") > 0.0, "{body}");
    assert_eq!(field(&body, "replayed_on_boot"), 0.0, "{body}");
    assert!(body.contains("\"fsync_policy\":\"batch:5\""), "{body}");

    // Capture the reference answer, then stop WITHOUT compacting.
    let probe = AnalysisRequest::clone_check(
        "contract Tally { uint total; function bump(uint n) public { total += n; } }",
    );
    let (_, reference) = client::post(&addr, "/v1/clone-check", &probe.to_json()).unwrap();
    assert!(reference.contains("\"doc\":9"), "{reference}");
    handle.shutdown();
    join.join().unwrap();

    // Restart: still generation 1, but the delta replays from the WAL and
    // the clone-check response is byte-for-byte the pre-crash one.
    let corpus = CorpusBuilder::new(config.ccd_params())
        .snapshot_dir(&dir)
        .load_snapshot()
        .expect("snapshot loads")
        .expect("snapshot exists");
    assert_eq!((corpus.generation(), corpus.len()), (1, 2));
    assert_eq!((corpus.deltas(), corpus.replayed_on_boot()), (1, 1));
    let (addr, handle, join) = start(AnalysisEngine::with_corpus_handle(config, corpus));
    let (status, body) = client::get(&addr, "/v1/index/status").unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(field(&body, "replayed_on_boot"), 1.0, "{body}");
    let (status, replayed) = client::post(&addr, "/v1/clone-check", &probe.to_json()).unwrap();
    assert_eq!(status, 200);
    assert_eq!(replayed, reference, "replayed corpus diverged from the pre-crash answer");
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compact_without_snapshot_dir_is_client_error() {
    let engine = AnalysisEngine::with_corpus(AnalysisConfig::default(), [(1u64, CORPUS_CONTRACT)]);
    let (addr, handle, join) = start(engine);
    let (status, body) = client::post(&addr, "/v1/index/compact", "").unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"invalid_request\""), "{body}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn front_cache_hit_rate_rises_under_repeats() {
    let engine = AnalysisEngine::with_corpus(AnalysisConfig::default(), [(1u64, CORPUS_CONTRACT)]);
    let (addr, handle, join) = start(engine);
    let body = AnalysisRequest::clone_check(
        "contract Q { function w(uint v) public { msg.sender.transfer(v); } }",
    )
    .to_json();
    for _ in 0..5 {
        let (status, _) = client::post(&addr, "/v1/clone-check", &body).unwrap();
        assert_eq!(status, 200);
    }
    let (status, status_body) = client::get(&addr, "/v1/index/status").unwrap();
    assert_eq!(status, 200);
    let parsed = telemetry::json::parse(&status_body).unwrap();
    let cache = parsed.get("front_cache").expect("front_cache object");
    let exact = cache.get("exact_hits").and_then(telemetry::json::Value::as_f64).unwrap();
    assert!(exact >= 4.0, "repeated identical checks must hit tier 1: {status_body}");
    handle.shutdown();
    join.join().unwrap();
}
