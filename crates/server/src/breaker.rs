//! A per-endpoint circuit breaker.
//!
//! The daemon's analysis endpoints trip open after a run of *internal*
//! errors (our fault: detector panics, injected faults), shedding load
//! with 503 instead of burning workers on a failing dependency. After a
//! cooldown one half-open probe is admitted; its outcome decides between
//! closing the breaker and another cooldown. Request-caused errors
//! (parse failures, bad JSON, timeouts from undersized budgets) never
//! trip the breaker.
//!
//! State machine:
//!
//! ```text
//!            N consecutive internal errors
//!   Closed ───────────────────────────────▶ Open
//!     ▲                                       │ cooldown elapses
//!     │ probe succeeds                        ▼
//!     └─────────────────────────────────── HalfOpen ──▶ Open (probe fails)
//! ```

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive internal errors that trip the breaker open.
    pub failure_threshold: u32,
    /// Cooldown before a half-open probe is admitted.
    pub open_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 5, open_ms: 1000 }
    }
}

#[derive(Debug)]
enum State {
    Closed,
    Open { until: Instant },
    /// One probe in flight; further requests are rejected until its
    /// outcome is recorded.
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    state: State,
    consecutive_failures: u32,
    opened_total: u64,
}

/// A single endpoint's circuit breaker. All methods are thread-safe.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                state: State::Closed,
                consecutive_failures: 0,
                opened_total: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Ask to admit a request. `false` means shed it (breaker open, or a
    /// half-open probe is already in flight). An admitted request MUST be
    /// concluded with [`CircuitBreaker::record_success`] or
    /// [`CircuitBreaker::record_failure`].
    pub fn try_acquire(&self) -> bool {
        static REJECTED: telemetry::Counter = telemetry::Counter::new("breaker.rejected");
        let mut inner = self.lock();
        let admitted = match inner.state {
            State::Closed => true,
            State::Open { until } => {
                if Instant::now() >= until {
                    inner.state = State::HalfOpen;
                    true // this request is the probe
                } else {
                    false
                }
            }
            State::HalfOpen => false,
        };
        if !admitted {
            REJECTED.incr();
        }
        admitted
    }

    /// Conclude an admitted request that did not hit an internal error.
    pub fn record_success(&self) {
        let mut inner = self.lock();
        inner.consecutive_failures = 0;
        inner.state = State::Closed;
    }

    /// Conclude an admitted request that hit an internal error.
    pub fn record_failure(&self) {
        static OPENED: telemetry::Counter = telemetry::Counter::new("breaker.opened");
        let mut inner = self.lock();
        match inner.state {
            State::HalfOpen | State::Open { .. } => {
                // Failed probe (or a straggler admitted before the trip):
                // back to a full cooldown.
                inner.state = State::Open {
                    until: Instant::now() + Duration::from_millis(self.config.open_ms),
                };
            }
            State::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    OPENED.incr();
                    inner.opened_total += 1;
                    inner.state = State::Open {
                        until: Instant::now() + Duration::from_millis(self.config.open_ms),
                    };
                }
            }
        }
    }

    /// Reportable state name: `"closed"`, `"open"` or `"half_open"`.
    pub fn state_name(&self) -> &'static str {
        match self.lock().state {
            State::Closed => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half_open",
        }
    }

    /// How many times the breaker has tripped from closed to open.
    pub fn opened_total(&self) -> u64 {
        self.lock().opened_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig { failure_threshold: 3, open_ms: 30 })
    }

    #[test]
    fn stays_closed_below_threshold() {
        let b = fast();
        for _ in 0..2 {
            assert!(b.try_acquire());
            b.record_failure();
        }
        assert_eq!(b.state_name(), "closed");
        assert!(b.try_acquire());
        b.record_success(); // success resets the failure run
        for _ in 0..2 {
            assert!(b.try_acquire());
            b.record_failure();
        }
        assert_eq!(b.state_name(), "closed");
    }

    #[test]
    fn opens_at_threshold_and_rejects() {
        let b = fast();
        for _ in 0..3 {
            assert!(b.try_acquire());
            b.record_failure();
        }
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.opened_total(), 1);
        assert!(!b.try_acquire(), "open breaker sheds requests");
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = fast();
        for _ in 0..3 {
            b.try_acquire();
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.try_acquire(), "cooldown elapsed: probe admitted");
        assert_eq!(b.state_name(), "half_open");
        assert!(!b.try_acquire(), "only one probe at a time");
        b.record_success();
        assert_eq!(b.state_name(), "closed");
        assert!(b.try_acquire());
        b.record_success();
    }

    #[test]
    fn half_open_probe_reopens_on_failure() {
        let b = fast();
        for _ in 0..3 {
            b.try_acquire();
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        assert!(!b.try_acquire());
    }
}
