//! Sharded epoll reactor (Linux only): the event-driven transport
//! behind the daemon. One acceptor thread distributes connections
//! round-robin to N shard threads; each shard owns its connections
//! outright — non-blocking reads into growable buffers, the
//! incremental zero-copy parser from [`crate::http`], keep-alive and
//! pipelining with a bounded in-flight depth, and responses written
//! strictly in request order. Analysis work runs on per-shard worker
//! pools; finished responses come back through the shard's
//! [`ShardInbox`].
//!
//! On non-Linux targets the daemon falls back to the original blocking
//! accept-then-dispatch loop (`Server::run_blocking`).

mod conn;
mod shard;
mod sys;

pub use shard::{
    Completion, CompletionGuard, Dispatch, Shard, ShardConfig, ShardHandler, ShardInbox,
};
