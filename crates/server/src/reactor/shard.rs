//! A reactor shard: one thread, one epoll instance, exclusive ownership
//! of a set of connections. The acceptor hands fresh streams to a shard
//! through its [`ShardInbox`]; worker threads deliver finished
//! responses the same way. Both producers wake the shard's `epoll_wait`
//! via an eventfd, so the loop never polls blind.
//!
//! Ordering guarantee: each parsed request reserves a response slot in
//! arrival order; workers may finish out of order but
//! [`Conn::collect_ready`] only releases the contiguous completed
//! prefix, so pipelined responses are written back in request order.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use super::conn::Conn;
use super::sys::{Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::http::{self, HttpError, Parsed, ReqView};

/// Epoll token reserved for the shard's wake eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

/// Bytes per read call; level-triggered epoll re-arms if more is
/// pending, so a bounded chunk keeps one chatty peer from starving the
/// rest of the shard.
const READ_CHUNK: usize = 16 * 1024;

/// How a handler disposed of one parsed request.
pub enum Dispatch {
    /// The response was produced synchronously (shed 429s and other
    /// fast-fail paths); the shard fills the slot immediately.
    Inline(Vec<u8>),
    /// The request was submitted to a worker pool; a [`Completion`]
    /// carrying the same `(token, seq)` will arrive on the inbox.
    Submitted,
}

/// A finished response travelling from a worker back to its shard.
pub struct Completion {
    /// Connection token the response belongs to.
    pub token: u64,
    /// Response-slot sequence number on that connection.
    pub seq: u64,
    /// The rendered response bytes, or `None` if the worker died before
    /// producing one (a panic that escaped the request job) — the shard
    /// closes the connection so the client sees a hard error rather
    /// than a hang.
    pub payload: Option<Vec<u8>>,
}

/// The service half a shard drives: routing, metrics, logging, worker
/// dispatch. Implemented in `lib.rs`; the reactor stays transport-only.
pub trait ShardHandler: Send + Sync + 'static {
    /// Dispose of one parsed request. `keep_alive` is the negotiated
    /// persistence after drain gating — inline responses must be
    /// rendered with a matching `Connection` header.
    fn handle(&self, view: &ReqView<'_>, token: u64, seq: u64, keep_alive: bool) -> Dispatch;

    /// Render the terminal response for a protocol error (400/413).
    /// The connection closes after it flushes.
    fn protocol_error(&self, err: &HttpError) -> Vec<u8>;

    /// Render the 408 sent when a partial request outlives the read
    /// deadline (slowloris). The connection closes after it flushes.
    fn read_timeout_response(&self) -> Vec<u8>;

    /// Whether the server is draining: new requests are answered with
    /// `Connection: close` and idle connections are shut.
    fn draining(&self) -> bool;

    /// Periodic per-shard stats callback (connection and in-flight
    /// request counts) for gauge export.
    fn on_tick(&self, _shard_id: usize, _conns: usize, _inflight: usize) {}
}

/// The two producer queues plus the wakeup fd for one shard.
pub struct ShardInbox {
    handoffs: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<Completion>>,
    wake: WakeFd,
}

/// Recover the guarded value even if a holder panicked; the queues stay
/// structurally valid across a poison.
fn relock<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl ShardInbox {
    /// Create an inbox with a fresh eventfd.
    pub fn new() -> io::Result<Arc<Self>> {
        Ok(Arc::new(ShardInbox {
            handoffs: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            wake: WakeFd::new()?,
        }))
    }

    /// Hand a freshly accepted connection to this shard (acceptor side).
    pub fn hand_off(&self, stream: TcpStream) {
        relock(&self.handoffs).push(stream);
        self.wake.wake();
    }

    /// Deliver a finished response (worker side).
    pub fn complete(&self, completion: Completion) {
        relock(&self.completions).push(completion);
        self.wake.wake();
    }

    fn take_handoffs(&self) -> Vec<TcpStream> {
        std::mem::take(&mut *relock(&self.handoffs))
    }

    fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *relock(&self.completions))
    }

    fn is_empty(&self) -> bool {
        relock(&self.handoffs).is_empty() && relock(&self.completions).is_empty()
    }

    /// Wake the shard without enqueueing anything — used to make it
    /// re-check external state (e.g. the drain flag) promptly.
    pub fn notify(&self) {
        self.wake.wake();
    }
}

/// Sends exactly one [`Completion`] for a dispatched request: the happy
/// path calls [`CompletionGuard::send`]; if the request job panics and
/// unwinds instead, `Drop` reports a `None` payload so the shard closes
/// the connection rather than leaving a slot forever unfilled.
///
/// Construct the guard as the *first* statement of the worker job — a
/// queued job that is rejected or discarded before running then sends
/// nothing, which is correct because the submitter handled the request
/// inline (e.g. the 429 shed path).
pub struct CompletionGuard {
    inbox: Arc<ShardInbox>,
    token: u64,
    seq: u64,
    sent: bool,
}

impl CompletionGuard {
    /// Arm a guard for `(token, seq)` on `inbox`.
    pub fn new(inbox: Arc<ShardInbox>, token: u64, seq: u64) -> Self {
        CompletionGuard { inbox, token, seq, sent: false }
    }

    /// Deliver the response and defuse the guard.
    pub fn send(mut self, response: Vec<u8>) {
        self.sent = true;
        self.inbox
            .complete(Completion { token: self.token, seq: self.seq, payload: Some(response) });
    }
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if !self.sent {
            self.inbox
                .complete(Completion { token: self.token, seq: self.seq, payload: None });
        }
    }
}

/// Shard tuning knobs.
#[derive(Clone, Copy)]
pub struct ShardConfig {
    /// How long a partial request may sit in the read buffer before the
    /// shard answers 408 and closes (slowloris bound).
    pub read_timeout: Duration,
    /// Maximum pipelined requests in flight per connection; reads pause
    /// (TCP backpressure) while a connection is at the cap.
    pub max_pipeline: usize,
}

/// One reactor shard. Run its event loop on a dedicated thread via
/// [`Shard::run`].
pub struct Shard<H: ShardHandler> {
    id: usize,
    epoll: Epoll,
    inbox: Arc<ShardInbox>,
    handler: Arc<H>,
    cfg: ShardConfig,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl<H: ShardHandler> Shard<H> {
    /// Build a shard and register its inbox wakeup with epoll.
    pub fn new(
        id: usize,
        inbox: Arc<ShardInbox>,
        handler: Arc<H>,
        cfg: ShardConfig,
    ) -> io::Result<Self> {
        let epoll = Epoll::new()?;
        epoll.add(inbox.wake.raw(), EPOLLIN, WAKE_TOKEN)?;
        Ok(Shard { id, epoll, inbox, handler, cfg, conns: HashMap::new(), next_token: 0 })
    }

    /// The event loop. Returns when the handler reports draining and
    /// every owned connection has finished and closed.
    pub fn run(mut self) -> io::Result<()> {
        let mut events = vec![EpollEvent { events: 0, token: 0 }; 256];
        loop {
            let timeout = self.poll_timeout();
            let ready: Vec<(u64, u32)> = self
                .epoll
                .wait(&mut events, timeout)?
                .iter()
                .map(|e| {
                    // Copy packed fields by value (no references into
                    // the packed struct).
                    let token = e.token;
                    let mask = e.events;
                    (token, mask)
                })
                .collect();
            // Drain the wake counter BEFORE taking queue items: a
            // producer that enqueues after the drain leaves a fresh
            // wake behind, so nothing is ever lost (a stale extra wake
            // merely causes one empty loop turn).
            self.inbox.wake.drain();
            for stream in self.inbox.take_handoffs() {
                self.register(stream);
            }
            for completion in self.inbox.take_completions() {
                self.apply_completion(completion);
            }
            for (token, mask) in ready {
                if token != WAKE_TOKEN {
                    self.handle_event(token, mask);
                }
            }
            self.sweep_deadlines();
            if self.handler.draining() {
                self.close_idle();
                if self.conns.is_empty() && self.inbox.is_empty() {
                    break;
                }
            }
            let inflight: usize = self
                .conns
                .values()
                .map(|c| c.slots.iter().filter(|s| s.response.is_none()).count())
                .sum();
            self.handler.on_tick(self.id, self.conns.len(), inflight);
        }
        Ok(())
    }

    /// Wait bound: the nearest read deadline, capped so drain and
    /// deadline sweeps stay responsive even with no events.
    fn poll_timeout(&self) -> i32 {
        let now = Instant::now();
        let nearest = self
            .conns
            .values()
            .filter_map(|c| c.read_deadline)
            .map(|d| d.saturating_duration_since(now).as_millis() as i32)
            .min();
        nearest.map_or(250, |ms| ms.clamp(0, 250))
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        let mut conn = Conn::new(stream, token);
        conn.interest = EPOLLIN | EPOLLRDHUP;
        if self.epoll.add(conn.stream.as_raw_fd(), conn.interest, token).is_err() {
            return; // dropping the stream closes it
        }
        self.conns.insert(token, conn);
    }

    fn apply_completion(&mut self, completion: Completion) {
        let Some(conn) = self.conns.get_mut(&completion.token) else {
            return; // connection died while the worker ran
        };
        match completion.payload {
            Some(response) => {
                conn.fill_slot(completion.seq, response);
                self.pump(completion.token);
            }
            None => {
                // The worker panicked mid-request: the response order
                // can never be completed, so fail the whole connection
                // loudly (dropping the stream closes the socket).
                self.conns.remove(&completion.token);
            }
        }
    }

    fn handle_event(&mut self, token: u64, mask: u32) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.conns.remove(&token);
            return;
        }
        if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        // Peer finished sending; serve what is buffered
                        // and in flight, then close.
                        conn.closing = true;
                        conn.read_deadline = None;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        if n < chunk.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.conns.remove(&token);
                        return;
                    }
                }
            }
        }
        self.pump(token);
    }

    /// Make all possible progress on one connection: parse buffered
    /// requests up to the pipeline cap, release ordered responses,
    /// flush, and resynchronize epoll interest. Removes the connection
    /// when it reaches its end state.
    fn pump(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let now = Instant::now();
        progress(self.handler.as_ref(), &self.cfg, conn, now);
        conn.collect_ready();
        let alive = flush_conn(conn);
        if !alive || (conn.closing && conn.idle() && conn.unparsed().is_empty()) {
            self.conns.remove(&token);
            return;
        }
        let _ = sync_interest(&self.epoll, &self.cfg, conn);
    }

    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.read_deadline.is_some_and(|d| d <= now))
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            let response = self.handler.read_timeout_response();
            let Some(conn) = self.conns.get_mut(&token) else { continue };
            conn.read_deadline = None;
            conn.closing = true;
            let seq = conn.push_slot(true);
            conn.fill_slot(seq, response);
            self.pump(token);
        }
    }

    fn close_idle(&mut self) {
        self.conns.retain(|_, conn| !(conn.idle() && conn.unparsed().is_empty()));
    }
}

/// Parse-and-dispatch loop over one connection's buffered bytes.
fn progress<H: ShardHandler>(handler: &H, cfg: &ShardConfig, conn: &mut Conn, now: Instant) {
    while !conn.closing && conn.slots.len() < cfg.max_pipeline {
        // Move the buffer out so the borrowed view and mutations of
        // `conn` coexist; moved back before every exit from the loop.
        let buf = std::mem::take(&mut conn.read_buf);
        match http::parse_request_bytes(&buf[conn.read_pos..]) {
            Ok(Parsed::Partial) => {
                conn.read_buf = buf;
                if conn.unparsed().is_empty() {
                    conn.read_deadline = None;
                } else if conn.read_deadline.is_none() {
                    // Arm the slowloris clock: a partial request now
                    // has `read_timeout` to finish arriving.
                    conn.read_deadline = Some(now + cfg.read_timeout);
                }
                return;
            }
            Ok(Parsed::Complete { view, consumed }) => {
                let keep = view.keep_alive && !handler.draining();
                let seq = conn.push_slot(!keep);
                match handler.handle(&view, conn.token, seq, keep) {
                    Dispatch::Inline(bytes) => {
                        conn.fill_slot(seq, bytes);
                    }
                    Dispatch::Submitted => {}
                }
                conn.read_buf = buf;
                conn.consume(consumed);
                conn.read_deadline = None;
                if !keep {
                    conn.closing = true;
                }
            }
            Err(err) => {
                let bytes = handler.protocol_error(&err);
                conn.read_buf = buf;
                let seq = conn.push_slot(true);
                conn.fill_slot(seq, bytes);
                conn.closing = true;
                conn.read_deadline = None;
                return;
            }
        }
    }
}

/// Write as much of the backlog as the socket accepts. Returns false
/// when the connection should be dropped.
fn flush_conn(conn: &mut Conn) -> bool {
    while !conn.pending_write().is_empty() {
        let window = conn.write_pos..conn.write_buf.len();
        match conn.stream.write(&conn.write_buf[window]) {
            Ok(0) => return false,
            Ok(n) => conn.advance_write(n),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    !(conn.flushed() && conn.close_when_flushed)
}

/// Re-register the interest mask the connection currently needs: reads
/// pause at the pipeline cap (or once closing), writes arm only while a
/// backlog is pending.
fn sync_interest(epoll: &Epoll, cfg: &ShardConfig, conn: &mut Conn) -> io::Result<()> {
    let mut desired = 0u32;
    if !conn.closing && conn.slots.len() < cfg.max_pipeline {
        desired |= EPOLLIN | EPOLLRDHUP;
    }
    if !conn.flushed() {
        desired |= EPOLLOUT;
    }
    if desired != conn.interest {
        epoll.modify(conn.stream.as_raw_fd(), desired, conn.token)?;
        conn.interest = desired;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo handler: responds inline with the request path; no pool.
    struct Echo {
        draining: std::sync::atomic::AtomicBool,
    }

    impl ShardHandler for Echo {
        fn handle(&self, view: &ReqView<'_>, _t: u64, _s: u64, keep_alive: bool) -> Dispatch {
            Dispatch::Inline(http::render_response(
                200,
                "text/plain",
                view.path,
                &[],
                keep_alive,
            ))
        }
        fn protocol_error(&self, err: &HttpError) -> Vec<u8> {
            let status = if matches!(err, HttpError::TooLarge) { 413 } else { 400 };
            http::render_response(status, "text/plain", "bad", &[], false)
        }
        fn read_timeout_response(&self) -> Vec<u8> {
            http::render_response(408, "text/plain", "slow", &[], false)
        }
        fn draining(&self) -> bool {
            self.draining.load(std::sync::atomic::Ordering::SeqCst)
        }
    }

    fn start_echo(
        cfg: ShardConfig,
    ) -> (Arc<ShardInbox>, Arc<Echo>, std::thread::JoinHandle<()>, std::net::SocketAddr) {
        let inbox = ShardInbox::new().unwrap();
        let handler = Arc::new(Echo { draining: std::sync::atomic::AtomicBool::new(false) });
        let shard = Shard::new(0, Arc::clone(&inbox), Arc::clone(&handler), cfg).unwrap();
        let thread = std::thread::spawn(move || shard.run().unwrap());
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor_inbox = Arc::clone(&inbox);
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                acceptor_inbox.hand_off(stream);
            }
        });
        (inbox, handler, thread, addr)
    }

    fn default_cfg() -> ShardConfig {
        ShardConfig { read_timeout: Duration::from_secs(5), max_pipeline: 32 }
    }

    fn read_until_close(stream: &mut TcpStream) -> String {
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    fn stop(handler: &Arc<Echo>, inbox: &Arc<ShardInbox>, thread: std::thread::JoinHandle<()>) {
        handler.draining.store(true, std::sync::atomic::Ordering::SeqCst);
        inbox.wake.wake();
        thread.join().unwrap();
    }

    #[test]
    fn serves_pipelined_requests_in_order() {
        let (inbox, handler, thread, addr) = start_echo(default_cfg());
        let mut stream = TcpStream::connect(addr).unwrap();
        let burst =
            "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\nConnection: close\r\n\r\n";
        stream.write_all(burst.as_bytes()).unwrap();
        let text = read_until_close(&mut stream);
        let a = text.find("\r\n\r\n/a").expect("/a echoed");
        let b = text.find("\r\n\r\n/b").expect("/b echoed");
        let c = text.find("\r\n\r\n/c").expect("/c echoed");
        assert!(a < b && b < c, "responses out of order: {text}");
        stop(&handler, &inbox, thread);
    }

    #[test]
    fn keep_alive_survives_sequential_requests() {
        let (inbox, handler, thread, addr) = start_echo(default_cfg());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 4096];
        for path in ["/one", "/two", "/three"] {
            stream
                .write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
                .unwrap();
            let n = stream.read(&mut buf).unwrap();
            let text = String::from_utf8_lossy(&buf[..n]);
            assert!(text.contains("Connection: keep-alive"), "{text}");
            assert!(text.ends_with(path), "{text}");
        }
        stop(&handler, &inbox, thread);
    }

    #[test]
    fn slow_header_trickle_gets_408_and_close() {
        let mut cfg = default_cfg();
        cfg.read_timeout = Duration::from_millis(120);
        let (inbox, handler, thread, addr) = start_echo(cfg);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\nX-Slow:").unwrap();
        let text = read_until_close(&mut stream);
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
        stop(&handler, &inbox, thread);
    }

    #[test]
    fn drain_closes_idle_connections_and_stops() {
        let (inbox, handler, thread, addr) = start_echo(default_cfg());
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /x HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 1024];
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = stream.read(&mut buf).unwrap();
        // Idle keep-alive connection is open; drain must close it and
        // let run() return.
        stop(&handler, &inbox, thread);
        assert_eq!(stream.read(&mut buf).unwrap(), 0, "server closed the idle conn");
    }
}
