//! Minimal epoll/eventfd bindings via `extern "C"` libc symbol
//! declarations — the same zero-dependency idiom the signal handler in
//! `lib.rs` uses. Only the handful of calls the reactor needs are
//! declared; everything is wrapped in RAII types so fds cannot leak.

use std::io;
use std::os::unix::io::RawFd;

/// Readable event.
pub const EPOLLIN: u32 = 0x001;
/// Writable event.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;
const EINTR: i32 = 4;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
/// quirk); naturally aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Event mask (`EPOLLIN | ...`).
    pub events: u32,
    /// Caller-chosen token identifying the fd.
    pub token: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn last_errno() -> io::Error {
    io::Error::last_os_error()
}

/// An epoll instance (closed on drop).
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(last_errno());
        }
        Ok(Epoll { fd })
    }

    /// Register `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest mask of an already-registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    // No explicit deregistration: connections are removed by closing
    // their fd (dropping the `TcpStream`), which the kernel handles.

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent { events: interest, token };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
        if rc < 0 {
            return Err(last_errno());
        }
        Ok(())
    }

    /// Wait for events, retrying on `EINTR` (signals are handled by the
    /// installed flag-setting handlers; an interrupted wait just means
    /// "look at the shutdown flag sooner"). `timeout_ms < 0` blocks
    /// indefinitely. Returns the filled prefix of `events`.
    pub fn wait<'e>(
        &self,
        events: &'e mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<&'e [EpollEvent]> {
        loop {
            let rc = unsafe {
                epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            if rc >= 0 {
                return Ok(&events[..rc as usize]);
            }
            let err = last_errno();
            if err.raw_os_error() == Some(EINTR) {
                // Re-check shutdown promptly rather than re-arming the
                // full timeout.
                return Ok(&events[..0]);
            }
            return Err(err);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// An eventfd used to wake a shard's `epoll_wait` from other threads
/// (acceptor handoffs, worker completions). Closed on drop.
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Create a non-blocking close-on-exec eventfd.
    pub fn new() -> io::Result<Self> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(last_errno());
        }
        Ok(WakeFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Wake the owning shard. A full counter (`EAGAIN`) already means a
    /// wake is pending, so errors are ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Drain pending wakeups (reset the counter). Called by the shard
    /// *before* it takes items from its inboxes, so a producer that
    /// enqueues after the drain leaves a fresh wake behind; a stale
    /// extra wake is harmless.
    pub fn drain(&self) {
        let mut counter = [0u8; 8];
        unsafe { read(self.fd, counter.as_mut_ptr(), 8) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_readable_listener() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(listener.as_raw_fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent { events: 0, token: 0 }; 8];
        // Nothing pending yet.
        let ready = epoll.wait(&mut events, 0).unwrap();
        assert!(ready.is_empty());
        let _client = std::net::TcpStream::connect(addr).unwrap();
        let ready = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        let token = ready[0].token;
        assert_eq!(token, 7);
    }

    #[test]
    fn wakefd_wakes_and_drains() {
        let epoll = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        epoll.add(wake.raw(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent { events: 0, token: 0 }; 4];
        assert!(epoll.wait(&mut events, 0).unwrap().is_empty());
        wake.wake();
        wake.wake();
        let ready = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        wake.drain();
        // Drained: level-triggered poll goes quiet again.
        assert!(epoll.wait(&mut events, 0).unwrap().is_empty());
    }
}
