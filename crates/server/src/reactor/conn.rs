//! Per-connection state owned by exactly one reactor shard: the
//! growable read buffer the incremental parser scans, the ordered
//! response slots that keep pipelined replies in request order, and the
//! pending write backlog.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::Instant;

/// One in-flight request's reserved position in the response order.
/// Slots are appended as requests finish parsing and filled (possibly
/// out of order) as workers complete; writes drain strictly from the
/// front, so a response is never sent before all its predecessors.
pub struct Slot {
    /// Dispatch sequence number within this connection (diagnostic).
    pub seq: u64,
    /// The rendered response, once the worker (or an inline error
    /// path) has produced it.
    pub response: Option<Vec<u8>>,
    /// Close the connection after this response flushes (negotiated
    /// `Connection: close`, protocol error, or drain).
    pub close_after: bool,
}

/// A connection owned by a shard.
pub struct Conn {
    /// The non-blocking stream.
    pub stream: TcpStream,
    /// Shard-unique monotonic token — also the epoll token, so a
    /// recycled fd can never be confused with its predecessor.
    pub token: u64,
    /// Bytes read but not yet consumed by the parser. `read_pos` marks
    /// the consumed prefix; the buffer is compacted opportunistically
    /// instead of draining per request (pipelined bursts would make
    /// `Vec::drain` quadratic).
    pub read_buf: Vec<u8>,
    /// Consumed prefix of `read_buf`.
    pub read_pos: usize,
    /// Rendered-but-unwritten bytes (socket buffer was full).
    pub write_buf: Vec<u8>,
    /// Written prefix of `write_buf`.
    pub write_pos: usize,
    /// In-flight and completed-but-unflushed responses, request order.
    pub slots: VecDeque<Slot>,
    /// Next request sequence number on this connection.
    pub next_seq: u64,
    /// Deadline for completing the currently-buffered partial request;
    /// armed only while an incomplete request sits in `read_buf`
    /// (slowloris defense), disarmed when the buffer is empty.
    pub read_deadline: Option<Instant>,
    /// Reads are paused: at the pipeline cap, poisoned by a protocol
    /// error, or draining. No further requests will be parsed.
    pub closing: bool,
    /// Close the socket once every queued response has flushed.
    pub close_when_flushed: bool,
    /// Interest mask currently registered with epoll.
    pub interest: u32,
    /// Requests served on this connection (diagnostic).
    pub served: u64,
}

impl Conn {
    /// Wrap a freshly accepted stream.
    pub fn new(stream: TcpStream, token: u64) -> Self {
        Conn {
            stream,
            token,
            read_buf: Vec::new(),
            read_pos: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            slots: VecDeque::new(),
            next_seq: 0,
            read_deadline: None,
            closing: false,
            close_when_flushed: false,
            interest: 0,
            served: 0,
        }
    }

    /// The unparsed window of the read buffer.
    pub fn unparsed(&self) -> &[u8] {
        &self.read_buf[self.read_pos..]
    }

    /// Mark `n` more bytes as consumed and compact once the parsed
    /// prefix dominates the buffer (amortized O(1) per byte).
    pub fn consume(&mut self, n: usize) {
        self.read_pos += n;
        if self.read_pos == self.read_buf.len() {
            self.read_buf.clear();
            self.read_pos = 0;
        } else if self.read_pos > 4096 && self.read_pos * 2 >= self.read_buf.len() {
            self.read_buf.drain(..self.read_pos);
            self.read_pos = 0;
        }
    }

    /// Reserve the next response slot, returning its sequence number.
    pub fn push_slot(&mut self, close_after: bool) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back(Slot { seq, response: None, close_after });
        seq
    }

    /// Fill the slot with sequence `seq`. Returns false if the slot is
    /// gone (connection already poisoned past it).
    pub fn fill_slot(&mut self, seq: u64, response: Vec<u8>) -> bool {
        match self.slots.iter_mut().find(|s| s.seq == seq) {
            Some(slot) => {
                slot.response = Some(response);
                true
            }
            None => false,
        }
    }

    /// Move every leading completed slot into the write backlog —
    /// responses leave in request order no matter how workers finished.
    /// Returns true if the connection should close once the backlog
    /// flushes.
    pub fn collect_ready(&mut self) -> bool {
        while let Some(front) = self.slots.front() {
            if front.response.is_none() {
                break;
            }
            let slot = self.slots.pop_front().expect("front exists");
            self.write_buf
                .extend_from_slice(slot.response.as_deref().expect("checked Some"));
            self.served += 1;
            if slot.close_after {
                self.close_when_flushed = true;
                self.closing = true;
                break;
            }
        }
        self.close_when_flushed
    }

    /// Unwritten response bytes.
    pub fn pending_write(&self) -> &[u8] {
        &self.write_buf[self.write_pos..]
    }

    /// Mark `n` response bytes as written; clears the backlog when it
    /// fully drains.
    pub fn advance_write(&mut self, n: usize) {
        self.write_pos += n;
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
    }

    /// Whether all queued responses have been written out.
    pub fn flushed(&self) -> bool {
        self.write_pos == self.write_buf.len()
    }

    /// Whether the connection has no in-flight requests.
    pub fn idle(&self) -> bool {
        self.slots.is_empty() && self.flushed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_conn() -> Conn {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        Conn::new(stream, 1)
    }

    #[test]
    fn responses_flush_in_request_order() {
        let mut conn = test_conn();
        let a = conn.push_slot(false);
        let b = conn.push_slot(false);
        let c = conn.push_slot(false);
        // Workers finish out of order: c, a, b.
        assert!(conn.fill_slot(c, b"C".to_vec()));
        assert!(!conn.collect_ready());
        assert!(conn.pending_write().is_empty(), "c must wait for a and b");
        assert!(conn.fill_slot(a, b"A".to_vec()));
        conn.collect_ready();
        assert_eq!(conn.pending_write(), b"A");
        assert!(conn.fill_slot(b, b"B".to_vec()));
        conn.collect_ready();
        assert_eq!(conn.pending_write(), b"ABC");
        assert_eq!(conn.slots.len(), 0);
    }

    #[test]
    fn close_after_stops_collection() {
        let mut conn = test_conn();
        let a = conn.push_slot(true);
        let b = conn.push_slot(false);
        conn.fill_slot(a, b"A".to_vec());
        conn.fill_slot(b, b"B".to_vec());
        assert!(conn.collect_ready());
        // Only the closing response is queued; the one after never ships.
        assert_eq!(conn.pending_write(), b"A");
        assert!(conn.close_when_flushed);
    }

    #[test]
    fn consume_compacts_large_parsed_prefixes() {
        let mut conn = test_conn();
        conn.read_buf = vec![7u8; 10_000];
        conn.consume(6_000);
        assert_eq!(conn.read_pos, 0, "dominant prefix compacts");
        assert_eq!(conn.unparsed().len(), 4_000);
        conn.consume(4_000);
        assert!(conn.read_buf.is_empty(), "fully consumed buffer resets");
    }
}
