//! The analysis daemon: a long-lived HTTP service over the
//! [`pipeline::api`] facade.
//!
//! Batch runs pay corpus fingerprinting and index construction on every
//! invocation; the daemon pays them once at startup and then serves
//! scans and clone checks from warm shared state (§5.5's "Execution
//! Time" challenge, applied to interactive use). Architecture:
//!
//! * one [`AnalysisEngine`] behind an `Arc` — immutable warm state
//!   (checker, fingerprint corpus + N-gram index, content-addressed CPG
//!   cache) shared by every worker,
//! * a sharded epoll reactor (Linux; see [`reactor`]) — one acceptor
//!   thread hands connections round-robin to N shard threads, each
//!   running an event loop with non-blocking reads, an incremental
//!   zero-copy HTTP/1.1 parser, keep-alive and pipelining with a
//!   bounded in-flight depth, and responses written in request order.
//!   Non-Linux targets fall back to the original blocking
//!   accept-then-dispatch loop,
//! * bounded per-shard [`WorkerPool`]s (`pipeline::par`) running the
//!   analysis — overload is shed at the edge with HTTP 429 instead of
//!   queueing without bound,
//! * cooperative per-request timeouts inside the engine (HTTP 504),
//! * graceful shutdown: SIGTERM/`POST /shutdown` stop the accept loop,
//!   in-flight requests drain, shards and workers join.
//!
//! Endpoints (JSON bodies use the wire format of [`pipeline::api`]):
//!
//! | Method | Path                   | Purpose                                |
//! |--------|------------------------|----------------------------------------|
//! | POST   | `/v1/scan`             | CCC detectors over a snippet           |
//! | POST   | `/v1/clone-check`      | CCD match against the warm corpus      |
//! | POST   | `/v1/analyze`          | either request kind                    |
//! | POST   | `/v1/batch`            | array of requests, per-item results    |
//! | GET    | `/v1/index/status`     | corpus generation, shards, cache rates |
//! | POST   | `/v1/index/insert`     | add a document to the warm corpus      |
//! | POST   | `/v1/index/compact`    | commit deltas as a snapshot generation |
//! | GET    | `/health`              | liveness + corpus size                 |
//! | GET    | `/telemetry`           | telemetry snapshot (run-report schema) |
//! | GET    | `/metrics`             | Prometheus text exposition             |
//! | GET    | `/debug/traces/recent` | summaries of recent traces             |
//! | GET    | `/debug/trace/<id>`    | one span tree (`?format=chrome` too)   |
//! | POST   | `/shutdown`            | graceful stop                          |
//!
//! Every response — including 400/408/413/429/503 error paths — carries
//! `X-Trace-Id` and `X-Request-Id` headers (adopted from the request
//! when parseable, minted otherwise), and every request lands in the
//! structured access log (see [`accesslog`]) keyed by those ids.

#![warn(missing_docs)]

pub mod accesslog;
pub mod breaker;
pub mod client;
pub mod http;
#[cfg(target_os = "linux")]
pub mod reactor;

use accesslog::{AccessLog, AccessRecord};
use breaker::{BreakerConfig, CircuitBreaker};
use http::{read_request, respond, HttpError, Request};
use pipeline::api::{error_to_json, AnalysisRequest, AnalysisResponse, TraceContext};
use pipeline::par::{PoolFull, PoolMonitor, WorkerPool};
use pipeline::AnalysisEngine;
use solidity::AnalysisError;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::trace::{self, TraceId};

/// Service configuration (the analysis side lives in
/// [`pipeline::api::AnalysisConfig`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving requests (split across reactor shards).
    pub workers: usize,
    /// Maximum pending (accepted but unserved) requests before the
    /// service sheds load with 429 (split across reactor shards).
    pub queue_capacity: usize,
    /// Reactor shard threads; `0` picks `min(available cores, 4)`,
    /// clamped so a shard never exists without a worker or queue slot.
    pub shards: usize,
    /// How long a partial request may trickle in before the connection
    /// is answered 408 and closed (slowloris bound), in milliseconds.
    pub read_timeout_ms: u64,
    /// Maximum pipelined requests in flight per connection; reads pause
    /// (TCP backpressure) while a connection is at the cap.
    pub max_pipeline: usize,
    /// Per-endpoint circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// JSONL access-log path (`None` disables access logging).
    pub access_log: Option<PathBuf>,
    /// Slow-request log path (requires `access_log`).
    pub slow_log: Option<PathBuf>,
    /// Requests at least this slow are flagged `"slow":true` and teed to
    /// the slow log.
    pub slow_ms: u64,
    /// Trigger a background compaction once the corpus delta count
    /// crosses this threshold (`None` disables — compaction stays
    /// manual via `POST /v1/index/compact`).
    pub compact_after: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            queue_capacity: 256,
            shards: 0,
            read_timeout_ms: 10_000,
            max_pipeline: 32,
            breaker: BreakerConfig::default(),
            access_log: None,
            slow_log: None,
            slow_ms: 500,
            compact_after: None,
        }
    }
}

/// A cloneable handle that stops a running server's accept loop.
#[derive(Debug, Clone, Default)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Request a graceful shutdown.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by this handle or a signal).
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst) || signal_stop_requested()
    }
}

static SIGNAL_STOP: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been delivered.
pub fn signal_stop_requested() -> bool {
    SIGNAL_STOP.load(Ordering::SeqCst)
}

/// Install SIGTERM/SIGINT handlers that flip the shutdown flag, turning
/// `kill -TERM` into a graceful drain. Uses the C `signal` entry point
/// directly (std already links libc), so no extra dependency is needed.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// No-op on non-Unix targets.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// Per-endpoint circuit breakers for the four analysis endpoints and the
/// index-management surface.
struct Breakers {
    scan: CircuitBreaker,
    clone_check: CircuitBreaker,
    analyze: CircuitBreaker,
    batch: CircuitBreaker,
    index: CircuitBreaker,
}

impl Breakers {
    fn new(config: BreakerConfig) -> Breakers {
        Breakers {
            scan: CircuitBreaker::new(config),
            clone_check: CircuitBreaker::new(config),
            analyze: CircuitBreaker::new(config),
            batch: CircuitBreaker::new(config),
            index: CircuitBreaker::new(config),
        }
    }
}

/// Shared immutable state handed to every worker.
struct ServiceState {
    engine: Arc<AnalysisEngine>,
    shutdown: ShutdownHandle,
    workers: usize,
    queue_capacity: usize,
    shards: usize,
    breakers: Breakers,
    /// Health views of the per-shard worker pools; empty only in unit
    /// tests that exercise routing without a pool.
    pools: Vec<PoolMonitor>,
    /// Structured access log; `None` disables logging.
    access_log: Option<AccessLog>,
    /// Delta threshold for background auto-compaction (`None` = off).
    compact_after: Option<u64>,
}

impl ServiceState {
    fn pool_respawns(&self) -> u64 {
        self.pools.iter().map(PoolMonitor::respawns).sum()
    }

    fn pool_queued(&self) -> usize {
        self.pools.iter().map(PoolMonitor::queue_len).sum()
    }
}

static ACCEPTED: telemetry::Counter = telemetry::Counter::new("server.accepted");
static SHED: telemetry::Counter = telemetry::Counter::new("server.shed");

const OVERLOADED_BODY: &str = "{\"v\":1,\"kind\":\"error\",\"code\":\"overloaded\",\
     \"message\":\"request queue is full\"}";

/// The analysis daemon: listener + reactor shards + per-shard worker
/// pools + warm engine.
pub struct Server {
    listener: TcpListener,
    pools: Vec<Arc<WorkerPool>>,
    state: Arc<ServiceState>,
    read_timeout: Duration,
    max_pipeline: usize,
}

/// Shard count actually used: the configured value (or
/// `min(cores, 4)` when 0), clamped so every shard has at least one
/// worker and one queue slot — a `workers: 1, queue_capacity: 1` config
/// keeps its strict single-lane shedding semantics.
fn effective_shards(config: &ServerConfig) -> usize {
    let auto = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4);
    let requested = if config.shards > 0 { config.shards } else { auto };
    requested
        .min(config.workers.max(1))
        .min(config.queue_capacity.max(1))
        .max(1)
}

impl Server {
    /// Bind the service. `addr` accepts anything `TcpListener::bind`
    /// does; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub fn bind(
        addr: &str,
        config: ServerConfig,
        engine: Arc<AnalysisEngine>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let shard_count = effective_shards(&config);
        let per_workers = (config.workers / shard_count).max(1);
        let per_capacity = (config.queue_capacity / shard_count).max(1);
        let pools: Vec<Arc<WorkerPool>> = (0..shard_count)
            .map(|_| Arc::new(WorkerPool::new(per_workers, per_capacity)))
            .collect();
        let access_log = match &config.access_log {
            Some(path) => Some(AccessLog::open(
                path,
                config.slow_log.as_deref(),
                config.slow_ms,
            )?),
            None => None,
        };
        let state = Arc::new(ServiceState {
            engine,
            shutdown: ShutdownHandle::default(),
            workers: config.workers,
            queue_capacity: config.queue_capacity,
            shards: shard_count,
            breakers: Breakers::new(config.breaker),
            pools: pools.iter().map(|p| p.monitor()).collect(),
            access_log,
            compact_after: config.compact_after,
        });
        Ok(Server {
            listener,
            pools,
            state,
            read_timeout: Duration::from_millis(config.read_timeout_ms.max(1)),
            max_pipeline: config.max_pipeline.max(1),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the accept loop from another thread (or from
    /// the `POST /shutdown` endpoint).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.state.shutdown.clone()
    }

    /// Serve until shutdown is requested, then drain in-flight requests
    /// and join shards and workers.
    pub fn run(self) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            self.run_reactor()
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.run_blocking()
        }
    }

    /// The sharded event-loop transport: shard threads own connections,
    /// one acceptor distributes them round-robin through the shard
    /// inboxes.
    #[cfg(target_os = "linux")]
    fn run_reactor(self) -> io::Result<()> {
        use reactor::{Shard, ShardConfig, ShardInbox};
        let shard_cfg =
            ShardConfig { read_timeout: self.read_timeout, max_pipeline: self.max_pipeline };
        let mut inboxes = Vec::with_capacity(self.pools.len());
        let mut threads = Vec::with_capacity(self.pools.len());
        for (id, pool) in self.pools.iter().enumerate() {
            let inbox = ShardInbox::new()?;
            let handler = Arc::new(ShardService {
                state: Arc::clone(&self.state),
                pool: Arc::clone(pool),
                inbox: Arc::clone(&inbox),
                read_timeout: self.read_timeout,
            });
            let shard = Shard::new(id, Arc::clone(&inbox), handler, shard_cfg)?;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("shard-{id}"))
                    .spawn(move || shard.run())?,
            );
            inboxes.push(inbox);
        }
        self.listener.set_nonblocking(true)?;
        let mut next = 0usize;
        let mut accept_error = None;
        while !self.state.shutdown.is_shutdown() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    ACCEPTED.incr();
                    inboxes[next % inboxes.len()].hand_off(stream);
                    next += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => {
                    accept_error = Some(e);
                    self.state.shutdown.shutdown();
                    break;
                }
            }
        }
        // Graceful drain: wake every shard so it notices the flag,
        // serves what is in flight, closes its connections, and exits.
        for inbox in &inboxes {
            inbox.notify();
        }
        for thread in threads {
            match thread.join() {
                Ok(result) => result?,
                Err(_) => {
                    return Err(io::Error::other("reactor shard panicked"));
                }
            }
        }
        // All connections are gone, so every dispatched job has
        // completed; join the workers.
        for pool in self.pools {
            if let Some(pool) = Arc::into_inner(pool) {
                pool.shutdown();
            }
        }
        match accept_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The original blocking accept-then-dispatch transport, kept as
    /// the fallback for non-Linux targets (one request per connection,
    /// `Connection: close`).
    #[cfg_attr(target_os = "linux", allow(dead_code))]
    fn run_blocking(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let pool = &self.pools[0];
        while !self.state.shutdown.is_shutdown() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    ACCEPTED.incr();
                    // A duplicate handle so load shedding can still
                    // answer after the job (owning the original) is
                    // refused and dropped.
                    let reject_handle = stream.try_clone().ok();
                    let state = Arc::clone(&self.state);
                    let submitted =
                        pool.try_submit(move || handle_connection(stream, &state));
                    if let Err(PoolFull(job)) = submitted {
                        drop(job);
                        SHED.incr();
                        if let Some(mut stream) = reject_handle {
                            let started = Instant::now();
                            let _ = stream.set_nonblocking(false);
                            // Drain the request before answering: closing
                            // with unread data makes the kernel send RST,
                            // which would destroy the 429 in flight.
                            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                            let request = read_request(&mut stream);
                            // Shed requests still get correlatable ids,
                            // RED metrics and an access-log line — refused
                            // load must not vanish without a trace.
                            let ids = match &request {
                                Ok(request) => RequestIds::from_request(request),
                                Err(_) => RequestIds::fresh(),
                            };
                            respond(
                                &mut stream,
                                429,
                                "application/json",
                                OVERLOADED_BODY,
                                &ids.headers(),
                            );
                            let (method, path) = match &request {
                                Ok(r) => (r.method.clone(), r.path.clone()),
                                Err(_) => ("?".to_string(), "?".to_string()),
                            };
                            observe_request(&path, 429, started.elapsed());
                            log_access(
                                &self.state,
                                &ids,
                                &method,
                                &path,
                                429,
                                started.elapsed(),
                                "shed",
                                OVERLOADED_BODY.len(),
                            );
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // Graceful drain: queued connections are still served.
        for pool in self.pools {
            if let Some(pool) = Arc::into_inner(pool) {
                pool.shutdown();
            }
        }
        Ok(())
    }
}

/// The per-shard service half of the reactor: routes parsed requests to
/// this shard's worker pool, sheds with 429 when the pool is full, and
/// renders the protocol-level error classes.
#[cfg(target_os = "linux")]
struct ShardService {
    state: Arc<ServiceState>,
    pool: Arc<WorkerPool>,
    inbox: Arc<reactor::ShardInbox>,
    read_timeout: Duration,
}

#[cfg(target_os = "linux")]
impl reactor::ShardHandler for ShardService {
    fn handle(
        &self,
        view: &http::ReqView<'_>,
        token: u64,
        seq: u64,
        keep_alive: bool,
    ) -> reactor::Dispatch {
        let started = Instant::now();
        let ids = RequestIds::from_view(view);
        let request = view.to_request_lean();
        let state = Arc::clone(&self.state);
        let inbox = Arc::clone(&self.inbox);
        let submitted = self.pool.try_submit(move || {
            // First statement: arm the completion guard so a panic
            // anywhere below still reports (and fails) the connection.
            let guard = reactor::CompletionGuard::new(inbox, token, seq);
            let bytes = run_request(&state, &request, &ids, keep_alive, started);
            guard.send(bytes);
        });
        match submitted {
            Ok(()) => reactor::Dispatch::Submitted,
            Err(PoolFull(job)) => {
                // The job never ran, so its guard was never armed —
                // dropping it sends nothing; the shed response below
                // fills the reserved slot instead. The request is
                // already fully parsed (drained), so the 429 cannot be
                // destroyed by an RST.
                drop(job);
                SHED.incr();
                let ids = RequestIds::from_view(view);
                let bytes = http::render_response(
                    429,
                    JSON,
                    OVERLOADED_BODY,
                    &ids.headers(),
                    keep_alive,
                );
                observe_request(view.path, 429, started.elapsed());
                log_access(
                    &self.state,
                    &ids,
                    view.method,
                    view.path,
                    429,
                    started.elapsed(),
                    "shed",
                    OVERLOADED_BODY.len(),
                );
                reactor::Dispatch::Inline(bytes)
            }
        }
    }

    fn protocol_error(&self, err: &HttpError) -> Vec<u8> {
        let ids = RequestIds::fresh();
        let (status, body) = match err {
            HttpError::TooLarge => (413, error_body("too_large", "request too large")),
            HttpError::Malformed(m) => (400, error_body("bad_request", m)),
            HttpError::Io(m) => (400, error_body("bad_request", m)),
        };
        observe_request("?", status, Duration::ZERO);
        log_access(&self.state, &ids, "?", "?", status, Duration::ZERO, "error", body.len());
        http::render_response(status, JSON, &body, &ids.headers(), false)
    }

    fn read_timeout_response(&self) -> Vec<u8> {
        let ids = RequestIds::fresh();
        let body =
            error_body("timeout", "request did not arrive within the read deadline");
        observe_request("?", 408, self.read_timeout);
        log_access(&self.state, &ids, "?", "?", 408, self.read_timeout, "timeout", body.len());
        http::render_response(408, JSON, &body, &ids.headers(), false)
    }

    fn draining(&self) -> bool {
        self.state.shutdown.is_shutdown()
    }

    fn on_tick(&self, shard_id: usize, conns: usize, inflight: usize) {
        if !telemetry::enabled() {
            return;
        }
        telemetry::gauge_set(&format!("server.shard_conns|shard={shard_id}"), conns as u64);
        telemetry::gauge_set(
            &format!("server.shard_inflight|shard={shard_id}"),
            inflight as u64,
        );
    }
}

/// Run one request end to end on a worker thread: trace, chaos hook,
/// route, render, metrics, access log. Returns the rendered response
/// bytes for the shard to write in pipeline order.
#[cfg(target_os = "linux")]
fn run_request(
    state: &ServiceState,
    request: &Request,
    ids: &RequestIds,
    keep_alive: bool,
    started: Instant,
) -> Vec<u8> {
    // Open the request's trace (inert when tracing is off). The stage
    // spans below — parse, cpg-build, query-eval, detector and matcher
    // spans — attach to it through the thread-local.
    let trace_guard = trace::start(ids.trace, "request");
    trace::annotate("method", &request.method);
    trace::annotate("path", &request.path);
    trace::annotate("request_id", &ids.request_id);
    // Chaos hook at the service edge, after the request is fully parsed
    // (answering earlier would RST the peer's in-flight write). Injected
    // errors answer with a typed 500; injected *panics* unwind through
    // this function, killing the worker — the completion guard fails the
    // connection and the pool's respawn sentinel replaces the worker,
    // exactly the failure the client's retry policy exists for.
    let (status, content_type, body) = match faultinject::fire("server/request") {
        Some(message) => (500, JSON, error_body("internal", &message)),
        None => route(request, state),
    };
    trace::annotate("status", status);
    if status >= 500 {
        trace::mark_error();
    }
    // Finish and buffer the trace *before* the response ships, so a
    // client can immediately GET /debug/trace/<the-echoed-id>.
    drop(trace_guard);
    let bytes = http::render_response(status, content_type, &body, &ids.headers(), keep_alive);
    let elapsed = started.elapsed();
    observe_request(&request.path, status, elapsed);
    log_access(
        state,
        ids,
        &request.method,
        &request.path,
        status,
        elapsed,
        outcome_of(status, &body),
        body.len(),
    );
    bytes
}

/// The ids every response carries: the trace id (adopted from a
/// parseable `X-Trace-Id` header, minted otherwise) and a request id
/// (adopted from `X-Request-Id`, minted otherwise). Both are minted
/// lazily from a cheap process-local stream, so the ids exist — and are
/// echoed — even when tracing is disabled.
struct RequestIds {
    trace: TraceId,
    trace_hex: String,
    request_id: String,
}

impl RequestIds {
    fn new(trace: TraceId, request_id: String) -> RequestIds {
        RequestIds { trace, trace_hex: trace.to_hex(), request_id }
    }

    fn from_request(request: &Request) -> RequestIds {
        let trace = request
            .header("x-trace-id")
            .and_then(TraceId::from_hex)
            .unwrap_or_else(trace::new_trace_id);
        let request_id = request
            .header("x-request-id")
            .map(sanitize_id)
            .filter(|id| !id.is_empty())
            .unwrap_or_else(|| trace::new_trace_id().to_hex());
        RequestIds::new(trace, request_id)
    }

    /// Same adoption logic as [`RequestIds::from_request`], but reading
    /// the zero-copy view (no header materialization on the hot path).
    #[cfg(target_os = "linux")]
    fn from_view(view: &http::ReqView<'_>) -> RequestIds {
        let trace = view
            .header("X-Trace-Id")
            .and_then(TraceId::from_hex)
            .unwrap_or_else(trace::new_trace_id);
        let request_id = view
            .header("X-Request-Id")
            .map(sanitize_id)
            .filter(|id| !id.is_empty())
            .unwrap_or_else(|| trace::new_trace_id().to_hex());
        RequestIds::new(trace, request_id)
    }

    fn fresh() -> RequestIds {
        RequestIds::new(trace::new_trace_id(), trace::new_trace_id().to_hex())
    }

    fn trace_hex(&self) -> &str {
        &self.trace_hex
    }

    fn headers(&self) -> [(&'static str, &str); 2] {
        [("X-Trace-Id", &self.trace_hex), ("X-Request-Id", &self.request_id)]
    }
}

/// Clamp a caller-supplied request id to something loggable: printable
/// ASCII, 64 chars max.
fn sanitize_id(raw: &str) -> String {
    raw.chars()
        .filter(|c| c.is_ascii_graphic())
        .take(64)
        .collect()
}

/// Classify a response for the access log's `outcome` field.
fn outcome_of(status: u16, body: &str) -> &'static str {
    match status {
        200..=399 => "ok",
        408 => "timeout",
        429 => "shed",
        503 if body.contains("\"code\":\"breaker_open\"") => "breaker_open",
        504 => "timeout",
        _ => "error",
    }
}

/// Bounded endpoint label for RED metrics: known routes keep their path,
/// the trace-by-id route collapses to one label, everything else is
/// `other` (an attacker scanning paths must not mint unbounded metric
/// names).
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/v1/scan" => "/v1/scan",
        "/v1/clone-check" => "/v1/clone-check",
        "/v1/analyze" => "/v1/analyze",
        "/v1/batch" => "/v1/batch",
        "/v1/index/status" => "/v1/index/status",
        "/v1/index/insert" => "/v1/index/insert",
        "/v1/index/compact" => "/v1/index/compact",
        "/health" => "/health",
        "/telemetry" => "/telemetry",
        "/metrics" => "/metrics",
        "/shutdown" => "/shutdown",
        "/debug/traces/recent" => "/debug/traces/recent",
        _ if path.starts_with("/debug/trace/") => "/debug/trace",
        _ => "other",
    }
}

/// Record the RED metrics of one request: a counter per endpoint ×
/// status class and a log-linear latency histogram per endpoint.
fn observe_request(path: &str, status: u16, elapsed: Duration) {
    if !telemetry::enabled() {
        return;
    }
    let endpoint = endpoint_label(path);
    let class = match status {
        200..=299 => "2xx",
        300..=399 => "3xx",
        400..=499 => "4xx",
        _ => "5xx",
    };
    telemetry::counter_add(
        &format!("http.requests|endpoint={endpoint}|status={class}"),
        1,
    );
    telemetry::duration_observe_us(
        &format!("http.request_duration_us|endpoint={endpoint}"),
        elapsed.as_micros().min(u64::MAX as u128) as u64,
    );
}

#[allow(clippy::too_many_arguments)]
fn log_access(
    state: &ServiceState,
    ids: &RequestIds,
    method: &str,
    path: &str,
    status: u16,
    elapsed: Duration,
    outcome: &'static str,
    body_bytes: usize,
) {
    let Some(log) = &state.access_log else { return };
    log.record(&AccessRecord {
        trace_id: ids.trace_hex().to_string(),
        request_id: ids.request_id.clone(),
        method: method.to_string(),
        path: path.to_string(),
        status,
        dur_us: elapsed.as_micros().min(u64::MAX as u128) as u64,
        outcome,
        body_bytes,
    });
}

#[cfg_attr(target_os = "linux", allow(dead_code))]
fn handle_connection(mut stream: TcpStream, state: &ServiceState) {
    let started = Instant::now();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    match read_request(&mut stream) {
        Ok(request) => {
            let ids = RequestIds::from_request(&request);
            let trace_guard = trace::start(ids.trace, "request");
            trace::annotate("method", &request.method);
            trace::annotate("path", &request.path);
            trace::annotate("request_id", &ids.request_id);
            let (status, content_type, body) = match faultinject::fire("server/request") {
                Some(message) => (500, "application/json", error_body("internal", &message)),
                None => route(&request, state),
            };
            trace::annotate("status", status);
            if status >= 500 {
                trace::mark_error();
            }
            drop(trace_guard);
            respond(&mut stream, status, content_type, &body, &ids.headers());
            let elapsed = started.elapsed();
            observe_request(&request.path, status, elapsed);
            log_access(
                state,
                &ids,
                &request.method,
                &request.path,
                status,
                elapsed,
                outcome_of(status, &body),
                body.len(),
            );
        }
        Err(HttpError::TooLarge) => {
            let ids = RequestIds::fresh();
            let body = error_body("too_large", "request too large");
            respond(&mut stream, 413, "application/json", &body, &ids.headers());
            observe_request("?", 413, started.elapsed());
            log_access(state, &ids, "?", "?", 413, started.elapsed(), "error", body.len());
        }
        Err(HttpError::Malformed(m)) => {
            let ids = RequestIds::fresh();
            let body = error_body("bad_request", &m);
            respond(&mut stream, 400, "application/json", &body, &ids.headers());
            observe_request("?", 400, started.elapsed());
            log_access(state, &ids, "?", "?", 400, started.elapsed(), "error", body.len());
        }
        // The peer vanished; nothing to answer.
        Err(HttpError::Io(_)) => {}
    }
}

fn error_body(code: &str, message: &str) -> String {
    format!(
        "{{\"v\":1,\"kind\":\"error\",\"code\":\"{}\",\"message\":\"{}\"}}",
        code,
        pipeline::api::escape_json(message)
    )
}

const JSON: &str = "application/json";
/// Prometheus exposition content type (format 0.0.4).
const PROM: &str = "text/plain; version=0.0.4";

fn route(request: &Request, state: &ServiceState) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => (
            200,
            JSON,
            format!(
                "{{\"status\":\"ok\",\"v\":1,\"corpus\":{},\"workers\":{},\"queue_capacity\":{},\
                 \"shards\":{},\"pool\":{{\"respawns\":{},\"queued\":{}}},\
                 \"breakers\":{{\"scan\":\"{}\",\"clone_check\":\"{}\",\"analyze\":\"{}\",\
                 \"batch\":\"{}\",\"index\":\"{}\"}}}}",
                state.engine.corpus_len(),
                state.workers,
                state.queue_capacity,
                state.shards,
                state.pool_respawns(),
                state.pool_queued(),
                state.breakers.scan.state_name(),
                state.breakers.clone_check.state_name(),
                state.breakers.analyze.state_name(),
                state.breakers.batch.state_name(),
                state.breakers.index.state_name(),
            ),
        ),
        ("GET", "/telemetry") => {
            refresh_gauges(state);
            (200, JSON, telemetry::snapshot().to_json())
        }
        ("GET", "/metrics") => {
            refresh_gauges(state);
            (200, PROM, telemetry::prom::render(&telemetry::snapshot()))
        }
        ("GET", "/debug/traces/recent") => {
            let limit = request
                .query_param("limit")
                .and_then(|v| v.parse().ok())
                .unwrap_or(32usize)
                .min(512);
            (200, JSON, trace::recent_json(limit))
        }
        ("GET", path) if path.starts_with("/debug/trace/") => {
            let id_hex = &path["/debug/trace/".len()..];
            let Some(id) = TraceId::from_hex(id_hex) else {
                return (
                    400,
                    JSON,
                    error_body("bad_request", "trace id must be 1-16 hex digits"),
                );
            };
            match trace::find(id) {
                Some(found) => {
                    let body = if request.query_param("format") == Some("chrome") {
                        trace::to_chrome_json(&found)
                    } else {
                        trace::to_json(&found)
                    };
                    (200, JSON, body)
                }
                None => (
                    404,
                    JSON,
                    error_body(
                        "not_found",
                        "no buffered trace with that id (evicted, sampled out, or tracing is off)",
                    ),
                ),
            }
        }
        ("POST", "/shutdown") => {
            state.shutdown.shutdown();
            (200, JSON, "{\"status\":\"shutting_down\"}".to_string())
        }
        ("POST", "/v1/scan") => {
            analyze(request, state, Some(RequestKind::Scan), &state.breakers.scan)
        }
        ("POST", "/v1/clone-check") => {
            analyze(request, state, Some(RequestKind::CloneCheck), &state.breakers.clone_check)
        }
        ("POST", "/v1/analyze") => analyze(request, state, None, &state.breakers.analyze),
        ("POST", "/v1/batch") => batch(request, state),
        ("GET", "/v1/index/status") => index_status(state),
        ("POST", "/v1/index/insert") => index_insert(request, state),
        ("POST", "/v1/index/compact") => index_compact(state),
        (
            _,
            "/health" | "/telemetry" | "/metrics" | "/shutdown" | "/v1/scan" | "/v1/clone-check"
            | "/v1/analyze" | "/v1/batch" | "/v1/index/status" | "/v1/index/insert"
            | "/v1/index/compact" | "/debug/traces/recent",
        ) => (405, JSON, error_body("method_not_allowed", "wrong method for endpoint")),
        (_, path) if path.starts_with("/debug/trace/") => {
            (405, JSON, error_body("method_not_allowed", "wrong method for endpoint"))
        }
        (_, path) => (404, JSON, error_body("not_found", &format!("no such endpoint {path}"))),
    }
}

/// Refresh the point-in-time gauges (pool depth, breaker states,
/// interner size) so a snapshot taken right after reflects live state.
fn refresh_gauges(state: &ServiceState) {
    let (symbols, bytes) = intern::interner_stats();
    telemetry::gauge_set("intern.symbols", symbols as u64);
    telemetry::gauge_set("intern.bytes", bytes as u64);
    telemetry::gauge_set("pool.workers", state.workers as u64);
    telemetry::gauge_set("pool.queue_depth", state.pool_queued() as u64);
    telemetry::gauge_set("pool.respawns", state.pool_respawns());
    telemetry::gauge_set("server.shards", state.shards as u64);
    let corpus = state.engine.corpus_handle();
    telemetry::gauge_set("index.generation", corpus.generation());
    telemetry::gauge_set("index.deltas", corpus.deltas());
    telemetry::gauge_set("index.docs", corpus.len() as u64);
    if let Some(wal) = corpus.wal_stats() {
        telemetry::gauge_set("index.wal_records", wal.records);
        telemetry::gauge_set("index.wal_bytes", wal.bytes);
    }
    telemetry::gauge_set("corpus.auto_compactions", corpus.auto_compactions());
    // Scaled to basis points: gauges are integers, the rate is 0..=1.
    let stats = corpus.front_cache_stats();
    telemetry::gauge_set(
        "index.front_cache_hit_rate_bp",
        (stats.hit_rate() * 10_000.0) as u64,
    );
    for (endpoint, breaker) in [
        ("scan", &state.breakers.scan),
        ("clone_check", &state.breakers.clone_check),
        ("analyze", &state.breakers.analyze),
        ("batch", &state.breakers.batch),
        ("index", &state.breakers.index),
    ] {
        // 1-based so the closed (normal) state still renders: the
        // snapshot omits zero-valued gauges.
        let code = match breaker.state_name() {
            "closed" => 1,
            "open" => 2,
            _ => 3, // half_open
        };
        telemetry::gauge_set(&format!("breaker.state|endpoint={endpoint}"), code);
    }
}

#[derive(PartialEq)]
enum RequestKind {
    Scan,
    CloneCheck,
}

fn analyze(
    request: &Request,
    state: &ServiceState,
    expected: Option<RequestKind>,
    breaker: &CircuitBreaker,
) -> (u16, &'static str, String) {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            return (400, JSON, error_body("bad_request", "request body is not UTF-8"));
        }
    };
    let parsed = match AnalysisRequest::from_json(body) {
        Ok(parsed) => parsed,
        Err(error) => return (status_of(&error), JSON, error_to_json(&error)),
    };
    let kind_matches = match (&parsed, &expected) {
        (_, None) => true,
        (AnalysisRequest::Scan { .. }, Some(RequestKind::Scan)) => true,
        (AnalysisRequest::CloneCheck { .. }, Some(RequestKind::CloneCheck)) => true,
        _ => false,
    };
    if !kind_matches {
        return (
            400,
            JSON,
            error_body("bad_request", "request kind does not match endpoint"),
        );
    }
    // Acquire the breaker only once the request is validated: malformed
    // requests are the caller's fault and must neither consume a
    // half-open probe nor be shed by an open breaker.
    if !breaker.try_acquire() {
        return (
            503,
            JSON,
            error_body("breaker_open", "circuit breaker is open; retry after cooldown"),
        );
    }
    // Carry the ingress trace identity through the facade explicitly.
    // The ingress already opened this thread's trace, so the engine's
    // own root-span open is a no-op — but a programmatic caller going
    // straight through `pipeline::api` gets the same propagation.
    let trace_ctx = TraceContext { trace_id: trace::current_trace_id() };
    let deadline = state.engine.deadline_from_now();
    match state.engine.analyze_traced(&parsed, trace_ctx, deadline) {
        Ok(response) => {
            breaker.record_success();
            (200, JSON, AnalysisResponse::to_json(&response))
        }
        Err(error) => {
            // Only *internal* errors (our fault) count against the
            // breaker; request-caused errors are successes breaker-wise.
            if error.code() == "internal" {
                breaker.record_failure();
            } else {
                breaker.record_success();
            }
            (status_of(&error), JSON, error_to_json(&error))
        }
    }
}

/// `POST /v1/batch`: a JSON array of analysis requests, answered with
/// one result per item in order. Item N's result is byte-identical to
/// what `/v1/analyze` would have returned for the same request (success
/// or typed error), so errors are isolated per item — one hostile
/// snippet fails its slot, not the batch. The batch breaker is acquired
/// once and charged if *any* item fails internally.
fn batch(request: &Request, state: &ServiceState) -> (u16, &'static str, String) {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            return (400, JSON, error_body("bad_request", "request body is not UTF-8"));
        }
    };
    let items = match pipeline::api::batch_from_json(body) {
        Ok(items) => items,
        Err(error) => return (status_of(&error), JSON, error_to_json(&error)),
    };
    if !state.breakers.batch.try_acquire() {
        return (
            503,
            JSON,
            error_body("breaker_open", "circuit breaker is open; retry after cooldown"),
        );
    }
    let mut any_internal = false;
    // Pre-size generously: findings responses run a few hundred bytes.
    let mut out = String::with_capacity(64 + items.len() * 128);
    out.push_str("{\"v\":1,\"kind\":\"batch\",\"results\":[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let result = item.as_ref().map_err(Clone::clone).and_then(|request| {
            let trace_ctx = TraceContext { trace_id: trace::current_trace_id() };
            // Each item gets its own full deadline — a slow item times
            // out alone instead of starving its successors.
            let deadline = state.engine.deadline_from_now();
            state.engine.analyze_traced(request, trace_ctx, deadline)
        });
        match result {
            Ok(response) => out.push_str(&AnalysisResponse::to_json(&response)),
            Err(error) => {
                if error.code() == "internal" {
                    any_internal = true;
                }
                out.push_str(&error_to_json(&error));
            }
        }
    }
    out.push_str("]}");
    if any_internal {
        state.breakers.batch.record_failure();
    } else {
        state.breakers.batch.record_success();
    }
    (200, JSON, out)
}

/// `GET /v1/index/status`: the corpus handle's live lifecycle view —
/// committed snapshot generation, document count, per-shard layout,
/// write-ahead log durability state and front-cache effectiveness.
fn index_status(state: &ServiceState) -> (u16, &'static str, String) {
    let corpus = state.engine.corpus_handle();
    let shards: Vec<String> =
        corpus.shard_layout().iter().map(|n| n.to_string()).collect();
    let stats = corpus.front_cache_stats();
    let wal = corpus.wal_stats().unwrap_or_default();
    (
        200,
        JSON,
        format!(
            "{{\"v\":1,\"kind\":\"index_status\",\"generation\":{},\"docs\":{},\
             \"deltas\":{},\"wal_records\":{},\"wal_bytes\":{},\
             \"replayed_on_boot\":{},\"fsync_policy\":\"{}\",\
             \"auto_compactions\":{},\"shards\":[{}],\"front_cache\":{{\"exact_hits\":{},\
             \"near_hits\":{},\"misses\":{},\"hit_rate\":{:.4}}}}}",
            corpus.generation(),
            corpus.len(),
            corpus.deltas(),
            wal.records,
            wal.bytes,
            corpus.replayed_on_boot(),
            corpus.fsync_policy_name(),
            corpus.auto_compactions(),
            shards.join(","),
            stats.exact_hits,
            stats.near_hits,
            stats.misses,
            stats.hit_rate(),
        ),
    )
}

/// `POST /v1/index/insert`: add one document to the warm corpus without a
/// restart. Body: `{"v":1,"source":"...","id":<optional u64>}` — an
/// omitted id is auto-assigned; the response echoes the indexed id. The
/// document is a *delta* until the next compaction: served from memory,
/// made crash-durable by the write-ahead log when the server runs with a
/// snapshot directory. With `--compact-after N` a successful insert that
/// pushes the delta count over N kicks off a background compaction.
fn index_insert(request: &Request, state: &ServiceState) -> (u16, &'static str, String) {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            return (400, JSON, error_body("bad_request", "request body is not UTF-8"));
        }
    };
    let value = match telemetry::json::parse(body) {
        Ok(value) => value,
        Err(e) => {
            return (400, JSON, error_body("bad_request", &format!("body is not JSON: {e}")));
        }
    };
    match value.get("v").and_then(telemetry::json::Value::as_f64) {
        Some(v) if v == 1.0 => {}
        _ => return (400, JSON, error_body("bad_request", "missing or unsupported \"v\"")),
    }
    let Some(source) = value.get("source").and_then(telemetry::json::Value::as_str) else {
        return (400, JSON, error_body("bad_request", "missing \"source\""));
    };
    let id = value.get("id").and_then(telemetry::json::Value::as_f64).map(|id| id as u64);
    if !state.breakers.index.try_acquire() {
        return (
            503,
            JSON,
            error_body("breaker_open", "circuit breaker is open; retry after cooldown"),
        );
    }
    let corpus = state.engine.corpus_handle();
    match corpus.insert_source(id, source) {
        Ok(doc) => {
            state.breakers.index.record_success();
            if let Some(threshold) = state.compact_after {
                corpus.maybe_auto_compact(threshold);
            }
            (
                200,
                JSON,
                format!(
                    "{{\"v\":1,\"kind\":\"index_inserted\",\"doc\":{doc},\"docs\":{},\
                     \"generation\":{},\"deltas\":{}}}",
                    corpus.len(),
                    corpus.generation(),
                    corpus.deltas(),
                ),
            )
        }
        Err(error) => {
            record_index_outcome(state, &error);
            (status_of(&error), JSON, error_to_json(&error))
        }
    }
}

/// `POST /v1/index/compact`: fold the in-memory deltas into the next
/// snapshot generation on disk. Answers 503 `index_busy` while another
/// compaction is in flight and 400 when the server runs without a
/// snapshot directory.
fn index_compact(state: &ServiceState) -> (u16, &'static str, String) {
    if !state.breakers.index.try_acquire() {
        return (
            503,
            JSON,
            error_body("breaker_open", "circuit breaker is open; retry after cooldown"),
        );
    }
    let corpus = state.engine.corpus_handle();
    match corpus.compact() {
        Ok(generation) => {
            state.breakers.index.record_success();
            (
                200,
                JSON,
                format!(
                    "{{\"v\":1,\"kind\":\"index_compacted\",\"generation\":{generation},\
                     \"docs\":{},\"deltas\":{}}}",
                    corpus.len(),
                    corpus.deltas(),
                ),
            )
        }
        Err(error) => {
            record_index_outcome(state, &error);
            (status_of(&error), JSON, error_to_json(&error))
        }
    }
}

/// Charge the index breaker only for failures that are the service's
/// fault (I/O corruption, internal errors); caller mistakes and the
/// transient busy state are breaker successes, same rule as `analyze`.
fn record_index_outcome(state: &ServiceState, error: &AnalysisError) {
    if matches!(error.code(), "internal" | "index_corrupt") {
        state.breakers.index.record_failure();
    } else {
        state.breakers.index.record_success();
    }
}

/// HTTP status of an analysis error: timeouts are the gateway's fault
/// (504), internal errors and snapshot corruption are ours (500), a
/// snapshot format mismatch is a version conflict (409), a busy index
/// asks for retry (503), everything else is the request's fault (400).
fn status_of(error: &AnalysisError) -> u16 {
    match error.code() {
        "timeout" => 504,
        "internal" | "index_corrupt" => 500,
        "index_version" => 409,
        "index_busy" => 503,
        _ => 400,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::api::AnalysisConfig;

    fn state() -> Arc<ServiceState> {
        Arc::new(ServiceState {
            engine: Arc::new(AnalysisEngine::new(AnalysisConfig::default())),
            shutdown: ShutdownHandle::default(),
            workers: 1,
            queue_capacity: 1,
            shards: 1,
            breakers: Breakers::new(BreakerConfig::default()),
            pools: Vec::new(),
            access_log: None,
            compact_after: None,
        })
    }

    fn get(path: &str) -> Request {
        Request { method: "GET".into(), path: path.into(), ..Request::default() }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            body: body.as_bytes().to_vec(),
            ..Request::default()
        }
    }

    #[test]
    fn routes_health_and_404() {
        let state = state();
        let (status, _, body) = route(&get("/health"), &state);
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
        assert!(body.contains("\"shards\":1"), "{body}");
        assert!(body.contains("\"batch\":\"closed\""), "{body}");
        let (status, _, _) = route(&get("/nope"), &state);
        assert_eq!(status, 404);
        let (status, _, _) = route(
            &Request { method: "DELETE".into(), path: "/health".into(), ..Request::default() },
            &state,
        );
        assert_eq!(status, 405);
    }

    #[test]
    fn scan_endpoint_rejects_clone_check_kind() {
        let state = state();
        let body = AnalysisRequest::clone_check("contract C {}").to_json();
        let (status, _, _) = route(&post("/v1/scan", &body), &state);
        assert_eq!(status, 400);
    }

    #[test]
    fn malformed_body_is_a_400() {
        let state = state();
        let (status, _, body) = route(&post("/v1/scan", "{not json"), &state);
        assert_eq!(status, 400);
        assert!(body.contains("\"code\":\"invalid_request\""), "{body}");
    }

    #[test]
    fn scan_returns_findings_json() {
        let state = state();
        let body =
            AnalysisRequest::scan("function f(address to) public { to.send(1); }").to_json();
        let (status, _, response) = route(&post("/v1/scan", &body), &state);
        assert_eq!(status, 200);
        let decoded = AnalysisResponse::from_json(&response).unwrap();
        match decoded {
            AnalysisResponse::Findings(findings) => assert!(!findings.is_empty()),
            other => panic!("expected findings, got {other:?}"),
        }
    }

    #[test]
    fn empty_clone_check_is_invalid() {
        let state = state();
        let body = AnalysisRequest::clone_check("").to_json();
        let (status, _, response) = route(&post("/v1/clone-check", &body), &state);
        assert_eq!(status, 400);
        assert!(response.contains("\"code\":\"invalid_request\""), "{response}");
    }

    #[test]
    fn batch_returns_per_item_results_in_order() {
        let state = state();
        let scan = AnalysisRequest::scan("function f(address to) public { to.send(1); }");
        let clone = AnalysisRequest::clone_check("contract C { function f() public {} }");
        let body = format!("[{},{}]", scan.to_json(), clone.to_json());
        let (status, _, response) = route(&post("/v1/batch", &body), &state);
        assert_eq!(status, 200, "{response}");
        assert!(response.starts_with("{\"v\":1,\"kind\":\"batch\",\"results\":["), "{response}");
        // Item results match what /v1/analyze yields for the same docs.
        let (_, _, single) = route(&post("/v1/analyze", &scan.to_json()), &state);
        assert!(response.contains(&single), "batch item diverged from single response");
    }

    #[test]
    fn batch_isolates_per_item_errors() {
        let state = state();
        let good = AnalysisRequest::scan("function f(address to) public { to.send(1); }");
        let body = format!("[{},{{\"v\":1,\"kind\":\"nope\"}}]", good.to_json());
        let (status, _, response) = route(&post("/v1/batch", &body), &state);
        assert_eq!(status, 200, "one bad item must not fail the batch: {response}");
        assert!(response.contains("\"kind\":\"findings\""), "{response}");
        assert!(response.contains("\"kind\":\"error\""), "{response}");
        // The breaker saw the request-caused error as a success.
        assert_eq!(state.breakers.batch.state_name(), "closed");
    }

    #[test]
    fn batch_rejects_non_array_and_oversized_bodies() {
        let state = state();
        let (status, _, body) = route(&post("/v1/batch", "{\"v\":1}"), &state);
        assert_eq!(status, 400, "{body}");
        let huge: String = {
            let item = AnalysisRequest::scan("contract C {}").to_json();
            let items: Vec<&str> =
                (0..pipeline::api::MAX_BATCH_ITEMS + 1).map(|_| item.as_str()).collect();
            format!("[{}]", items.join(","))
        };
        let (status, _, body) = route(&post("/v1/batch", &huge), &state);
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("invalid_request"), "{body}");
    }

    #[test]
    fn metrics_endpoint_renders_valid_exposition() {
        let state = state();
        telemetry::enable();
        telemetry::counter_add("test.metrics_endpoint", 1);
        let (status, content_type, body) = route(&get("/metrics"), &state);
        assert_eq!(status, 200);
        assert!(content_type.starts_with("text/plain"));
        telemetry::prom::validate(&body).unwrap_or_else(|e| panic!("{e}\n{body}"));
    }

    #[test]
    fn debug_trace_handles_bad_and_missing_ids() {
        let state = state();
        let (status, _, body) = route(&get("/debug/trace/zzz"), &state);
        assert_eq!(status, 400, "{body}");
        let (status, _, body) = route(&get("/debug/trace/00000000000000ff"), &state);
        assert_eq!(status, 404, "{body}");
    }

    #[test]
    fn request_ids_adopt_and_sanitize_headers() {
        let mut request = get("/health");
        request.headers.push(("x-trace-id".into(), "DEADBEEFCAFEF00D".into()));
        request.headers.push(("x-request-id".into(), "abc\u{7}def".into()));
        let ids = RequestIds::from_request(&request);
        assert_eq!(ids.trace_hex(), "deadbeefcafef00d");
        assert_eq!(ids.request_id, "abcdef");
        // A malformed trace id is replaced, not adopted.
        let mut request = get("/health");
        request.headers.push(("x-trace-id".into(), "not-hex".into()));
        let ids = RequestIds::from_request(&request);
        assert_ne!(ids.trace_hex(), "not-hex");
        assert_eq!(ids.trace_hex().len(), 16);
    }

    #[test]
    fn index_status_reports_lifecycle_fields() {
        let state = state();
        let (status, _, body) = route(&get("/v1/index/status"), &state);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"kind\":\"index_status\""), "{body}");
        assert!(body.contains("\"generation\":0"), "{body}");
        assert!(body.contains("\"docs\":0"), "{body}");
        assert!(body.contains("\"front_cache\""), "{body}");
        // Durability fields are present even without a snapshot dir: the
        // WAL is off, stats read zero.
        assert!(body.contains("\"wal_records\":0"), "{body}");
        assert!(body.contains("\"wal_bytes\":0"), "{body}");
        assert!(body.contains("\"replayed_on_boot\":0"), "{body}");
        assert!(body.contains("\"fsync_policy\":\"off\""), "{body}");
        assert!(body.contains("\"auto_compactions\":0"), "{body}");
        // Wrong method is 405, matching the other /v1 endpoints.
        let (status, _, _) = route(&post("/v1/index/status", ""), &state);
        assert_eq!(status, 405);
    }

    #[test]
    fn index_insert_grows_the_corpus_and_echoes_the_id() {
        let state = state();
        let body = "{\"v\":1,\"source\":\"contract A { function w(uint v) public { \
                    msg.sender.transfer(v); } }\",\"id\":7}";
        let (status, _, response) = route(&post("/v1/index/insert", body), &state);
        assert_eq!(status, 200, "{response}");
        assert!(response.contains("\"doc\":7"), "{response}");
        assert!(response.contains("\"deltas\":1"), "{response}");
        assert_eq!(state.engine.corpus_len(), 1);
        // Duplicate id is the caller's fault: 400, breaker stays closed.
        let (status, _, response) = route(&post("/v1/index/insert", body), &state);
        assert_eq!(status, 400, "{response}");
        assert_eq!(state.breakers.index.state_name(), "closed");
        // The inserted document is immediately matchable.
        let check = AnalysisRequest::clone_check(
            "contract B { function out(uint a) public { msg.sender.transfer(a); } }",
        );
        let (status, _, response) = route(&post("/v1/clone-check", &check.to_json()), &state);
        assert_eq!(status, 200);
        assert!(response.contains("\"doc\":7"), "{response}");
    }

    #[test]
    fn index_insert_rejects_malformed_bodies() {
        let state = state();
        for body in ["not json", "{\"v\":1}", "{\"source\":\"contract C {}\"}"] {
            let (status, _, response) = route(&post("/v1/index/insert", body), &state);
            assert_eq!(status, 400, "{body} → {response}");
        }
    }

    #[test]
    fn index_compact_without_snapshot_dir_is_a_400() {
        let state = state();
        let (status, _, body) = route(&post("/v1/index/compact", ""), &state);
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("invalid_request"), "{body}");
    }

    #[test]
    fn index_error_codes_map_to_statuses() {
        assert_eq!(status_of(&AnalysisError::index_corrupt("x")), 500);
        assert_eq!(status_of(&AnalysisError::index_version(9, 1)), 409);
        assert_eq!(status_of(&AnalysisError::index_busy("x")), 503);
    }

    #[test]
    fn endpoint_labels_are_bounded() {
        assert_eq!(endpoint_label("/v1/scan"), "/v1/scan");
        assert_eq!(endpoint_label("/v1/batch"), "/v1/batch");
        assert_eq!(endpoint_label("/v1/index/status"), "/v1/index/status");
        assert_eq!(endpoint_label("/v1/index/compact"), "/v1/index/compact");
        assert_eq!(endpoint_label("/debug/trace/deadbeef"), "/debug/trace");
        assert_eq!(endpoint_label("/anything/else"), "other");
    }

    #[test]
    fn outcomes_classify_statuses() {
        assert_eq!(outcome_of(200, "{}"), "ok");
        assert_eq!(outcome_of(302, "{}"), "ok");
        assert_eq!(outcome_of(408, "{}"), "timeout");
        assert_eq!(outcome_of(429, "{}"), "shed");
        assert_eq!(outcome_of(503, "{\"code\":\"breaker_open\"}"), "breaker_open");
        assert_eq!(outcome_of(503, "{\"code\":\"overloaded\"}"), "error");
        assert_eq!(outcome_of(504, "{}"), "timeout");
        assert_eq!(outcome_of(400, "{}"), "error");
    }

    #[test]
    fn effective_shards_respects_worker_and_queue_floors() {
        let mut config = ServerConfig { workers: 1, queue_capacity: 1, ..Default::default() };
        assert_eq!(effective_shards(&config), 1, "single-lane config keeps one shard");
        config.workers = 8;
        config.queue_capacity = 256;
        config.shards = 3;
        assert_eq!(effective_shards(&config), 3);
        config.shards = 100;
        config.queue_capacity = 2;
        assert_eq!(effective_shards(&config), 2, "clamped to queue slots");
    }
}
