//! The analysis daemon: a long-lived HTTP service over the
//! [`pipeline::api`] facade.
//!
//! Batch runs pay corpus fingerprinting and index construction on every
//! invocation; the daemon pays them once at startup and then serves
//! scans and clone checks from warm shared state (§5.5's "Execution
//! Time" challenge, applied to interactive use). Architecture:
//!
//! * one [`AnalysisEngine`] behind an `Arc` — immutable warm state
//!   (checker, fingerprint corpus + N-gram index, content-addressed CPG
//!   cache) shared by every worker,
//! * a bounded [`WorkerPool`] (`pipeline::par`) draining accepted
//!   connections — overload is shed at the edge with HTTP 429 instead of
//!   queueing without bound,
//! * cooperative per-request timeouts inside the engine (HTTP 504),
//! * graceful shutdown: SIGTERM/`POST /shutdown` stop the accept loop,
//!   queued requests drain, workers join.
//!
//! Endpoints (all bodies JSON, wire format of [`pipeline::api`]):
//!
//! | Method | Path             | Purpose                                |
//! |--------|------------------|----------------------------------------|
//! | POST   | `/v1/scan`       | CCC detectors over a snippet           |
//! | POST   | `/v1/clone-check`| CCD match against the warm corpus      |
//! | POST   | `/v1/analyze`    | either request kind                    |
//! | GET    | `/health`        | liveness + corpus size                 |
//! | GET    | `/telemetry`     | telemetry snapshot (run-report schema) |
//! | POST   | `/shutdown`      | graceful stop                          |

#![warn(missing_docs)]

pub mod breaker;
pub mod client;
pub mod http;

use breaker::{BreakerConfig, CircuitBreaker};
use http::{read_request, write_response, HttpError, Request};
use pipeline::api::{error_to_json, AnalysisRequest, AnalysisResponse};
use pipeline::par::{PoolFull, PoolMonitor, WorkerPool};
use pipeline::AnalysisEngine;
use solidity::AnalysisError;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Service configuration (the analysis side lives in
/// [`pipeline::api::AnalysisConfig`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving requests.
    pub workers: usize,
    /// Maximum pending (accepted but unserved) connections before the
    /// service sheds load with 429.
    pub queue_capacity: usize,
    /// Per-endpoint circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            queue_capacity: 256,
            breaker: BreakerConfig::default(),
        }
    }
}

/// A cloneable handle that stops a running server's accept loop.
#[derive(Debug, Clone, Default)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Request a graceful shutdown.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by this handle or a signal).
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst) || signal_stop_requested()
    }
}

static SIGNAL_STOP: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been delivered.
pub fn signal_stop_requested() -> bool {
    SIGNAL_STOP.load(Ordering::SeqCst)
}

/// Install SIGTERM/SIGINT handlers that flip the shutdown flag, turning
/// `kill -TERM` into a graceful drain. Uses the C `signal` entry point
/// directly (std already links libc), so no extra dependency is needed.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// No-op on non-Unix targets.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// Per-endpoint circuit breakers for the three analysis endpoints.
struct Breakers {
    scan: CircuitBreaker,
    clone_check: CircuitBreaker,
    analyze: CircuitBreaker,
}

impl Breakers {
    fn new(config: BreakerConfig) -> Breakers {
        Breakers {
            scan: CircuitBreaker::new(config),
            clone_check: CircuitBreaker::new(config),
            analyze: CircuitBreaker::new(config),
        }
    }
}

/// Shared immutable state handed to every worker.
struct ServiceState {
    engine: Arc<AnalysisEngine>,
    shutdown: ShutdownHandle,
    workers: usize,
    queue_capacity: usize,
    breakers: Breakers,
    /// Health view of the worker pool; `None` only in unit tests that
    /// exercise routing without a pool.
    pool: Option<PoolMonitor>,
}

/// The analysis daemon: listener + worker pool + warm engine.
pub struct Server {
    listener: TcpListener,
    pool: WorkerPool,
    state: Arc<ServiceState>,
}

impl Server {
    /// Bind the service. `addr` accepts anything `TcpListener::bind`
    /// does; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub fn bind(
        addr: &str,
        config: ServerConfig,
        engine: Arc<AnalysisEngine>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let pool = WorkerPool::new(config.workers, config.queue_capacity);
        let state = Arc::new(ServiceState {
            engine,
            shutdown: ShutdownHandle::default(),
            workers: config.workers,
            queue_capacity: config.queue_capacity,
            breakers: Breakers::new(config.breaker),
            pool: Some(pool.monitor()),
        });
        Ok(Server { listener, pool, state })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the accept loop from another thread (or from
    /// the `POST /shutdown` endpoint).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.state.shutdown.clone()
    }

    /// Serve until shutdown is requested, then drain queued requests and
    /// join the workers.
    pub fn run(self) -> io::Result<()> {
        static ACCEPTED: telemetry::Counter = telemetry::Counter::new("server.accepted");
        static SHED: telemetry::Counter = telemetry::Counter::new("server.shed");
        self.listener.set_nonblocking(true)?;
        while !self.state.shutdown.is_shutdown() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    ACCEPTED.incr();
                    // A duplicate handle so load shedding can still
                    // answer after the job (owning the original) is
                    // refused and dropped.
                    let reject_handle = stream.try_clone().ok();
                    let state = Arc::clone(&self.state);
                    let submitted = self
                        .pool
                        .try_submit(move || handle_connection(stream, &state));
                    if let Err(PoolFull(job)) = submitted {
                        drop(job);
                        SHED.incr();
                        if let Some(mut stream) = reject_handle {
                            let _ = stream.set_nonblocking(false);
                            // Drain the request before answering: closing
                            // with unread data makes the kernel send RST,
                            // which would destroy the 429 in flight.
                            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                            let _ = read_request(&mut stream);
                            write_response(
                                &mut stream,
                                429,
                                "{\"v\":1,\"kind\":\"error\",\"code\":\"overloaded\",\
                                 \"message\":\"request queue is full\"}",
                            );
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // Graceful drain: queued connections are still served.
        self.pool.shutdown();
        Ok(())
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServiceState) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    match read_request(&mut stream) {
        Ok(request) => {
            // Chaos hook at the service edge, after the request is drained
            // (answering earlier would RST the peer's in-flight write).
            // Injected errors answer with a typed 500; injected *panics*
            // unwind through this function, killing the worker — exactly
            // the failure the pool's respawn sentinel and the client's
            // retry policy exist for.
            if let Some(message) = faultinject::fire("server/request") {
                write_response(&mut stream, 500, &error_body("internal", &message));
                return;
            }
            let (status, body) = route(&request, state);
            write_response(&mut stream, status, &body);
        }
        Err(HttpError::TooLarge) => {
            write_response(&mut stream, 413, &error_body("too_large", "request too large"));
        }
        Err(HttpError::Malformed(m)) => {
            write_response(&mut stream, 400, &error_body("bad_request", &m));
        }
        // The peer vanished; nothing to answer.
        Err(HttpError::Io(_)) => {}
    }
}

fn error_body(code: &str, message: &str) -> String {
    format!(
        "{{\"v\":1,\"kind\":\"error\",\"code\":\"{}\",\"message\":\"{}\"}}",
        code,
        pipeline::api::escape_json(message)
    )
}

fn route(request: &Request, state: &ServiceState) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => (
            200,
            format!(
                "{{\"status\":\"ok\",\"v\":1,\"corpus\":{},\"workers\":{},\"queue_capacity\":{},\
                 \"pool\":{{\"respawns\":{},\"queued\":{}}},\
                 \"breakers\":{{\"scan\":\"{}\",\"clone_check\":\"{}\",\"analyze\":\"{}\"}}}}",
                state.engine.corpus_len(),
                state.workers,
                state.queue_capacity,
                state.pool.as_ref().map_or(0, PoolMonitor::respawns),
                state.pool.as_ref().map_or(0, PoolMonitor::queue_len),
                state.breakers.scan.state_name(),
                state.breakers.clone_check.state_name(),
                state.breakers.analyze.state_name(),
            ),
        ),
        ("GET", "/telemetry") => {
            // Refresh interner gauges so the snapshot reports the live
            // symbol table size alongside the counters.
            let (symbols, bytes) = intern::interner_stats();
            telemetry::gauge_set("intern.symbols", symbols as u64);
            telemetry::gauge_set("intern.bytes", bytes as u64);
            (200, telemetry::snapshot().to_json())
        }
        ("POST", "/shutdown") => {
            state.shutdown.shutdown();
            (200, "{\"status\":\"shutting_down\"}".to_string())
        }
        ("POST", "/v1/scan") => {
            analyze(request, state, Some(RequestKind::Scan), &state.breakers.scan)
        }
        ("POST", "/v1/clone-check") => {
            analyze(request, state, Some(RequestKind::CloneCheck), &state.breakers.clone_check)
        }
        ("POST", "/v1/analyze") => analyze(request, state, None, &state.breakers.analyze),
        (_, "/health" | "/telemetry" | "/shutdown" | "/v1/scan" | "/v1/clone-check" | "/v1/analyze") => {
            (405, error_body("method_not_allowed", "wrong method for endpoint"))
        }
        (_, path) => (404, error_body("not_found", &format!("no such endpoint {path}"))),
    }
}

#[derive(PartialEq)]
enum RequestKind {
    Scan,
    CloneCheck,
}

fn analyze(
    request: &Request,
    state: &ServiceState,
    expected: Option<RequestKind>,
    breaker: &CircuitBreaker,
) -> (u16, String) {
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            return (400, error_body("bad_request", "request body is not UTF-8"));
        }
    };
    let parsed = match AnalysisRequest::from_json(body) {
        Ok(parsed) => parsed,
        Err(error) => return (status_of(&error), error_to_json(&error)),
    };
    let kind_matches = match (&parsed, &expected) {
        (_, None) => true,
        (AnalysisRequest::Scan { .. }, Some(RequestKind::Scan)) => true,
        (AnalysisRequest::CloneCheck { .. }, Some(RequestKind::CloneCheck)) => true,
        _ => false,
    };
    if !kind_matches {
        return (
            400,
            error_body("bad_request", "request kind does not match endpoint"),
        );
    }
    // Acquire the breaker only once the request is validated: malformed
    // requests are the caller's fault and must neither consume a
    // half-open probe nor be shed by an open breaker.
    if !breaker.try_acquire() {
        return (
            503,
            error_body("breaker_open", "circuit breaker is open; retry after cooldown"),
        );
    }
    match state.engine.analyze(&parsed) {
        Ok(response) => {
            breaker.record_success();
            (200, AnalysisResponse::to_json(&response))
        }
        Err(error) => {
            // Only *internal* errors (our fault) count against the
            // breaker; request-caused errors are successes breaker-wise.
            if error.code() == "internal" {
                breaker.record_failure();
            } else {
                breaker.record_success();
            }
            (status_of(&error), error_to_json(&error))
        }
    }
}

/// HTTP status of an analysis error: timeouts are the gateway's fault
/// (504), internal errors are ours (500), everything else is the
/// request's (400).
fn status_of(error: &AnalysisError) -> u16 {
    match error.code() {
        "timeout" => 504,
        "internal" => 500,
        _ => 400,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::api::AnalysisConfig;

    fn state() -> Arc<ServiceState> {
        Arc::new(ServiceState {
            engine: Arc::new(AnalysisEngine::new(AnalysisConfig::default())),
            shutdown: ShutdownHandle::default(),
            workers: 1,
            queue_capacity: 1,
            breakers: Breakers::new(BreakerConfig::default()),
            pool: None,
        })
    }

    fn post(path: &str, body: &str) -> Request {
        Request { method: "POST".into(), path: path.into(), body: body.as_bytes().to_vec() }
    }

    #[test]
    fn routes_health_and_404() {
        let state = state();
        let (status, body) =
            route(&Request { method: "GET".into(), path: "/health".into(), body: vec![] }, &state);
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
        let (status, _) =
            route(&Request { method: "GET".into(), path: "/nope".into(), body: vec![] }, &state);
        assert_eq!(status, 404);
        let (status, _) =
            route(&Request { method: "DELETE".into(), path: "/health".into(), body: vec![] }, &state);
        assert_eq!(status, 405);
    }

    #[test]
    fn scan_endpoint_rejects_clone_check_kind() {
        let state = state();
        let body = AnalysisRequest::clone_check("contract C {}").to_json();
        let (status, _) = route(&post("/v1/scan", &body), &state);
        assert_eq!(status, 400);
    }

    #[test]
    fn malformed_body_is_a_400() {
        let state = state();
        let (status, body) = route(&post("/v1/scan", "{not json"), &state);
        assert_eq!(status, 400);
        assert!(body.contains("\"code\":\"invalid_request\""), "{body}");
    }

    #[test]
    fn scan_returns_findings_json() {
        let state = state();
        let body =
            AnalysisRequest::scan("function f(address to) public { to.send(1); }").to_json();
        let (status, response) = route(&post("/v1/scan", &body), &state);
        assert_eq!(status, 200);
        let decoded = AnalysisResponse::from_json(&response).unwrap();
        match decoded {
            AnalysisResponse::Findings(findings) => assert!(!findings.is_empty()),
            other => panic!("expected findings, got {other:?}"),
        }
    }

    #[test]
    fn empty_clone_check_is_invalid() {
        let state = state();
        let body = AnalysisRequest::clone_check("").to_json();
        let (status, response) = route(&post("/v1/clone-check", &body), &state);
        assert_eq!(status, 400);
        assert!(response.contains("\"code\":\"invalid_request\""), "{response}");
    }
}
