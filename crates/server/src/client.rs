//! A tiny blocking HTTP client for driving the daemon — used by the
//! `loadgen` bin, the integration tests and the CI smoke step. Relies on
//! the server's `Connection: close` discipline: read to EOF, split head
//! from body.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Send one request and return `(status, body)`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad HTTP response"))
}

/// `POST` a JSON body.
pub fn post(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, body)
}

/// `GET` a path.
pub fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}

fn parse_response(raw: &[u8]) -> Option<(u16, String)> {
    let text = std::str::from_utf8(raw).ok()?;
    let (head, body) = text.split_once("\r\n\r\n")?;
    let status_line = head.lines().next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    Some((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_canned_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}";
        assert_eq!(parse_response(raw), Some((200, "{}".to_string())));
        assert_eq!(parse_response(b"garbage"), None);
    }
}
