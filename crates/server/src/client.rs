//! A tiny blocking HTTP client for driving the daemon — used by the
//! `loadgen` bin, the integration tests and the CI smoke step.
//!
//! [`Connection`] is the keep-alive path: one TCP connection serves
//! sequential requests (or a pipelined window via [`Connection::send`] /
//! [`Connection::recv`]), with responses framed by `Content-Length`. The
//! free functions ([`post`], [`get`], [`request_full`]) keep the old
//! connect-per-request `Connection: close` behavior as an escape hatch.
//!
//! [`RetryPolicy`] adds bounded retries with exponential backoff and
//! seeded jitter for transient failures: connection errors (a worker
//! died mid-request), 429 (load shed), and 5xx (internal errors, open
//! breakers, timeouts). 4xx client errors never retry — resending a bad
//! request cannot fix it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Bounded-retry tuning for [`post_with_retry`]/[`get_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, first try included (clamped to at least 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_delay_ms << (n-1)`, capped at
    /// `max_delay_ms`, plus jitter in `[0, delay/2]`.
    pub base_delay_ms: u64,
    /// Upper bound on a single backoff (before jitter).
    pub max_delay_ms: u64,
    /// Jitter seed — deterministic for a given policy, so test runs and
    /// chaos reproductions back off identically.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_delay_ms: 10, max_delay_ms: 500, seed: 0x5eed }
    }
}

impl RetryPolicy {
    /// The backoff before attempt `attempt` (1-based retry index), with
    /// deterministic jitter drawn from `rng`.
    fn backoff(&self, attempt: u32, rng: &mut faultinject::SeededRng) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let base = self.base_delay_ms.saturating_mul(1u64 << shift).min(self.max_delay_ms);
        Duration::from_millis(base + rng.next_below(base / 2 + 1))
    }
}

/// Whether a status is worth retrying: overload (429) and server-side
/// failures (5xx) are transient, everything else is final.
pub fn retryable_status(status: u16) -> bool {
    status == 429 || (500..=599).contains(&status)
}

/// Send one request under a retry policy. Returns the first
/// non-retryable outcome, or the last outcome once attempts run out.
pub fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    policy: &RetryPolicy,
) -> std::io::Result<(u16, String)> {
    static RETRIES: telemetry::Counter = telemetry::Counter::new("client.retries");
    let mut rng = faultinject::SeededRng::new(policy.seed);
    let attempts = policy.max_attempts.max(1);
    let mut conn = Connection::new(addr);
    let mut last: Option<std::io::Result<(u16, String)>> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            RETRIES.incr();
            std::thread::sleep(policy.backoff(attempt, &mut rng));
        }
        match conn.request_full(method, path, body, &[]) {
            Ok(response) if !retryable_status(response.status) => {
                return Ok((response.status, response.body));
            }
            Ok(response) => last = Some(Ok((response.status, response.body))),
            Err(err) => last = Some(Err(err)),
        }
    }
    last.expect("at least one attempt was made")
}

/// `POST` a JSON body with retries.
pub fn post_with_retry(
    addr: &str,
    path: &str,
    body: &str,
    policy: &RetryPolicy,
) -> std::io::Result<(u16, String)> {
    request_with_retry(addr, "POST", path, body, policy)
}

/// `GET` a path with retries.
pub fn get_with_retry(
    addr: &str,
    path: &str,
    policy: &RetryPolicy,
) -> std::io::Result<(u16, String)> {
    request_with_retry(addr, "GET", path, "", policy)
}

/// A fully-parsed response: status, headers (lowercased names, arrival
/// order) and body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Response headers as `(lowercased-name, trimmed-value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive HTTP/1.1 connection. Connects lazily, reuses the socket
/// across sequential requests, and reconnects once (transparently) when
/// a reused socket turns out to be dead — the server may have closed an
/// idle connection between requests.
///
/// [`Connection::send`] and [`Connection::recv`] are split out so
/// callers can pipeline: write a window of requests, then read the
/// responses back in order.
pub struct Connection {
    addr: String,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
    pos: usize,
}

impl Connection {
    /// Create a connection to `addr`; no socket is opened until the
    /// first request.
    pub fn new(addr: &str) -> Self {
        Connection { addr: addr.to_string(), stream: None, buf: Vec::new(), pos: 0 }
    }

    /// Whether a socket is currently open (and presumed alive).
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Open the socket now if it is not already open. Lets callers that
    /// time individual requests exclude the connect cost (the load
    /// generator captures its per-request clock at write time).
    pub fn connect(&mut self) -> std::io::Result<()> {
        self.ensure_connected().map(|_| ())
    }

    /// Drop the socket and any buffered bytes; the next request
    /// reconnects.
    pub fn reset(&mut self) {
        self.stream = None;
        self.buf.clear();
        self.pos = 0;
    }

    fn ensure_connected(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            stream.set_write_timeout(Some(Duration::from_secs(30)))?;
            let _ = stream.set_nodelay(true);
            self.buf.clear();
            self.pos = 0;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("stream was just ensured"))
    }

    /// Write one request on the connection without reading the response
    /// (the pipelining half; pair each call with a later [`recv`]).
    ///
    /// [`recv`]: Connection::recv
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<()> {
        let addr = self.addr.clone();
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        let stream = self.ensure_connected()?;
        let outcome = stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .and_then(|()| stream.flush());
        if outcome.is_err() {
            self.reset();
        }
        outcome
    }

    /// Read one `Content-Length`-framed response off the connection.
    /// A `Connection: close` response is honored by dropping the socket
    /// afterwards, so the next request transparently reconnects.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        match self.read_framed() {
            Ok(response) => {
                if response.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close")) {
                    self.reset();
                } else if self.pos == self.buf.len() {
                    // Fully consumed: recycle the buffer allocation.
                    self.buf.clear();
                    self.pos = 0;
                }
                Ok(response)
            }
            Err(err) => {
                self.reset();
                Err(err)
            }
        }
    }

    fn read_framed(&mut self) -> std::io::Result<Response> {
        let head_end = loop {
            if let Some(at) = find_subsequence(&self.buf[self.pos..], b"\r\n\r\n") {
                break self.pos + at + 4;
            }
            self.fill()?;
        };
        let head = std::str::from_utf8(&self.buf[self.pos..head_end]).map_err(invalid_response)?;
        let mut lines = head.lines();
        let status_line = lines.next().ok_or_else(|| invalid_response("missing status line"))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| invalid_response("bad status line"))?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| line.split_once(':'))
            .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        while self.buf.len() < head_end + length {
            self.fill()?;
        }
        let body = String::from_utf8_lossy(&self.buf[head_end..head_end + length]).into_owned();
        self.pos = head_end + length;
        Ok(Response { status, headers, body })
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotConnected, "not connected"))?;
        let mut chunk = [0u8; 16 * 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// Send one request and read its response, reconnecting once if a
    /// *reused* socket fails (it may have been closed by the server
    /// between requests; a fresh-connect failure is propagated as-is).
    pub fn request_full(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<Response> {
        let reused = self.is_connected();
        let first = self.send(method, path, body, extra_headers).and_then(|()| self.recv());
        match first {
            Ok(response) => Ok(response),
            Err(_) if reused => self.send(method, path, body, extra_headers).and_then(|()| self.recv()),
            Err(err) => Err(err),
        }
    }

    /// `POST` a JSON body on the connection; returns `(status, body)`.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        let response = self.request_full("POST", path, body, &[])?;
        Ok((response.status, response.body))
    }

    /// `GET` a path on the connection; returns `(status, body)`.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        let response = self.request_full("GET", path, "", &[])?;
        Ok((response.status, response.body))
    }
}

fn invalid_response(detail: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad HTTP response: {detail}"))
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|window| window == needle)
}

/// Send one request and return `(status, body)`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let response = request_full(addr, method, path, body, &[])?;
    Ok((response.status, response.body))
}

/// Send one request with extra headers (e.g. `X-Trace-Id`) and return
/// the full parsed response including headers — the observability smoke
/// asserts on the echoed ids.
pub fn request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_full(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad HTTP response"))
}

/// `POST` a JSON body.
pub fn post(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, body)
}

/// `GET` a path.
pub fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}

fn parse_full(raw: &[u8]) -> Option<Response> {
    let text = std::str::from_utf8(raw).ok()?;
    let (head, body) = text.split_once("\r\n\r\n")?;
    let mut lines = head.lines();
    let status_line = lines.next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Some(Response { status, headers, body: body.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_canned_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}";
        let response = parse_full(raw).unwrap();
        assert_eq!((response.status, response.body.as_str()), (200, "{}"));
        assert_eq!(parse_full(b"garbage"), None);
    }

    #[test]
    fn full_parse_captures_response_headers() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\nX-Trace-Id: deadbeefcafef00d\r\n\r\n{}";
        let response = parse_full(raw).unwrap();
        assert_eq!(response.status, 429);
        assert_eq!(response.header("x-trace-id"), Some("deadbeefcafef00d"));
        assert_eq!(response.header("X-TRACE-ID"), Some("deadbeefcafef00d"));
        assert_eq!(response.header("absent"), None);
        assert_eq!(response.body, "{}");
    }

    /// A one-shot server answering each accepted connection with the next
    /// canned status; returns how many connections it served.
    fn canned_server(statuses: Vec<u16>) -> (String, std::thread::JoinHandle<usize>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut served = 0;
            for status in statuses {
                let Ok((mut stream, _)) = listener.accept() else { break };
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf);
                let response = format!(
                    "HTTP/1.1 {status} X\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{{}}"
                );
                let _ = stream.write_all(response.as_bytes());
                served += 1;
            }
            served
        });
        (addr, handle)
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy { max_attempts: 4, base_delay_ms: 1, max_delay_ms: 4, seed: 7 }
    }

    #[test]
    fn retries_past_transient_server_errors() {
        let (addr, served) = canned_server(vec![500, 429, 200]);
        let (status, body) = get_with_retry(&addr, "/health", &fast_policy()).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{}");
        assert_eq!(served.join().unwrap(), 3, "two retries consumed");
    }

    #[test]
    fn gives_up_with_last_response_after_max_attempts() {
        let (addr, served) = canned_server(vec![503, 503, 503, 503]);
        let (status, _) = get_with_retry(&addr, "/health", &fast_policy()).unwrap();
        assert_eq!(status, 503, "exhausted retries surface the last response");
        assert_eq!(served.join().unwrap(), 4);
    }

    #[test]
    fn client_errors_are_not_retried() {
        let (addr, served) = canned_server(vec![400]);
        let (status, _) = get_with_retry(&addr, "/health", &fast_policy()).unwrap();
        assert_eq!(status, 400);
        assert_eq!(served.join().unwrap(), 1, "a 4xx must not be retried");
    }

    #[test]
    fn connect_failures_retry_then_error() {
        // Bind then drop to get a port with (very likely) nothing on it.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let policy = RetryPolicy { max_attempts: 2, ..fast_policy() };
        assert!(get_with_retry(&addr, "/health", &policy).is_err());
    }

    /// A server answering `total` keep-alive responses on however many
    /// connections clients open; returns how many connections were
    /// accepted.
    fn keepalive_server(total: usize) -> (String, std::thread::JoinHandle<usize>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut conns = 0;
            let mut remaining = total;
            while remaining > 0 {
                let Ok((mut stream, _)) = listener.accept() else { break };
                conns += 1;
                let mut pending = Vec::new();
                while remaining > 0 {
                    let mut chunk = [0u8; 4096];
                    let Ok(n) = stream.read(&mut chunk) else { break };
                    if n == 0 {
                        break;
                    }
                    pending.extend_from_slice(&chunk[..n]);
                    // Answer one response per complete request head.
                    while remaining > 0 {
                        let Some(at) = pending.windows(4).position(|w| w == b"\r\n\r\n") else {
                            break;
                        };
                        pending.drain(..at + 4);
                        let body = format!("{{\"n\":{}}}", total - remaining);
                        let response = format!(
                            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{body}",
                            body.len()
                        );
                        stream.write_all(response.as_bytes()).unwrap();
                        remaining -= 1;
                    }
                }
            }
            conns
        });
        (addr, handle)
    }

    #[test]
    fn connection_reuses_one_socket_for_sequential_requests() {
        let (addr, conns) = keepalive_server(3);
        let mut conn = Connection::new(&addr);
        for n in 0..3 {
            let (status, body) = conn.get("/health").unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, format!("{{\"n\":{n}}}"));
        }
        drop(conn);
        assert_eq!(conns.join().unwrap(), 1, "all three requests shared one connection");
    }

    #[test]
    fn connection_pipelines_a_window_of_requests() {
        let (addr, conns) = keepalive_server(4);
        let mut conn = Connection::new(&addr);
        for _ in 0..4 {
            conn.send("GET", "/health", "", &[]).unwrap();
        }
        for n in 0..4 {
            let response = conn.recv().unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.body, format!("{{\"n\":{n}}}"), "responses arrive in order");
        }
        drop(conn);
        assert_eq!(conns.join().unwrap(), 1);
    }

    #[test]
    fn connection_reconnects_when_the_server_closes() {
        // Each canned response carries `Connection: close`, so the
        // client must transparently reconnect between requests.
        let (addr, served) = canned_server(vec![200, 200]);
        let mut conn = Connection::new(&addr);
        assert_eq!(conn.get("/health").unwrap().0, 200);
        assert!(!conn.is_connected(), "close response drops the socket");
        assert_eq!(conn.get("/health").unwrap().0, 200);
        assert_eq!(served.join().unwrap(), 2);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy { max_attempts: 8, base_delay_ms: 10, max_delay_ms: 80, seed: 42 };
        let draw = || {
            let mut rng = faultinject::SeededRng::new(policy.seed);
            (1..8).map(|n| policy.backoff(n, &mut rng).as_millis()).collect::<Vec<_>>()
        };
        let first = draw();
        assert_eq!(first, draw(), "same seed, same backoff schedule");
        for (i, ms) in first.iter().enumerate() {
            let base = (10u64 << i.min(16)).min(80);
            assert!(*ms >= base as u128 && *ms <= (base + base / 2) as u128, "retry {i}: {ms}ms");
        }
    }
}
