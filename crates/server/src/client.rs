//! A tiny blocking HTTP client for driving the daemon — used by the
//! `loadgen` bin, the integration tests and the CI smoke step. Relies on
//! the server's `Connection: close` discipline: read to EOF, split head
//! from body.
//!
//! [`RetryPolicy`] adds bounded retries with exponential backoff and
//! seeded jitter for transient failures: connection errors (a worker
//! died mid-request), 429 (load shed), and 5xx (internal errors, open
//! breakers, timeouts). 4xx client errors never retry — resending a bad
//! request cannot fix it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Bounded-retry tuning for [`post_with_retry`]/[`get_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, first try included (clamped to at least 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_delay_ms << (n-1)`, capped at
    /// `max_delay_ms`, plus jitter in `[0, delay/2]`.
    pub base_delay_ms: u64,
    /// Upper bound on a single backoff (before jitter).
    pub max_delay_ms: u64,
    /// Jitter seed — deterministic for a given policy, so test runs and
    /// chaos reproductions back off identically.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_delay_ms: 10, max_delay_ms: 500, seed: 0x5eed }
    }
}

impl RetryPolicy {
    /// The backoff before attempt `attempt` (1-based retry index), with
    /// deterministic jitter drawn from `rng`.
    fn backoff(&self, attempt: u32, rng: &mut faultinject::SeededRng) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let base = self.base_delay_ms.saturating_mul(1u64 << shift).min(self.max_delay_ms);
        Duration::from_millis(base + rng.next_below(base / 2 + 1))
    }
}

/// Whether a status is worth retrying: overload (429) and server-side
/// failures (5xx) are transient, everything else is final.
pub fn retryable_status(status: u16) -> bool {
    status == 429 || (500..=599).contains(&status)
}

/// Send one request under a retry policy. Returns the first
/// non-retryable outcome, or the last outcome once attempts run out.
pub fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    policy: &RetryPolicy,
) -> std::io::Result<(u16, String)> {
    static RETRIES: telemetry::Counter = telemetry::Counter::new("client.retries");
    let mut rng = faultinject::SeededRng::new(policy.seed);
    let attempts = policy.max_attempts.max(1);
    let mut last: Option<std::io::Result<(u16, String)>> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            RETRIES.incr();
            std::thread::sleep(policy.backoff(attempt, &mut rng));
        }
        match request(addr, method, path, body) {
            Ok((status, body)) if !retryable_status(status) => return Ok((status, body)),
            outcome => last = Some(outcome),
        }
    }
    last.expect("at least one attempt was made")
}

/// `POST` a JSON body with retries.
pub fn post_with_retry(
    addr: &str,
    path: &str,
    body: &str,
    policy: &RetryPolicy,
) -> std::io::Result<(u16, String)> {
    request_with_retry(addr, "POST", path, body, policy)
}

/// `GET` a path with retries.
pub fn get_with_retry(
    addr: &str,
    path: &str,
    policy: &RetryPolicy,
) -> std::io::Result<(u16, String)> {
    request_with_retry(addr, "GET", path, "", policy)
}

/// A fully-parsed response: status, headers (lowercased names, arrival
/// order) and body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Response headers as `(lowercased-name, trimmed-value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Send one request and return `(status, body)`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let response = request_full(addr, method, path, body, &[])?;
    Ok((response.status, response.body))
}

/// Send one request with extra headers (e.g. `X-Trace-Id`) and return
/// the full parsed response including headers — the observability smoke
/// asserts on the echoed ids.
pub fn request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_full(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad HTTP response"))
}

/// `POST` a JSON body.
pub fn post(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    request(addr, "POST", path, body)
}

/// `GET` a path.
pub fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}

fn parse_full(raw: &[u8]) -> Option<Response> {
    let text = std::str::from_utf8(raw).ok()?;
    let (head, body) = text.split_once("\r\n\r\n")?;
    let mut lines = head.lines();
    let status_line = lines.next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Some(Response { status, headers, body: body.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_canned_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}";
        let response = parse_full(raw).unwrap();
        assert_eq!((response.status, response.body.as_str()), (200, "{}"));
        assert_eq!(parse_full(b"garbage"), None);
    }

    #[test]
    fn full_parse_captures_response_headers() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\nX-Trace-Id: deadbeefcafef00d\r\n\r\n{}";
        let response = parse_full(raw).unwrap();
        assert_eq!(response.status, 429);
        assert_eq!(response.header("x-trace-id"), Some("deadbeefcafef00d"));
        assert_eq!(response.header("X-TRACE-ID"), Some("deadbeefcafef00d"));
        assert_eq!(response.header("absent"), None);
        assert_eq!(response.body, "{}");
    }

    /// A one-shot server answering each accepted connection with the next
    /// canned status; returns how many connections it served.
    fn canned_server(statuses: Vec<u16>) -> (String, std::thread::JoinHandle<usize>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut served = 0;
            for status in statuses {
                let Ok((mut stream, _)) = listener.accept() else { break };
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf);
                let response = format!(
                    "HTTP/1.1 {status} X\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{{}}"
                );
                let _ = stream.write_all(response.as_bytes());
                served += 1;
            }
            served
        });
        (addr, handle)
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy { max_attempts: 4, base_delay_ms: 1, max_delay_ms: 4, seed: 7 }
    }

    #[test]
    fn retries_past_transient_server_errors() {
        let (addr, served) = canned_server(vec![500, 429, 200]);
        let (status, body) = get_with_retry(&addr, "/health", &fast_policy()).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{}");
        assert_eq!(served.join().unwrap(), 3, "two retries consumed");
    }

    #[test]
    fn gives_up_with_last_response_after_max_attempts() {
        let (addr, served) = canned_server(vec![503, 503, 503, 503]);
        let (status, _) = get_with_retry(&addr, "/health", &fast_policy()).unwrap();
        assert_eq!(status, 503, "exhausted retries surface the last response");
        assert_eq!(served.join().unwrap(), 4);
    }

    #[test]
    fn client_errors_are_not_retried() {
        let (addr, served) = canned_server(vec![400]);
        let (status, _) = get_with_retry(&addr, "/health", &fast_policy()).unwrap();
        assert_eq!(status, 400);
        assert_eq!(served.join().unwrap(), 1, "a 4xx must not be retried");
    }

    #[test]
    fn connect_failures_retry_then_error() {
        // Bind then drop to get a port with (very likely) nothing on it.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let policy = RetryPolicy { max_attempts: 2, ..fast_policy() };
        assert!(get_with_retry(&addr, "/health", &policy).is_err());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy { max_attempts: 8, base_delay_ms: 10, max_delay_ms: 80, seed: 42 };
        let draw = || {
            let mut rng = faultinject::SeededRng::new(policy.seed);
            (1..8).map(|n| policy.backoff(n, &mut rng).as_millis()).collect::<Vec<_>>()
        };
        let first = draw();
        assert_eq!(first, draw(), "same seed, same backoff schedule");
        for (i, ms) in first.iter().enumerate() {
            let base = (10u64 << i.min(16)).min(80);
            assert!(*ms >= base as u128 && *ms <= (base + base / 2) as u128, "retry {i}: {ms}ms");
        }
    }
}
