//! JSONL structured access logging, correlated with traces by trace id.
//!
//! One line per request, appended to the configured sink:
//!
//! ```json
//! {"ts_ms":1754650000123,"trace_id":"9a1f...","request_id":"9a1f...",
//!  "method":"POST","path":"/v1/scan","status":200,"dur_us":17012,
//!  "outcome":"ok","body_bytes":812,"slow":false}
//! ```
//!
//! `outcome` classifies how the request left the server: `ok`, `error`
//! (4xx/5xx analysis or protocol errors), `shed` (429 worker-pool
//! rejection), `breaker_open` (503 circuit breaker), `timeout` (504).
//! Shed and breaker-rejected requests get a line like any other — load
//! that the server refuses is exactly the load an operator needs to see.
//!
//! Requests at least as slow as the configured threshold are re-appended
//! to the optional slow-request sink (same schema, `"slow":true`), so a
//! tail-latency investigation starts from a pre-filtered file whose
//! `trace_id`s join against `/debug/trace/<id>`.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// One access-log record, already resolved to strings.
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// Trace id (hex) echoed on the response.
    pub trace_id: String,
    /// Request id (hex) echoed on the response.
    pub request_id: String,
    /// Request method (`GET`, `POST`, or `?` when the head never parsed).
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Wall time from accept to response write, microseconds.
    pub dur_us: u64,
    /// Outcome class (`ok`, `error`, `shed`, `breaker_open`, `timeout`).
    pub outcome: &'static str,
    /// Response body size in bytes.
    pub body_bytes: usize,
}

/// A thread-safe JSONL access log with an optional slow-request tee.
pub struct AccessLog {
    sink: Mutex<Box<dyn Write + Send>>,
    slow_sink: Option<Mutex<Box<dyn Write + Send>>>,
    slow_us: u64,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog").field("slow_us", &self.slow_us).finish_non_exhaustive()
    }
}

impl AccessLog {
    /// Open (append) an access log at `path`, with an optional slow log
    /// and a slow threshold in milliseconds.
    pub fn open(
        path: &Path,
        slow_path: Option<&Path>,
        slow_ms: u64,
    ) -> std::io::Result<AccessLog> {
        let sink = append_file(path)?;
        let slow_sink = match slow_path {
            Some(p) => Some(Mutex::new(Box::new(append_file(p)?) as Box<dyn Write + Send>)),
            None => None,
        };
        Ok(AccessLog {
            sink: Mutex::new(Box::new(sink)),
            slow_sink,
            slow_us: slow_ms.saturating_mul(1000),
        })
    }

    /// An access log writing to arbitrary sinks (tests use in-memory
    /// buffers).
    pub fn from_sinks(
        sink: Box<dyn Write + Send>,
        slow_sink: Option<Box<dyn Write + Send>>,
        slow_ms: u64,
    ) -> AccessLog {
        AccessLog {
            sink: Mutex::new(sink),
            slow_sink: slow_sink.map(Mutex::new),
            slow_us: slow_ms.saturating_mul(1000),
        }
    }

    /// Append one record (and tee it to the slow log when it qualifies).
    /// Write errors are swallowed: logging must never fail a request.
    pub fn record(&self, rec: &AccessRecord) {
        let slow = rec.dur_us >= self.slow_us;
        let line = render_line(rec, slow);
        {
            let mut sink = lock(&self.sink);
            let _ = sink.write_all(line.as_bytes());
            let _ = sink.flush();
        }
        if slow {
            if let Some(slow_sink) = &self.slow_sink {
                let mut sink = lock(slow_sink);
                let _ = sink.write_all(line.as_bytes());
                let _ = sink.flush();
            }
        }
    }
}

fn lock<T: ?Sized>(
    m: &Mutex<Box<T>>,
) -> std::sync::MutexGuard<'_, Box<T>> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn append_file(path: &Path) -> std::io::Result<File> {
    OpenOptions::new().create(true).append(true).open(path)
}

fn render_line(rec: &AccessRecord, slow: bool) -> String {
    let ts_ms = std::time::UNIX_EPOCH
        .elapsed()
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0);
    format!(
        "{{\"ts_ms\":{ts_ms},\"trace_id\":\"{}\",\"request_id\":\"{}\",\"method\":\"{}\",\
         \"path\":\"{}\",\"status\":{},\"dur_us\":{},\"outcome\":\"{}\",\"body_bytes\":{},\
         \"slow\":{slow}}}\n",
        escape(&rec.trace_id),
        escape(&rec.request_id),
        escape(&rec.method),
        escape(&rec.path),
        rec.status,
        rec.dur_us,
        rec.outcome,
        rec.body_bytes,
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A cloneable in-memory sink.
    #[derive(Clone, Default)]
    struct Buffer(Arc<Mutex<Vec<u8>>>);

    impl Buffer {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for Buffer {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn record(dur_us: u64, status: u16, outcome: &'static str) -> AccessRecord {
        AccessRecord {
            trace_id: "00000000deadbeef".into(),
            request_id: "00000000cafef00d".into(),
            method: "POST".into(),
            path: "/v1/scan".into(),
            status,
            dur_us,
            outcome,
            body_bytes: 42,
        }
    }

    #[test]
    fn records_jsonl_lines_and_tees_slow_requests() {
        let main = Buffer::default();
        let slow = Buffer::default();
        let log = AccessLog::from_sinks(
            Box::new(main.clone()),
            Some(Box::new(slow.clone())),
            100, // 100ms threshold
        );
        log.record(&record(5_000, 200, "ok"));
        log.record(&record(250_000, 200, "ok"));
        log.record(&record(1_000, 429, "shed"));
        let lines: Vec<String> =
            main.contents().lines().map(String::from).collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"slow\":false"), "{}", lines[0]);
        assert!(lines[0].contains("\"trace_id\":\"00000000deadbeef\""), "{}", lines[0]);
        assert!(lines[1].contains("\"slow\":true"), "{}", lines[1]);
        assert!(lines[2].contains("\"outcome\":\"shed\""), "{}", lines[2]);
        assert!(lines[2].contains("\"status\":429"), "{}", lines[2]);
        // Only the slow request reaches the slow log.
        let slow_lines: Vec<String> =
            slow.contents().lines().map(String::from).collect();
        assert_eq!(slow_lines.len(), 1);
        assert!(slow_lines[0].contains("\"dur_us\":250000"), "{}", slow_lines[0]);
        // Every line parses as JSON.
        for line in lines.iter().chain(&slow_lines) {
            telemetry::json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
    }

    #[test]
    fn escapes_hostile_paths() {
        let main = Buffer::default();
        let log = AccessLog::from_sinks(Box::new(main.clone()), None, 1000);
        let mut rec = record(10, 404, "error");
        rec.path = "/x\"y\\z\nq".into();
        log.record(&rec);
        let text = main.contents();
        telemetry::json::parse(text.trim()).unwrap_or_else(|e| panic!("{e}: {text}"));
    }
}
