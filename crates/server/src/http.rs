//! A hand-written HTTP/1.1 subset: exactly what the analysis daemon
//! needs — request line, headers, `Content-Length` bodies, and fixed
//! `Connection: close` responses. No chunked encoding, no keep-alive, no
//! TLS; the daemon fronts trusted local tooling, not the internet.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on the request line alone (method + target + version) —
/// tighter than the whole head, since no legitimate target comes close.
pub const MAX_REQUEST_LINE_BYTES: usize = 4 * 1024;

/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// The raw query string (without the `?`; empty when absent).
    pub query: String,
    /// Request headers as `(lowercased-name, trimmed-value)` pairs, in
    /// arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter (`?format=chrome`); values are
    /// taken verbatim (no percent-decoding — the debug endpoints only
    /// take simple tokens).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }
}

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or headers.
    Malformed(String),
    /// Head or body exceeded its size bound.
    TooLarge,
    /// The peer closed or the socket failed mid-request.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge => f.write_str("request too large"),
            HttpError::Io(m) => write!(f, "connection error: {m}"),
        }
    }
}

/// Read one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut head = Vec::with_capacity(1024);
    let mut buf = [0u8; 1024];
    let header_end;
    // Read until the blank line terminating the head.
    loop {
        if let Some(pos) = find_header_end(&head) {
            header_end = pos;
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        // Bail before buffering a pathological request line to the full
        // head limit: no terminating CRLF within the line budget.
        if head.len() > MAX_REQUEST_LINE_BYTES && !head.contains(&b'\n') {
            return Err(HttpError::TooLarge);
        }
        let n = stream.read(&mut buf).map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            return Err(HttpError::Io("connection closed mid-request".into()));
        }
        head.extend_from_slice(&buf[..n]);
    }
    let body_start = header_end + 4;
    let head_text = std::str::from_utf8(&head[..header_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_REQUEST_LINE_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut content_length: Option<usize> = None;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            if name.trim().eq_ignore_ascii_case("content-length") {
                let parsed: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad Content-Length".into()))?;
                // Duplicate Content-Length headers with different values
                // are a request-smuggling vector — reject, don't guess.
                if content_length.is_some_and(|previous| previous != parsed) {
                    return Err(HttpError::Malformed(
                        "conflicting Content-Length headers".into(),
                    ));
                }
                content_length = Some(parsed);
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = head[body_start..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf).map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            return Err(HttpError::Io("connection closed mid-body".into()));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, query, headers, body })
}

fn find_header_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Write a complete JSON response and flush. Errors are swallowed — the
/// peer may already be gone, and there is nobody left to tell.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) {
    respond(stream, status, "application/json", body, &[]);
}

/// Write a complete response with an explicit content type and extra
/// headers (e.g. `X-Trace-Id`), then flush. Header values are sanitized
/// to a single line; errors are swallowed — the peer may already be
/// gone, and there is nobody left to tell.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        let value: String = value
            .chars()
            .filter(|c| !c.is_control())
            .take(256)
            .collect();
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Canonical reason phrase of the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn reasons_cover_emitted_codes() {
        for code in [200, 400, 404, 405, 413, 429, 500, 503, 504] {
            assert_ne!(reason(code), "Unknown");
        }
    }

    /// Feed raw bytes through a real socket pair into `read_request`.
    fn read_raw(raw: Vec<u8>) -> Result<Request, HttpError> {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let _ = stream.write_all(&raw);
            let _ = stream.shutdown(std::net::Shutdown::Write);
            stream // keep alive until the reader is done
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream);
        let _ = writer.join();
        result
    }

    #[test]
    fn overlong_request_line_is_too_large() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE_BYTES));
        assert_eq!(read_raw(raw.into_bytes()), Err(HttpError::TooLarge));
        // Even without a terminating newline the reader bails early.
        let unterminated = vec![b'G'; MAX_REQUEST_LINE_BYTES + 1024];
        assert_eq!(read_raw(unterminated), Err(HttpError::TooLarge));
    }

    #[test]
    fn headers_and_query_are_captured() {
        let raw = b"GET /debug/trace/abc?format=chrome&x=1 HTTP/1.1\r\nX-Trace-Id: DEADBEEF\r\nHost: localhost\r\n\r\n".to_vec();
        let request = read_raw(raw).unwrap();
        assert_eq!(request.path, "/debug/trace/abc");
        assert_eq!(request.query, "format=chrome&x=1");
        assert_eq!(request.query_param("format"), Some("chrome"));
        assert_eq!(request.query_param("x"), Some("1"));
        assert_eq!(request.query_param("missing"), None);
        assert_eq!(request.header("x-trace-id"), Some("DEADBEEF"));
        assert_eq!(request.header("X-TRACE-ID"), Some("DEADBEEF"));
        assert_eq!(request.header("host"), Some("localhost"));
        assert_eq!(request.header("absent"), None);
    }

    #[test]
    fn conflicting_content_lengths_are_malformed() {
        let raw = b"POST /v1/scan HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n{}".to_vec();
        assert!(matches!(read_raw(raw), Err(HttpError::Malformed(_))));
        // Agreeing duplicates are harmless and accepted.
        let raw = b"POST /v1/scan HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}".to_vec();
        let request = read_raw(raw).unwrap();
        assert_eq!(request.body, b"{}");
    }

    #[test]
    fn declared_body_over_limit_is_too_large() {
        let raw = format!(
            "POST /v1/scan HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(read_raw(raw.into_bytes()), Err(HttpError::TooLarge));
    }
}
