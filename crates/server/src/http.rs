//! A hand-written HTTP/1.1 subset: exactly what the analysis daemon
//! needs — request line, headers, `Content-Length` bodies, keep-alive
//! and pipelining. No chunked encoding, no TLS; the daemon fronts
//! trusted local tooling, not the internet.
//!
//! The core is the incremental zero-copy parser
//! [`parse_request_bytes`]: it inspects a `&[u8]` window of a
//! connection buffer and either yields a borrowed [`ReqView`] (no
//! per-header allocation) plus the number of bytes consumed, or reports
//! that the request is still incomplete. The reactor calls it in a loop
//! over its per-connection read buffer, which is what makes pipelined
//! requests in one TCP segment work. The blocking [`read_request`] used
//! by the non-Linux fallback path and the tests is a thin loop over the
//! same parser, so both transports share one grammar and one set of
//! limits.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on the request line alone (method + target + version) —
/// tighter than the whole head, since no legitimate target comes close.
pub const MAX_REQUEST_LINE_BYTES: usize = 4 * 1024;

/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request (owned form, used at the dispatch boundary and by
/// the blocking fallback path).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// The raw query string (without the `?`; empty when absent).
    pub query: String,
    /// Request headers as `(lowercased-name, trimmed-value)` pairs, in
    /// arrival order. The reactor's service path dispatches with an
    /// empty vector (correlation ids are extracted from the borrowed
    /// view before the copy), so routing must not depend on headers.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter (`?format=chrome`); values are
    /// taken verbatim (no percent-decoding — the debug endpoints only
    /// take simple tokens).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }
}

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or headers.
    Malformed(String),
    /// Head or body exceeded its size bound.
    TooLarge,
    /// The peer closed or the socket failed mid-request.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge => f.write_str("request too large"),
            HttpError::Io(m) => write!(f, "connection error: {m}"),
        }
    }
}

/// A zero-copy view of one complete request inside a connection buffer.
/// Everything borrows from the buffer the parser was handed; header
/// lookup scans the raw head lines lazily instead of materializing
/// `(String, String)` pairs.
#[derive(Debug)]
pub struct ReqView<'a> {
    /// Request method, as sent.
    pub method: &'a str,
    /// Request path, query string stripped.
    pub path: &'a str,
    /// The raw query string (without the `?`; empty when absent).
    pub query: &'a str,
    /// The raw header block (the lines after the request line).
    head: &'a str,
    /// The request body.
    pub body: &'a [u8],
    /// Negotiated connection persistence: HTTP/1.1 defaults to
    /// keep-alive, `Connection: close` (or an HTTP/1.0 request without
    /// `Connection: keep-alive`) turns it off.
    pub keep_alive: bool,
}

impl<'a> ReqView<'a> {
    /// First value of a header, by case-insensitive name. A lazy scan
    /// over the raw head — no allocation.
    pub fn header(&self, name: &str) -> Option<&'a str> {
        let head = self.head;
        head.split("\r\n").find_map(|line| {
            let (n, v) = line.split_once(':')?;
            if n.trim().eq_ignore_ascii_case(name) { Some(v.trim()) } else { None }
        })
    }

    /// All headers as `(name, value)` pairs, in arrival order (names in
    /// original case — callers lowercase if they need to).
    pub fn headers(&self) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        let head = self.head;
        head.split("\r\n").filter_map(|line| {
            let (n, v) = line.split_once(':')?;
            Some((n.trim(), v.trim()))
        })
    }

    /// Owned copy carrying every header (the blocking fallback path and
    /// the tests want the full set).
    pub fn to_request(&self) -> Request {
        Request {
            method: self.method.to_string(),
            path: self.path.to_string(),
            query: self.query.to_string(),
            headers: self
                .headers()
                .map(|(n, v)| (n.to_ascii_lowercase(), v.to_string()))
                .collect(),
            body: self.body.to_vec(),
        }
    }

    /// Owned copy without headers — the reactor's dispatch form. The
    /// correlation ids are read from the view before this copy, and
    /// routing never consults headers, so dropping them saves two to
    /// five small allocations per request on the hot path.
    pub fn to_request_lean(&self) -> Request {
        Request {
            method: self.method.to_string(),
            path: self.path.to_string(),
            query: self.query.to_string(),
            headers: Vec::new(),
            body: self.body.to_vec(),
        }
    }
}

/// Outcome of one incremental parse attempt.
#[derive(Debug)]
pub enum Parsed<'a> {
    /// A complete request; `consumed` bytes of the buffer belong to it
    /// (pipelined successors start at `buf[consumed..]`).
    Complete {
        /// The borrowed request view.
        view: ReqView<'a>,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
    /// More bytes are needed; nothing was consumed.
    Partial,
}

/// Incrementally parse one request from the front of `buf`.
///
/// Errors are terminal for the connection: [`HttpError::TooLarge`] for
/// a head, request line or declared body over its bound (the body bound
/// is enforced from the `Content-Length` declaration, before the body
/// arrives), [`HttpError::Malformed`] for grammar violations — including
/// `Transfer-Encoding`, which this subset rejects rather than misframe
/// (request-smuggling hygiene, same reasoning as the conflicting
/// `Content-Length` check).
pub fn parse_request_bytes(buf: &[u8]) -> Result<Parsed<'_>, HttpError> {
    let Some(header_end) = find_header_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        // Bail before buffering a pathological request line to the full
        // head limit: no terminating LF within the line budget.
        if buf.len() > MAX_REQUEST_LINE_BYTES && !buf.contains(&b'\n') {
            return Err(HttpError::TooLarge);
        }
        return Ok(Parsed::Partial);
    };
    if header_end > MAX_HEAD_BYTES {
        return Err(HttpError::TooLarge);
    }
    let body_start = header_end + 4;
    let head_text = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let (request_line, header_block) =
        head_text.split_once("\r\n").unwrap_or((head_text, ""));
    if request_line.len() > MAX_REQUEST_LINE_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    let mut content_length: Option<usize> = None;
    let mut connection: Option<&str> = None;
    for line in header_block.split("\r\n") {
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad Content-Length".into()))?;
            // Duplicate Content-Length headers with different values
            // are a request-smuggling vector — reject, don't guess.
            if content_length.is_some_and(|previous| previous != parsed) {
                return Err(HttpError::Malformed(
                    "conflicting Content-Length headers".into(),
                ));
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("connection") {
            connection = Some(value.trim());
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Malformed(
                "Transfer-Encoding is not supported".into(),
            ));
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(Parsed::Partial);
    }
    let keep_alive = match connection {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => version.eq_ignore_ascii_case("HTTP/1.1"),
    };
    Ok(Parsed::Complete {
        view: ReqView {
            method,
            path,
            query,
            head: header_block,
            body: &buf[body_start..total],
            keep_alive,
        },
        consumed: total,
    })
}

/// Read one request from the stream (blocking form): a loop feeding the
/// incremental parser. Used by the non-Linux fallback transport and the
/// protocol tests.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        // The owned copy must be made before `buf` grows again, hence
        // the parse-then-read shape.
        match parse_request_bytes(&buf)? {
            Parsed::Complete { view, .. } => return Ok(view.to_request()),
            Parsed::Partial => {}
        }
        let n = stream.read(&mut chunk).map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            return Err(HttpError::Io("connection closed mid-request".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Locate the `\r\n\r\n` head terminator.
pub(crate) fn find_header_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Render a complete response to bytes: status line, framing headers,
/// sanitized extra headers (e.g. `X-Trace-Id`), body. `keep_alive`
/// selects the `Connection` header — error classes that poison the
/// connection (408/413/400 at the protocol level) must pass `false`.
pub fn render_response(
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut head = String::with_capacity(192);
    let _ = write!(
        head,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.extend(value.chars().filter(|c| !c.is_control()).take(256));
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

/// Write a complete JSON response and flush. Errors are swallowed — the
/// peer may already be gone, and there is nobody left to tell.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) {
    respond(stream, status, "application/json", body, &[]);
}

/// Write a complete `Connection: close` response with an explicit
/// content type and extra headers, then flush. Errors are swallowed —
/// the peer may already be gone, and there is nobody left to tell.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) {
    let bytes = render_response(status, content_type, body, extra_headers, false);
    let _ = stream.write_all(&bytes);
    let _ = stream.flush();
}

/// Canonical reason phrase of the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn reasons_cover_emitted_codes() {
        for code in [200, 400, 404, 405, 408, 413, 429, 500, 503, 504] {
            assert_ne!(reason(code), "Unknown");
        }
    }

    /// Feed raw bytes through a real socket pair into `read_request`.
    fn read_raw(raw: Vec<u8>) -> Result<Request, HttpError> {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let _ = stream.write_all(&raw);
            let _ = stream.shutdown(std::net::Shutdown::Write);
            stream // keep alive until the reader is done
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream);
        let _ = writer.join();
        result
    }

    #[test]
    fn overlong_request_line_is_too_large() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE_BYTES));
        assert_eq!(read_raw(raw.into_bytes()), Err(HttpError::TooLarge));
        // Even without a terminating newline the reader bails early.
        let unterminated = vec![b'G'; MAX_REQUEST_LINE_BYTES + 1024];
        assert_eq!(read_raw(unterminated), Err(HttpError::TooLarge));
    }

    #[test]
    fn headers_and_query_are_captured() {
        let raw = b"GET /debug/trace/abc?format=chrome&x=1 HTTP/1.1\r\nX-Trace-Id: DEADBEEF\r\nHost: localhost\r\n\r\n".to_vec();
        let request = read_raw(raw).unwrap();
        assert_eq!(request.path, "/debug/trace/abc");
        assert_eq!(request.query, "format=chrome&x=1");
        assert_eq!(request.query_param("format"), Some("chrome"));
        assert_eq!(request.query_param("x"), Some("1"));
        assert_eq!(request.query_param("missing"), None);
        assert_eq!(request.header("x-trace-id"), Some("DEADBEEF"));
        assert_eq!(request.header("X-TRACE-ID"), Some("DEADBEEF"));
        assert_eq!(request.header("host"), Some("localhost"));
        assert_eq!(request.header("absent"), None);
    }

    #[test]
    fn conflicting_content_lengths_are_malformed() {
        let raw = b"POST /v1/scan HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n{}".to_vec();
        assert!(matches!(read_raw(raw), Err(HttpError::Malformed(_))));
        // Agreeing duplicates are harmless and accepted.
        let raw = b"POST /v1/scan HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}".to_vec();
        let request = read_raw(raw).unwrap();
        assert_eq!(request.body, b"{}");
    }

    #[test]
    fn declared_body_over_limit_is_too_large() {
        let raw = format!(
            "POST /v1/scan HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(read_raw(raw.into_bytes()), Err(HttpError::TooLarge));
    }

    #[test]
    fn incremental_parse_reports_partial_then_complete() {
        let raw = b"POST /v1/scan HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 0..raw.len() {
            match parse_request_bytes(&raw[..cut]).expect("prefix never errors") {
                Parsed::Partial => {}
                Parsed::Complete { .. } => panic!("complete at prefix {cut}"),
            }
        }
        match parse_request_bytes(raw).unwrap() {
            Parsed::Complete { view, consumed } => {
                assert_eq!(consumed, raw.len());
                assert_eq!(view.method, "POST");
                assert_eq!(view.path, "/v1/scan");
                assert_eq!(view.body, b"body");
                assert!(view.keep_alive, "HTTP/1.1 defaults to keep-alive");
            }
            Parsed::Partial => panic!("full request parsed as partial"),
        }
    }

    #[test]
    fn pipelined_requests_consume_only_their_bytes() {
        let raw = b"GET /health HTTP/1.1\r\n\r\nPOST /v1/scan HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let Parsed::Complete { view, consumed } = parse_request_bytes(raw).unwrap() else {
            panic!("first request incomplete");
        };
        assert_eq!(view.path, "/health");
        let Parsed::Complete { view, consumed: second } =
            parse_request_bytes(&raw[consumed..]).unwrap()
        else {
            panic!("second request incomplete");
        };
        assert_eq!(view.path, "/v1/scan");
        assert_eq!(view.body, b"{}");
        assert_eq!(consumed + second, raw.len());
    }

    #[test]
    fn connection_negotiation_follows_version_and_header() {
        let parse_ka = |raw: &[u8]| match parse_request_bytes(raw).unwrap() {
            Parsed::Complete { view, .. } => view.keep_alive,
            Parsed::Partial => panic!("incomplete"),
        };
        assert!(parse_ka(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(!parse_ka(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!parse_ka(b"GET / HTTP/1.0\r\n\r\n"));
        assert!(parse_ka(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(parse_request_bytes(raw), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn render_response_negotiates_connection_header() {
        let ka = String::from_utf8(render_response(200, "application/json", "{}", &[], true))
            .unwrap();
        assert!(ka.contains("Connection: keep-alive\r\n"), "{ka}");
        assert!(ka.contains("Content-Length: 2\r\n"), "{ka}");
        let close = String::from_utf8(render_response(
            408,
            "application/json",
            "{}",
            &[("X-Trace-Id", "abc\u{7}def")],
            false,
        ))
        .unwrap();
        assert!(close.starts_with("HTTP/1.1 408 Request Timeout\r\n"), "{close}");
        assert!(close.contains("Connection: close\r\n"), "{close}");
        // Header values are sanitized to printable single-line text.
        assert!(close.contains("X-Trace-Id: abcdef\r\n"), "{close}");
    }
}
