//! The analysis daemon entry point.
//!
//! ```text
//! serve [--port N] [--port-file PATH] [--workers N] [--queue-cap N]
//!       [--shards N] [--read-timeout-ms N] [--max-pipeline N]
//!       [--timeout-ms N] [--corpus N]
//!       [--snapshot-dir PATH] [--index-shards N]
//!       [--wal-fsync always|batch:<ms>|never] [--compact-after N]
//!       [--breaker-threshold N] [--breaker-open-ms N]
//!       [--trace on|off] [--access-log PATH] [--slow-log PATH] [--slow-ms N]
//! ```
//!
//! Binds `127.0.0.1:<port>` (port 0 → ephemeral; the chosen port is
//! printed and, with `--port-file`, written to a file for scripts to
//! pick up). The clone corpus is the honeypot dataset of the recorded
//! run, truncated to `--corpus` contracts (0 → all 379). SIGTERM and
//! SIGINT trigger a graceful drain.
//!
//! Warm start: with `--snapshot-dir`, the corpus is loaded from the
//! directory's committed snapshot generation (milliseconds — no
//! re-fingerprinting) when one exists; otherwise it is built from source
//! and committed as generation 1 so the *next* start is warm. The
//! `/v1/index` endpoints then manage the live corpus: `insert` adds
//! documents in memory, `compact` folds them into the next generation.
//! `--index-shards` splits candidate retrieval across N parallel shards.
//!
//! Durability: with a snapshot dir every insert is appended to a
//! write-ahead log before it is acknowledged, so acknowledged deltas
//! survive `kill -9` and replay on the next warm start. `--wal-fsync`
//! picks the fsync discipline (`always` per append, `batch:<ms>` group
//! commit — the default `batch:5`, `never` leaves flushing to the OS).
//! `--compact-after N` folds deltas into a new snapshot generation in
//! the background once more than N accumulate (default off).
//!
//! Observability: metrics and request tracing are on by default in the
//! daemon (`--trace off` or `TELEMETRY=0` disables everything; the kill
//! switch always wins). `--access-log`/`--slow-log` append JSONL request
//! records; `--slow-ms` sets the slow-request threshold (default 500).
//! Tracing tunables come from the environment: `TRACE_SLOW_US`,
//! `TRACE_KEEP_EVERY`, `TRACE_SEED` (see `telemetry::trace`).
//!
//! Chaos testing: `FAULT_SPEC`/`FAULT_SEED` in the environment arm the
//! deterministic fault plan (see the `faultinject` crate); when armed,
//! the active plan is logged at startup.

use corpus::honeypots::honeypot_dataset;
use index_store::FsyncPolicy;
use pipeline::api::{AnalysisConfig, AnalysisEngine};
use pipeline::corpus_index::CorpusBuilder;
use server::{install_signal_handlers, Server, ServerConfig};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// Seed of the recorded honeypot corpus (see `bench::HONEYPOT_SEED`).
const HONEYPOT_SEED: u64 = 1;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut port: u16 = 0;
    let mut port_file: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut timeout_ms: Option<u64> = None;
    let mut corpus_size: usize = 64;
    let mut snapshot_dir: Option<String> = None;
    let mut index_shards: usize = 1;
    let mut wal_fsync = FsyncPolicy::default();
    let mut trace_on = true;
    let mut i = 1;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--port" => {
                port = value(i).parse().expect("--port must be a port number");
                i += 2;
            }
            "--port-file" => {
                port_file = Some(value(i).clone());
                i += 2;
            }
            "--workers" => {
                config.workers = value(i).parse().expect("--workers must be a count");
                i += 2;
            }
            "--queue-cap" => {
                config.queue_capacity = value(i).parse().expect("--queue-cap must be a count");
                i += 2;
            }
            "--shards" => {
                config.shards = value(i).parse().expect("--shards must be a count");
                i += 2;
            }
            "--read-timeout-ms" => {
                config.read_timeout_ms =
                    value(i).parse().expect("--read-timeout-ms must be milliseconds");
                i += 2;
            }
            "--max-pipeline" => {
                config.max_pipeline = value(i).parse().expect("--max-pipeline must be a count");
                i += 2;
            }
            "--timeout-ms" => {
                timeout_ms = Some(value(i).parse().expect("--timeout-ms must be milliseconds"));
                i += 2;
            }
            "--corpus" => {
                corpus_size = value(i).parse().expect("--corpus must be a count");
                i += 2;
            }
            "--snapshot-dir" => {
                snapshot_dir = Some(value(i).clone());
                i += 2;
            }
            "--index-shards" => {
                index_shards = value(i).parse().expect("--index-shards must be a count");
                i += 2;
            }
            "--wal-fsync" => {
                wal_fsync = FsyncPolicy::parse(value(i)).unwrap_or_else(|e| {
                    eprintln!("--wal-fsync: {e}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--compact-after" => {
                config.compact_after =
                    Some(value(i).parse().expect("--compact-after must be a count"));
                i += 2;
            }
            "--breaker-threshold" => {
                config.breaker.failure_threshold =
                    value(i).parse().expect("--breaker-threshold must be a count");
                i += 2;
            }
            "--breaker-open-ms" => {
                config.breaker.open_ms =
                    value(i).parse().expect("--breaker-open-ms must be milliseconds");
                i += 2;
            }
            "--trace" => {
                trace_on = match value(i).as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        eprintln!("--trace must be on|off, got {other}");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--access-log" => {
                config.access_log = Some(value(i).into());
                i += 2;
            }
            "--slow-log" => {
                config.slow_log = Some(value(i).into());
                i += 2;
            }
            "--slow-ms" => {
                config.slow_ms = value(i).parse().expect("--slow-ms must be milliseconds");
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    faultinject::init_from_env();
    if faultinject::active() {
        eprintln!("[serve] fault injection armed from FAULT_SPEC");
    }

    // The daemon defaults telemetry + tracing ON (it is the observable
    // surface); `--trace off` or the TELEMETRY=0 kill switch turn both
    // off again. `enable()` respects the kill switch internally.
    if trace_on {
        telemetry::enable();
        telemetry::trace::set_enabled(true);
        telemetry::trace::init_from_env();
    } else {
        telemetry::trace::set_enabled(false);
    }

    let mut analysis = AnalysisConfig::default();
    if let Some(ms) = timeout_ms {
        analysis = analysis.with_timeout_ms(ms);
    }

    let builder =
        || CorpusBuilder::new(analysis.ccd_params()).shards(index_shards).wal_fsync(wal_fsync);
    let build_cold = |builder: CorpusBuilder| {
        let dataset = honeypot_dataset(HONEYPOT_SEED);
        let take = if corpus_size == 0 { dataset.contracts.len() } else { corpus_size };
        builder.from_sources(dataset.contracts.iter().take(take).map(|c| (c.id, c.source.as_str())))
    };
    let started = Instant::now();
    let corpus = match &snapshot_dir {
        Some(dir) => {
            // Warm path: assemble the matcher from the committed snapshot
            // generation — no fingerprinting, no re-gramming.
            match builder().snapshot_dir(dir).load_snapshot() {
                Ok(Some(handle)) => {
                    eprintln!(
                        "[serve] warm start: generation {} ({} docs, {} replayed from WAL) \
                         loaded in {:.1} ms",
                        handle.generation(),
                        handle.len(),
                        handle.replayed_on_boot(),
                        started.elapsed().as_secs_f64() * 1e3,
                    );
                    handle
                }
                Ok(None) => {
                    // Fresh directory: cold build, then commit generation 1
                    // so the next start is warm.
                    eprintln!("[serve] no snapshot yet; building warm corpus ...");
                    let handle = build_cold(builder().snapshot_dir(dir));
                    match handle.compact() {
                        Ok(generation) => eprintln!(
                            "[serve] corpus committed as snapshot generation {generation}"
                        ),
                        Err(e) => eprintln!("[serve] snapshot commit failed: {e}"),
                    }
                    handle
                }
                Err(e) => {
                    eprintln!("[serve] cannot load snapshot ({e}); rebuilding from source");
                    build_cold(builder().snapshot_dir(dir))
                }
            }
        }
        None => {
            eprintln!("[serve] building warm corpus ...");
            build_cold(builder())
        }
    };
    eprintln!(
        "[serve] corpus ready: {} fingerprinted contracts ({} index shard{})",
        corpus.len(),
        corpus.shard_count(),
        if corpus.shard_count() == 1 { "" } else { "s" },
    );
    let engine = Arc::new(AnalysisEngine::with_corpus_handle(analysis, corpus));

    install_signal_handlers();
    let server = Server::bind(&format!("127.0.0.1:{port}"), config, engine)
        .expect("failed to bind service port");
    let addr = server.local_addr().expect("bound listener has an address");
    if let Some(path) = port_file {
        let mut f = std::fs::File::create(&path).expect("failed to create port file");
        writeln!(f, "{}", addr.port()).expect("failed to write port file");
    }
    println!("listening on {addr}");
    match server.run() {
        Ok(()) => eprintln!("[serve] drained and stopped"),
        Err(e) => {
            eprintln!("[serve] accept loop failed: {e}");
            std::process::exit(1);
        }
    }
}
