//! Load generator for the analysis daemon.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--concurrency N]
//!         [--no-keepalive] [--pipeline-depth N] [--batch N]
//!         [--out PATH] [--no-append] [--smoke] [--chaos]
//!         [--observability] [--trace-overhead] [--serve-gate]
//!         [--warmstart] [--durability]
//! ```
//!
//! Drives a running daemon (`--addr`) or spins up an in-process one on an
//! ephemeral port, fires a mixed scan/clone-check workload from
//! `--concurrency` threads, and appends one throughput/latency point
//! (`rps`, `p50/p95/p99` µs, plus the `keepalive`/`pipeline_depth`/
//! `batch` profile) to the benchmark trajectory file. `--smoke` is the CI
//! mode: a small burst plus response well-formedness checks, designed to
//! finish in seconds.
//!
//! Connection profile: requests reuse one keep-alive connection per
//! worker thread by default; `--no-keepalive` restores the old
//! connect-per-request behavior. `--pipeline-depth N` writes windows of
//! N requests before reading the responses back (HTTP/1.1 pipelining);
//! the per-request clock starts at write time, so queueing inside the
//! window is charged to the request, not hidden. `--batch N` folds N
//! workload items into one `POST /v1/batch` request and counts each item
//! toward throughput.
//!
//! `--serve-gate` is the transport-regression gate: it measures a warm
//! keep-alive burst against an in-process daemon and fails if throughput
//! regressed more than 20% below the last keep-alive `serve_loadgen`
//! point in the trajectory file (one re-measure on a miss). Nothing is
//! appended.
//!
//! `--chaos` is the fault-tolerance mode: the daemon is expected to be
//! running under an armed `FAULT_SPEC`, so requests go through the
//! retrying client and a *typed* error response (an `"kind":"error"`
//! document, any status) counts as a correct outcome. The run fails only
//! on transport-level breakage the retry budget cannot absorb or on
//! responses that do not decode — i.e. exactly the failure modes fault
//! isolation is supposed to prevent. No trajectory point is appended.
//!
//! `--observability` is the tracing/metrics smoke: fires a traced scan
//! with a caller-chosen `X-Trace-Id`, asserts the id is echoed, fetches
//! the span tree from `/debug/trace/<id>` (plain and Chrome formats),
//! checks `/debug/traces/recent`, and validates the full `/metrics`
//! Prometheus exposition including the per-endpoint RED series. Ids must
//! also appear on error responses. In-process daemons get tracing
//! enabled automatically; external ones must run with tracing on.
//!
//! `--trace-overhead` is the performance gate: runs the measured burst
//! twice against an in-process daemon — tracing off, then on — and fails
//! if tracing costs more than 5% throughput (one re-measure on a miss,
//! since a single burst is noisy). Appends both points to the trajectory
//! file tagged `"tracing": "off"/"on"`.
//!
//! `--warmstart` is the persistent-index benchmark: it times a cold
//! corpus build (fingerprint + index every honeypot contract from
//! source) against a warm start from the committed snapshot of the same
//! corpus — with a tail of uncompacted inserts left in the write-ahead
//! log, so the timed load includes the replay a real post-crash boot
//! performs — then drives a near-duplicate clone-check burst (Type I/II
//! mutants of corpus contracts, the copy-paste traffic shape from the
//! paper) through an in-process daemon over the warm index to measure
//! the front-cache hit rate. Fails if the snapshot load is not at least
//! 10x faster than the rebuild; appends one `index_warmstart` point
//! (`cold_ms`, `warm_ms`, `speedup`, `wal_replayed`,
//! `front_cache_hit_rate`).
//!
//! `--durability` is the WAL throughput benchmark: it measures the
//! `/v1/index/insert` rate through an in-process daemon under each
//! fsync policy (`never`, `batch:5`, `always`) on its own fresh
//! snapshot directory. Group commit must hold up: the run fails if
//! `batch:5` lands below half the `never` rate or below the floor
//! recorded by the last `wal_durability` trajectory point (one
//! re-measure on a miss — single bursts are noisy). Appends one
//! `wal_durability` point with all three rates.

use corpus::honeypots::honeypot_dataset;
use index_store::FsyncPolicy;
use pipeline::api::{AnalysisConfig, AnalysisEngine, AnalysisRequest, AnalysisResponse};
use pipeline::corpus_index::CorpusBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use server::{client, Server, ServerConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const HONEYPOT_SEED: u64 = 1;

const SCAN_SNIPPETS: &[&str] = &[
    "function f(address to) public { to.send(1); }",
    "contract Dao { mapping(address => uint) balances; \
     function withdraw() public { uint amount = balances[msg.sender]; \
     msg.sender.call{value: amount}(\"\"); balances[msg.sender] = 0; } }",
    "function kill() public { selfdestruct(msg.sender); }",
    "if (block.timestamp > deadline) { winner = msg.sender; }",
];

/// Connection profile for the measured burst.
#[derive(Clone, Copy)]
struct Profile {
    /// Reuse one connection per worker thread (default on).
    keepalive: bool,
    /// Requests written per pipelined window (1 = request/response
    /// lockstep).
    pipeline_depth: usize,
    /// Workload items folded into one `/v1/batch` request (0 = off).
    batch: usize,
}

struct Args {
    addr: Option<String>,
    requests: usize,
    concurrency: usize,
    profile: Profile,
    out: String,
    append: bool,
    smoke: bool,
    chaos: bool,
    observability: bool,
    trace_overhead: bool,
    serve_gate: bool,
    warmstart: bool,
    durability: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut args = Args {
        addr: None,
        requests: 256,
        concurrency: 16,
        profile: Profile { keepalive: true, pipeline_depth: 1, batch: 0 },
        out: "BENCH_trajectory.json".to_string(),
        append: true,
        smoke: false,
        chaos: false,
        observability: false,
        trace_overhead: false,
        serve_gate: false,
        warmstart: false,
        durability: false,
    };
    let mut i = 1;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value for {}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--addr" => {
                args.addr = Some(value(i).clone());
                i += 2;
            }
            "--requests" => {
                args.requests = value(i).parse().expect("--requests must be a count");
                i += 2;
            }
            "--concurrency" => {
                args.concurrency = value(i).parse().expect("--concurrency must be a count");
                i += 2;
            }
            "--out" => {
                args.out = value(i).clone();
                i += 2;
            }
            "--no-keepalive" => {
                args.profile.keepalive = false;
                i += 1;
            }
            "--pipeline-depth" => {
                args.profile.pipeline_depth =
                    value(i).parse().expect("--pipeline-depth must be a count");
                i += 2;
            }
            "--batch" => {
                args.profile.batch = value(i).parse().expect("--batch must be a count");
                i += 2;
            }
            "--serve-gate" => {
                args.serve_gate = true;
                i += 1;
            }
            "--no-append" => {
                args.append = false;
                i += 1;
            }
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            "--chaos" => {
                args.chaos = true;
                i += 1;
            }
            "--observability" => {
                args.observability = true;
                i += 1;
            }
            "--trace-overhead" => {
                args.trace_overhead = true;
                i += 1;
            }
            "--warmstart" => {
                args.warmstart = true;
                i += 1;
            }
            "--durability" => {
                args.durability = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if args.smoke {
        args.requests = args.requests.min(64);
        args.concurrency = args.concurrency.min(8);
    }
    if args.chaos {
        // Latency points measured through injected faults would poison
        // the trajectory file.
        args.append = false;
    }
    if args.trace_overhead && args.addr.is_some() {
        // The gate toggles the process-global tracing switch, which only
        // reaches an in-process daemon.
        eprintln!("--trace-overhead drives its own in-process daemon; drop --addr");
        std::process::exit(2);
    }
    if args.warmstart && args.addr.is_some() {
        // The benchmark owns the corpus lifecycle (cold build, snapshot
        // commit, warm reload); an external daemon's corpus is opaque.
        eprintln!("--warmstart drives its own in-process daemon; drop --addr");
        std::process::exit(2);
    }
    if args.durability && args.addr.is_some() {
        // The benchmark restarts the daemon once per fsync policy.
        eprintln!("--durability drives its own in-process daemons; drop --addr");
        std::process::exit(2);
    }
    if args.serve_gate {
        if args.addr.is_some() {
            eprintln!("--serve-gate drives its own in-process daemon; drop --addr");
            std::process::exit(2);
        }
        // The gate compares against the recorded baseline; it never
        // writes a point of its own.
        args.append = false;
    }
    if args.profile.pipeline_depth == 0 {
        args.profile.pipeline_depth = 1;
    }
    if args.profile.batch > 0 && !args.profile.keepalive {
        eprintln!("--batch requires keep-alive connections; drop --no-keepalive");
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    let dataset = honeypot_dataset(HONEYPOT_SEED);

    if args.observability || args.trace_overhead {
        // Both modes read the process-wide metric registry; the traced
        // smoke additionally needs span buffering in the in-process
        // daemon.
        telemetry::enable();
    }
    if args.observability && args.addr.is_none() {
        telemetry::trace::set_enabled(true);
        telemetry::trace::init_from_env();
    }
    if args.trace_overhead {
        trace_overhead_gate(&args, &dataset);
        return;
    }
    if args.serve_gate {
        serve_gate(&args, &dataset);
        return;
    }
    if args.warmstart {
        warmstart_bench(&args, &dataset);
        return;
    }
    if args.durability {
        durability_bench(&args);
        return;
    }

    // Resolve a target: external daemon or an in-process one.
    let mut in_process: Option<(server::ShutdownHandle, std::thread::JoinHandle<()>)> = None;
    let addr = match &args.addr {
        Some(addr) => addr.clone(),
        None => {
            let (addr, handle, join) = spawn_in_process(&dataset);
            in_process = Some((handle, join));
            addr
        }
    };

    if args.chaos {
        chaos_smoke(&addr);
    } else {
        smoke_checks(&addr, &dataset);
    }
    if args.observability {
        observability_smoke(&addr);
        shutdown_in_process(in_process);
        return;
    }

    let (bodies, paths) = build_workload(&dataset, args.requests);
    let outcome = run_burst(
        &addr,
        &bodies,
        &paths,
        args.concurrency,
        args.chaos,
        &retry_policy(),
        args.profile,
    );
    let BurstOutcome { lat, elapsed, failed, typed_errors, shed } = &outcome;
    if args.chaos {
        println!(
            "[loadgen] chaos: {} ok, {} typed errors, {} shed, {} failed in {:.2}s",
            lat.len(),
            typed_errors,
            shed,
            failed,
            elapsed.as_secs_f64()
        );
        if *failed > 0 {
            eprintln!("[loadgen] FAIL: {failed} requests broke through fault isolation");
            std::process::exit(1);
        }
        if lat.is_empty() {
            eprintln!("[loadgen] FAIL: no request succeeded under chaos");
            std::process::exit(1);
        }
        shutdown_in_process(in_process);
        return;
    }
    if lat.is_empty() {
        eprintln!("[loadgen] FAIL: no successful requests ({failed} failures)");
        std::process::exit(1);
    }
    let rps = outcome.rps();
    println!(
        "[loadgen] {} ok / {} failed in {:.2}s — {:.1} req/s, p50 {} µs, p95 {} µs, p99 {} µs",
        lat.len(),
        failed,
        elapsed.as_secs_f64(),
        rps,
        outcome.pct(0.50),
        outcome.pct(0.95),
        outcome.pct(0.99)
    );
    if *failed > 0 {
        eprintln!("[loadgen] FAIL: {failed} requests failed");
        std::process::exit(1);
    }

    if args.append {
        let point = format!(
            "{{\"bench\": \"serve_loadgen\", \"requests\": {}, \"concurrency\": {}, {}, \"rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
            lat.len(),
            args.concurrency,
            profile_fields(args.profile),
            rps,
            outcome.pct(0.50),
            outcome.pct(0.95),
            outcome.pct(0.99)
        );
        match append_point(&args.out, &point) {
            Ok(()) => println!("[loadgen] appended point to {}", args.out),
            Err(e) => {
                eprintln!("[loadgen] FAIL: could not append to {}: {e}", args.out);
                std::process::exit(1);
            }
        }
    }

    shutdown_in_process(in_process);
}

/// Bind and run an in-process daemon over the standard 64-contract warm
/// corpus; returns its address, shutdown handle and join handle.
fn spawn_in_process(
    dataset: &corpus::honeypots::HoneypotDataset,
) -> (String, server::ShutdownHandle, std::thread::JoinHandle<()>) {
    let engine = Arc::new(AnalysisEngine::with_corpus(
        AnalysisConfig::default(),
        dataset.contracts.iter().take(64).map(|c| (c.id, c.source.as_str())),
    ));
    let server = Server::bind("127.0.0.1:0", ServerConfig::default(), engine)
        .expect("failed to bind in-process server");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || {
        server.run().expect("in-process server failed");
    });
    (addr, handle, join)
}

fn shutdown_in_process(
    in_process: Option<(server::ShutdownHandle, std::thread::JoinHandle<()>)>,
) {
    if let Some((handle, join)) = in_process {
        handle.shutdown();
        join.join().expect("server thread");
    }
}

/// The measured burst's request mix: a deterministic scan/clone-check
/// alternation over the standard snippets and corpus prefixes.
fn build_workload(
    dataset: &corpus::honeypots::HoneypotDataset,
    requests: usize,
) -> (Vec<String>, Vec<&'static str>) {
    let bodies: Vec<String> = (0..requests)
        .map(|i| {
            if i % 2 == 0 {
                AnalysisRequest::scan(SCAN_SNIPPETS[i / 2 % SCAN_SNIPPETS.len()]).to_json()
            } else {
                let contract = &dataset.contracts[i % dataset.contracts.len().min(64)];
                AnalysisRequest::clone_check(contract.source.as_str()).to_json()
            }
        })
        .collect();
    let paths: Vec<&'static str> = (0..requests)
        .map(|i| if i % 2 == 0 { "/v1/scan" } else { "/v1/clone-check" })
        .collect();
    (bodies, paths)
}

fn retry_policy() -> client::RetryPolicy {
    client::RetryPolicy { max_attempts: 4, base_delay_ms: 5, max_delay_ms: 100, seed: 0xC4A05 }
}

/// What one burst produced: sorted success latencies (µs) plus failure
/// tallies.
struct BurstOutcome {
    lat: Vec<u64>,
    elapsed: std::time::Duration,
    failed: usize,
    typed_errors: usize,
    shed: usize,
}

impl BurstOutcome {
    fn rps(&self) -> f64 {
        self.lat.len() as f64 / self.elapsed.as_secs_f64()
    }

    /// Latency at quantile `q` (nearest-rank on the sorted vector).
    fn pct(&self, q: f64) -> u64 {
        let lat = &self.lat;
        lat[((q * (lat.len() - 1) as f64).round() as usize).min(lat.len() - 1)]
    }
}

/// Per-thread burst bookkeeping, merged into the shared counters when
/// the thread finishes.
#[derive(Default)]
struct Tally {
    lat: Vec<u64>,
    failed: usize,
    typed_errors: usize,
    shed: usize,
}

impl Tally {
    /// Classify one response against a per-request clock captured at
    /// write time.
    fn classify(&mut self, status: u16, body: &str, t0: Instant, chaos: bool) {
        match status {
            200 if AnalysisResponse::from_json(body).is_ok() => {
                self.lat.push(t0.elapsed().as_micros() as u64);
            }
            // Shed load is correct behavior, not a failure, but it
            // carries no latency signal.
            429 => self.shed += 1,
            // Under an armed fault plan, an injected fault surfacing as
            // a typed error document is the contract we are checking.
            _ if chaos && is_typed_error(body) => self.typed_errors += 1,
            _ => self.failed += 1,
        }
    }
}

/// Fire the whole workload from `concurrency` threads and collect the
/// outcome. The profile picks the transport: keep-alive pipelined
/// windows (default), batch requests, or the old connect-per-request
/// path. Chaos mode goes through the retrying client and counts typed
/// error documents as correct.
fn run_burst(
    addr: &str,
    bodies: &[String],
    paths: &[&str],
    concurrency: usize,
    chaos: bool,
    retry_policy: &client::RetryPolicy,
    profile: Profile,
) -> BurstOutcome {
    let cursor = AtomicUsize::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(bodies.len()));
    let failures = AtomicUsize::new(0);
    let typed_errors = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            scope.spawn(|| {
                let mut tally = Tally::default();
                if profile.batch > 0 && !chaos {
                    batch_worker(addr, bodies, &cursor, profile.batch, &mut tally);
                } else if profile.keepalive && !chaos {
                    pipelined_worker(
                        addr,
                        bodies,
                        paths,
                        &cursor,
                        profile.pipeline_depth,
                        &mut tally,
                    );
                } else {
                    sequential_worker(addr, bodies, paths, &cursor, chaos, retry_policy, &mut tally);
                }
                latencies.lock().expect("latency lock").extend(tally.lat);
                failures.fetch_add(tally.failed, Ordering::Relaxed);
                typed_errors.fetch_add(tally.typed_errors, Ordering::Relaxed);
                shed.fetch_add(tally.shed, Ordering::Relaxed);
            });
        }
    });
    let elapsed = started.elapsed();
    let mut lat = latencies.into_inner().expect("latency lock");
    lat.sort_unstable();
    BurstOutcome {
        lat,
        elapsed,
        failed: failures.load(Ordering::Relaxed),
        typed_errors: typed_errors.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
    }
}

/// The `--no-keepalive` / chaos path: one connection (or retry budget)
/// per request, exactly the pre-reactor behavior.
fn sequential_worker(
    addr: &str,
    bodies: &[String],
    paths: &[&str],
    cursor: &AtomicUsize,
    chaos: bool,
    retry_policy: &client::RetryPolicy,
    tally: &mut Tally,
) {
    loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= bodies.len() {
            break;
        }
        let t0 = Instant::now();
        let outcome = if chaos {
            client::post_with_retry(addr, paths[i], &bodies[i], retry_policy)
        } else {
            client::post(addr, paths[i], &bodies[i])
        };
        match outcome {
            Ok((status, body)) => tally.classify(status, &body, t0, chaos),
            Err(_) => tally.failed += 1,
        }
    }
}

/// The keep-alive path: claim a window of up to `depth` requests, write
/// them all (clock per request starts at its write), then read the
/// responses back in order. Depth 1 degrades to plain keep-alive
/// request/response lockstep.
fn pipelined_worker(
    addr: &str,
    bodies: &[String],
    paths: &[&str],
    cursor: &AtomicUsize,
    depth: usize,
    tally: &mut Tally,
) {
    let mut conn = client::Connection::new(addr);
    loop {
        let start = cursor.fetch_add(depth, Ordering::Relaxed);
        if start >= bodies.len() {
            break;
        }
        let end = (start + depth).min(bodies.len());
        if conn.connect().is_err() {
            tally.failed += end - start;
            continue;
        }
        let mut t0s: Vec<Instant> = Vec::with_capacity(end - start);
        for i in start..end {
            let t0 = Instant::now();
            if conn.send("POST", paths[i], &bodies[i], &[]).is_err() {
                break;
            }
            t0s.push(t0);
        }
        tally.failed += (end - start) - t0s.len();
        let mut received = 0;
        for t0 in &t0s {
            match conn.recv() {
                Ok(response) => {
                    tally.classify(response.status, &response.body, *t0, false);
                    received += 1;
                }
                Err(_) => break,
            }
        }
        tally.failed += t0s.len() - received;
    }
}

/// The `--batch N` path: fold N workload items into one `/v1/batch`
/// request over a keep-alive connection; each item counts toward
/// throughput with the batch's latency.
fn batch_worker(
    addr: &str,
    bodies: &[String],
    cursor: &AtomicUsize,
    batch: usize,
    tally: &mut Tally,
) {
    use telemetry::json::Value;
    let mut conn = client::Connection::new(addr);
    loop {
        let start = cursor.fetch_add(batch, Ordering::Relaxed);
        if start >= bodies.len() {
            break;
        }
        let end = (start + batch).min(bodies.len());
        let items = end - start;
        let body = format!("[{}]", bodies[start..end].join(","));
        if conn.connect().is_err() {
            tally.failed += items;
            continue;
        }
        let t0 = Instant::now();
        let outcome = conn.send("POST", "/v1/batch", &body, &[]).and_then(|()| conn.recv());
        match outcome {
            Ok(response) if response.status == 200 => {
                let results = telemetry::json::parse(&response.body)
                    .ok()
                    .and_then(|doc| doc.get("results").and_then(Value::as_array).map(<[Value]>::to_vec));
                match results {
                    Some(results) if results.len() == items => {
                        for element in &results {
                            if element.get("kind").and_then(Value::as_str) == Some("error") {
                                tally.failed += 1;
                            } else {
                                tally.lat.push(t0.elapsed().as_micros() as u64);
                            }
                        }
                    }
                    _ => tally.failed += items,
                }
            }
            Ok(response) if response.status == 429 => tally.shed += items,
            _ => tally.failed += items,
        }
    }
}

/// Minimal liveness check for chaos runs: the daemon must answer
/// `/health` (through the retrying client — the health route itself can
/// catch an injected `server/request` fault). Scan/clone-check payload
/// assertions are skipped because injected faults make their outcomes
/// nondeterministic by design.
fn chaos_smoke(addr: &str) {
    let policy = client::RetryPolicy::default();
    let (status, body) =
        client::get_with_retry(addr, "/health", &policy).expect("health request under chaos");
    assert!(
        status == 200 || is_typed_error(&body),
        "health returned {status} with undecodable body: {body}"
    );
    println!("[loadgen] chaos smoke: daemon is answering at {addr}");
}

/// Whether a response body is a well-formed typed error document
/// (`{"kind":"error","code":...}`) as produced by the server's error
/// path — the shape every injected fault must decay to.
fn is_typed_error(body: &str) -> bool {
    let Ok(value) = telemetry::json::parse(body) else { return false };
    value.get("kind").and_then(telemetry::json::Value::as_str) == Some("error")
        && value.get("code").and_then(telemetry::json::Value::as_str).is_some()
}

/// Correctness spot-checks before measuring: health, one scan, one
/// clone-check, all decoded through the typed API.
fn smoke_checks(addr: &str, dataset: &corpus::honeypots::HoneypotDataset) {
    let (status, body) = client::get(addr, "/health").expect("health request");
    assert_eq!(status, 200, "health returned {status}: {body}");
    assert!(body.contains("\"status\":\"ok\""), "unexpected health body: {body}");

    let scan = AnalysisRequest::scan("function f(address to) public { to.send(1); }").to_json();
    let (status, body) = client::post(addr, "/v1/scan", &scan).expect("scan request");
    assert_eq!(status, 200, "scan returned {status}: {body}");
    match AnalysisResponse::from_json(&body).expect("scan response decodes") {
        AnalysisResponse::Findings(findings) => {
            assert!(!findings.is_empty(), "vulnerable snippet produced no findings")
        }
        other => panic!("scan returned {other:?}"),
    }

    let check =
        AnalysisRequest::clone_check(dataset.contracts[0].source.as_str()).to_json();
    let (status, body) = client::post(addr, "/v1/clone-check", &check).expect("clone-check");
    assert_eq!(status, 200, "clone-check returned {status}: {body}");
    match AnalysisResponse::from_json(&body).expect("clone-check response decodes") {
        AnalysisResponse::Clones(hits) => {
            assert!(
                hits.iter().any(|h| h.score == 100.0),
                "corpus contract did not match itself: {hits:?}"
            )
        }
        other => panic!("clone-check returned {other:?}"),
    }
    println!("[loadgen] smoke checks passed against {addr}");
}

/// End-to-end tracing/metrics smoke against a tracing-enabled daemon:
/// id adoption and echo, span-tree retrieval in both formats, recent
/// summaries, Prometheus exposition validity, and ids on error paths.
fn observability_smoke(addr: &str) {
    use telemetry::json::{parse, Value};
    const TRACE_HEX: &str = "deadbeefcafef00d";

    // A traced scan with a caller-chosen trace id, echoed exactly. The
    // snippet is unique to this mode so the CPG cache cannot satisfy it:
    // the trace must contain real parse and cpg-build spans, not a
    // cache-hit shortcut.
    let scan = AnalysisRequest::scan(
        "contract ObsSmoke { function pay(address to) public { to.send(1); } }",
    )
    .to_json();
    let response = client::request_full(
        addr,
        "POST",
        "/v1/scan",
        &scan,
        &[("X-Trace-Id", TRACE_HEX), ("X-Request-Id", "loadgen-observability")],
    )
    .expect("traced scan request");
    assert_eq!(response.status, 200, "traced scan returned {}: {}", response.status, response.body);
    assert_eq!(
        response.header("x-trace-id"),
        Some(TRACE_HEX),
        "daemon did not echo the adopted trace id"
    );
    assert_eq!(response.header("x-request-id"), Some("loadgen-observability"));

    // The span tree is buffered before the response is written, so it is
    // immediately fetchable — with the pipeline stages at non-zero cost.
    let (status, body) =
        client::get(addr, &format!("/debug/trace/{TRACE_HEX}")).expect("trace fetch");
    assert_eq!(status, 200, "trace fetch returned {status}: {body}");
    let doc = parse(&body).unwrap_or_else(|e| panic!("trace JSON invalid: {e}\n{body}"));
    let mut spans: Vec<(String, f64)> = Vec::new();
    collect_spans(doc.get("root").expect("trace has a root span"), &mut spans);
    for required in ["parse", "cpg-build"] {
        let (_, dur_ns) = spans
            .iter()
            .find(|(name, _)| name == required)
            .unwrap_or_else(|| panic!("span {required:?} missing from trace: {body}"));
        assert!(*dur_ns > 0.0, "span {required:?} has zero duration: {body}");
    }
    assert!(
        spans.iter().any(|(name, dur_ns)| {
            (name == "ccc-check" || name == "query-eval" || name == "ccd-match") && *dur_ns > 0.0
        }),
        "no query/match span with non-zero duration in trace: {body}"
    );

    // The Chrome export is a traceEvents document Perfetto can load.
    let (status, chrome) =
        client::get(addr, &format!("/debug/trace/{TRACE_HEX}?format=chrome")).expect("chrome");
    assert_eq!(status, 200, "chrome export returned {status}: {chrome}");
    let doc = parse(&chrome).unwrap_or_else(|e| panic!("chrome JSON invalid: {e}\n{chrome}"));
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("chrome export has a traceEvents array");
    assert!(!events.is_empty(), "chrome export has no events");

    // The recent-trace summaries include our trace.
    let (status, recent) = client::get(addr, "/debug/traces/recent").expect("recent traces");
    assert_eq!(status, 200, "recent traces returned {status}");
    assert!(recent.contains(TRACE_HEX), "recent summaries miss the trace: {recent}");

    // /metrics renders a valid exposition carrying the RED series.
    let (status, metrics) = client::get(addr, "/metrics").expect("metrics fetch");
    assert_eq!(status, 200, "metrics returned {status}");
    telemetry::prom::validate(&metrics)
        .unwrap_or_else(|e| panic!("invalid Prometheus exposition: {e}\n{metrics}"));
    for needle in
        ["http_requests_total", "http_request_duration_us_bucket", "endpoint=\"/v1/scan\""]
    {
        assert!(metrics.contains(needle), "metrics missing {needle}:\n{metrics}");
    }

    // Error responses carry ids too (satellite: every response does).
    let response = client::request_full(addr, "GET", "/nope", "", &[]).expect("404 request");
    assert_eq!(response.status, 404);
    assert!(response.header("x-trace-id").is_some(), "404 response lacks X-Trace-Id");
    assert!(response.header("x-request-id").is_some(), "404 response lacks X-Request-Id");

    println!("[loadgen] observability smoke passed against {addr}");
}

/// Flatten a span-tree node into `(name, dur_ns)` rows.
fn collect_spans(span: &telemetry::json::Value, out: &mut Vec<(String, f64)>) {
    use telemetry::json::Value;
    let name = span.get("name").and_then(Value::as_str).unwrap_or("?").to_string();
    let dur_ns = span.get("dur_ns").and_then(Value::as_f64).unwrap_or(0.0);
    out.push((name, dur_ns));
    if let Some(children) = span.get("children").and_then(Value::as_array) {
        for child in children {
            collect_spans(child, out);
        }
    }
}

/// The tracing-overhead gate: measure the burst with tracing off, then
/// on, against one warm in-process daemon. Tracing must keep at least
/// 95% of the untraced throughput; a miss gets one re-measure (single
/// bursts are noisy). Both points land in the trajectory file.
fn trace_overhead_gate(args: &Args, dataset: &corpus::honeypots::HoneypotDataset) {
    let (addr, handle, join) = spawn_in_process(dataset);
    let (bodies, paths) = build_workload(dataset, args.requests);
    let policy = retry_policy();

    // Warm the daemon (CPG cache, fingerprint paths) before measuring.
    telemetry::trace::set_enabled(false);
    let warm = run_burst(&addr, &bodies, &paths, args.concurrency, false, &policy, args.profile);
    if warm.lat.is_empty() {
        eprintln!("[loadgen] FAIL: warmup burst had no successes ({} failed)", warm.failed);
        std::process::exit(1);
    }

    let mut measured: Option<(BurstOutcome, BurstOutcome)> = None;
    for attempt in 1..=2 {
        let off = measure(&addr, &bodies, &paths, args.concurrency, &policy, false, args.profile);
        let on = measure(&addr, &bodies, &paths, args.concurrency, &policy, true, args.profile);
        let ratio = on.rps() / off.rps();
        println!(
            "[loadgen] trace overhead attempt {attempt}: off {:.1} req/s, on {:.1} req/s ({:+.1}%)",
            off.rps(),
            on.rps(),
            (ratio - 1.0) * 100.0
        );
        let pass = ratio >= 0.95;
        measured = Some((off, on));
        if pass {
            break;
        }
    }
    telemetry::trace::set_enabled(false);
    handle.shutdown();
    join.join().expect("server thread");

    let (off, on) = measured.expect("at least one measurement attempt");
    if args.append {
        for (tracing, outcome) in [("off", &off), ("on", &on)] {
            let point = format!(
                "{{\"bench\": \"serve_loadgen\", \"requests\": {}, \"concurrency\": {}, {}, \"rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"tracing\": \"{tracing}\"}}",
                outcome.lat.len(),
                args.concurrency,
                profile_fields(args.profile),
                outcome.rps(),
                outcome.pct(0.50),
                outcome.pct(0.95),
                outcome.pct(0.99)
            );
            match append_point(&args.out, &point) {
                Ok(()) => println!("[loadgen] appended tracing={tracing} point to {}", args.out),
                Err(e) => {
                    eprintln!("[loadgen] FAIL: could not append to {}: {e}", args.out);
                    std::process::exit(1);
                }
            }
        }
    }
    if on.rps() < 0.95 * off.rps() {
        eprintln!(
            "[loadgen] FAIL: tracing overhead exceeds 5% ({:.1} → {:.1} req/s)",
            off.rps(),
            on.rps()
        );
        std::process::exit(1);
    }
}

/// One overhead measurement: set the tracing switch, fire the burst, and
/// insist every request succeeded (failures would fake a throughput win).
fn measure(
    addr: &str,
    bodies: &[String],
    paths: &[&str],
    concurrency: usize,
    policy: &client::RetryPolicy,
    tracing: bool,
    profile: Profile,
) -> BurstOutcome {
    telemetry::trace::set_enabled(tracing);
    let outcome = run_burst(addr, bodies, paths, concurrency, false, policy, profile);
    if outcome.failed > 0 || outcome.lat.is_empty() {
        eprintln!(
            "[loadgen] FAIL: {} failures / {} ok during overhead measurement (tracing {tracing})",
            outcome.failed,
            outcome.lat.len()
        );
        std::process::exit(1);
    }
    outcome
}

/// The transport-regression gate (`--serve-gate`): a warm keep-alive
/// burst against a fresh in-process daemon must stay within 20% of the
/// last keep-alive `serve_loadgen` point in the trajectory file. A miss
/// gets one re-measure against a fresh daemon — single bursts are noisy.
/// With no recorded baseline the gate only checks the burst succeeds.
fn serve_gate(args: &Args, dataset: &corpus::honeypots::HoneypotDataset) {
    let baseline = baseline_rps(&args.out, args.profile);
    match baseline {
        Some(rps) => println!("[loadgen] serve gate baseline: {rps:.1} req/s from {}", args.out),
        None => {
            println!(
                "[loadgen] serve gate: no keep-alive baseline in {}; checking liveness only",
                args.out
            );
        }
    }
    let (bodies, paths) = build_workload(dataset, args.requests);
    let policy = retry_policy();
    let mut last = 0.0_f64;
    for attempt in 1..=2 {
        let (addr, handle, join) = spawn_in_process(dataset);
        // Warm the daemon (CPG + response caches) so the measured burst
        // sees the same steady state the baseline did.
        let warm = run_burst(&addr, &bodies, &paths, args.concurrency, false, &policy, args.profile);
        if warm.lat.is_empty() {
            eprintln!("[loadgen] FAIL: serve gate warmup had no successes ({} failed)", warm.failed);
            std::process::exit(1);
        }
        let outcome =
            run_burst(&addr, &bodies, &paths, args.concurrency, false, &policy, args.profile);
        handle.shutdown();
        join.join().expect("server thread");
        if outcome.failed > 0 || outcome.lat.is_empty() {
            eprintln!(
                "[loadgen] FAIL: serve gate burst had {} failures / {} ok",
                outcome.failed,
                outcome.lat.len()
            );
            std::process::exit(1);
        }
        last = outcome.rps();
        println!(
            "[loadgen] serve gate attempt {attempt}: {last:.1} req/s, p99 {} µs",
            outcome.pct(0.99)
        );
        if baseline.is_none_or(|rps| last >= 0.8 * rps) {
            println!("[loadgen] serve gate passed");
            return;
        }
    }
    eprintln!(
        "[loadgen] FAIL: {last:.1} req/s regressed more than 20% below the {:.1} req/s baseline",
        baseline.unwrap_or(0.0)
    );
    std::process::exit(1);
}

/// The persistent-index benchmark (`--warmstart`): cold full rebuild vs
/// snapshot load over the full honeypot corpus, then a near-duplicate
/// clone-check burst over the warm index to measure the front cache.
fn warmstart_bench(args: &Args, dataset: &corpus::honeypots::HoneypotDataset) {
    let config = AnalysisConfig::default();
    let dir = std::env::temp_dir().join(format!("sodd_warmstart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold path, exactly what a daemon without a snapshot does on boot:
    // materialize the corpus sources, then fingerprint and index every
    // contract. (The warm path skips all of it, dataset included.)
    let t0 = Instant::now();
    let cold_dataset = honeypot_dataset(HONEYPOT_SEED);
    let cold = CorpusBuilder::new(config.ccd_params())
        .snapshot_dir(&dir)
        .from_sources(cold_dataset.contracts.iter().map(|c| (c.id, c.source.as_str())));
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    cold.compact().expect("snapshot commit");

    // Leave a WAL tail: inserts acknowledged after the commit, exactly
    // what a daemon killed between compactions leaves behind. The timed
    // warm load below must pay for replaying them.
    const WAL_TAIL: usize = 24;
    for i in 0..WAL_TAIL {
        let source = format!(
            "contract Tail{i} {{ uint total; function add(uint v) public {{ total += v + {i}; }} }}"
        );
        cold.insert_source(None, &source).expect("tail insert");
    }
    let cold_len = cold.len();
    // Release the cold handle's WAL writer before a second handle opens
    // the same segment.
    drop(cold);

    // Warm path: assemble the same matcher from the committed snapshot —
    // no tokenizing, no normalization, no re-gramming — plus the WAL
    // replay of the uncompacted tail.
    let t0 = Instant::now();
    let warm = CorpusBuilder::new(config.ccd_params())
        .snapshot_dir(&dir)
        .load_snapshot()
        .expect("snapshot loads")
        .expect("snapshot exists");
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(warm.len(), cold_len, "snapshot + WAL replay lost documents");
    assert_eq!(
        (warm.deltas() as usize, warm.replayed_on_boot() as usize),
        (WAL_TAIL, WAL_TAIL),
        "the uncompacted tail must replay as deltas"
    );
    let speedup = cold_ms / warm_ms.max(1e-3);
    println!(
        "[loadgen] warmstart: cold build {cold_ms:.1} ms, snapshot load {warm_ms:.2} ms \
         ({speedup:.0}x) over {} docs",
        warm.len()
    );

    // Near-duplicate burst: Type I/II mutants and verbatim repeats of
    // corpus contracts — the copy-paste traffic shape — against a daemon
    // over the warm index. Mutants of one contract share a normalized
    // fingerprint, so repeats land in the front cache's near tier.
    let docs_total = warm.len();
    let engine = Arc::new(AnalysisEngine::with_corpus_handle(config, warm));
    let server = Server::bind("127.0.0.1:0", ServerConfig::default(), engine)
        .expect("failed to bind in-process server");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("in-process server failed"));

    let bodies = near_duplicate_workload(dataset, args.requests);
    let paths: Vec<&'static str> = vec!["/v1/clone-check"; bodies.len()];
    let outcome = run_burst(
        &addr,
        &bodies,
        &paths,
        args.concurrency,
        false,
        &retry_policy(),
        args.profile,
    );
    if outcome.failed > 0 || outcome.lat.is_empty() {
        eprintln!(
            "[loadgen] FAIL: near-duplicate burst had {} failures / {} ok",
            outcome.failed,
            outcome.lat.len()
        );
        std::process::exit(1);
    }
    let (status, body) = client::get(&addr, "/v1/index/status").expect("index status");
    assert_eq!(status, 200, "index status returned {status}: {body}");
    let hit_rate = telemetry::json::parse(&body)
        .ok()
        .and_then(|doc| {
            doc.get("front_cache")?.get("hit_rate").and_then(telemetry::json::Value::as_f64)
        })
        .unwrap_or_else(|| panic!("no front_cache.hit_rate in {body}"));
    println!(
        "[loadgen] warmstart: {} near-duplicate checks at {:.1} req/s, front cache hit rate {:.1}%",
        outcome.lat.len(),
        outcome.rps(),
        hit_rate * 100.0
    );
    handle.shutdown();
    join.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);

    if args.append {
        let point = format!(
            "{{\"bench\": \"index_warmstart\", \"docs\": {docs_total}, \"cold_ms\": {cold_ms:.1}, \"warm_ms\": {warm_ms:.2}, \"speedup\": {speedup:.1}, \"wal_replayed\": {WAL_TAIL}, \"requests\": {}, \"front_cache_hit_rate\": {hit_rate:.4}}}",
            outcome.lat.len()
        );
        match append_point(&args.out, &point) {
            Ok(()) => println!("[loadgen] appended index_warmstart point to {}", args.out),
            Err(e) => {
                eprintln!("[loadgen] FAIL: could not append to {}: {e}", args.out);
                std::process::exit(1);
            }
        }
    }
    // The soft floor CI can hold in a debug build; release builds land
    // far above it (the committed trajectory point records the margin).
    if speedup < 10.0 {
        eprintln!(
            "[loadgen] FAIL: snapshot load is only {speedup:.1}x faster than a cold rebuild"
        );
        std::process::exit(1);
    }
}

/// The WAL throughput benchmark (`--durability`): the `/v1/index/insert`
/// rate under each fsync policy, each on a fresh snapshot directory and
/// in-process daemon. Fails if group commit (`batch:5`, the serve
/// default) costs more than half the `never` rate or lands below the
/// recorded floor; appends one `wal_durability` point.
fn durability_bench(args: &Args) {
    let policies = ["never", "batch:5", "always"];
    let mut rates = Vec::with_capacity(policies.len());
    for name in policies {
        let rps = insert_rate(args, name);
        println!("[loadgen] durability: {} inserts at {rps:.1} req/s under --wal-fsync {name}", args.requests);
        rates.push(rps);
    }
    let (never_rps, mut batch_rps, always_rps) = (rates[0], rates[1], rates[2]);
    let floor = durability_floor(&args.out);
    if batch_rps < never_rps / 2.0 || floor.is_some_and(|f| batch_rps < f) {
        // One re-measure: a single burst on a loaded CI box is noisy.
        eprintln!("[loadgen] durability: batch:5 rate looks low; re-measuring once");
        batch_rps = batch_rps.max(insert_rate(args, "batch:5"));
    }
    if batch_rps < never_rps / 2.0 {
        eprintln!(
            "[loadgen] FAIL: group commit costs too much: batch:5 {batch_rps:.1} req/s \
             vs never {never_rps:.1} req/s"
        );
        std::process::exit(1);
    }
    if let Some(floor) = floor {
        if batch_rps < floor {
            eprintln!(
                "[loadgen] FAIL: batch:5 insert rate {batch_rps:.1} req/s fell below \
                 the recorded floor {floor:.1} req/s"
            );
            std::process::exit(1);
        }
    }
    if args.append {
        let point = format!(
            "{{\"bench\": \"wal_durability\", \"inserts\": {}, \"concurrency\": {}, \"never_rps\": {never_rps:.1}, \"batch_rps\": {batch_rps:.1}, \"always_rps\": {always_rps:.1}, \"floor\": {:.1}}}",
            args.requests,
            args.concurrency,
            batch_rps / 4.0
        );
        match append_point(&args.out, &point) {
            Ok(()) => println!("[loadgen] appended wal_durability point to {}", args.out),
            Err(e) => {
                eprintln!("[loadgen] FAIL: could not append to {}: {e}", args.out);
                std::process::exit(1);
            }
        }
    }
}

/// One durability measurement: a fresh single-document corpus committed
/// under the given fsync policy, an in-process daemon on top, and a
/// keep-alive insert burst of unique contracts from `--concurrency`
/// threads. Returns sustained inserts per second.
fn insert_rate(args: &Args, policy: &str) -> f64 {
    let policy = FsyncPolicy::parse(policy).expect("bench policy parses");
    let dir = std::env::temp_dir().join(format!(
        "sodd_durability_{}_{}",
        policy.name().replace(':', "_"),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = AnalysisConfig::default();
    let corpus = CorpusBuilder::new(config.ccd_params())
        .snapshot_dir(&dir)
        .wal_fsync(policy)
        .from_sources([(0u64, "contract Seed { function f(uint v) public { msg.sender.transfer(v); } }")]);
    corpus.compact().expect("seed commit");
    let engine = Arc::new(AnalysisEngine::with_corpus_handle(config, corpus));
    let server = Server::bind("127.0.0.1:0", ServerConfig::default(), engine)
        .expect("failed to bind in-process server");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("in-process server failed"));

    // Every insert is a distinct contract: the WAL append is the work
    // being measured, not front-cache hits.
    let bodies: Vec<String> = (0..args.requests)
        .map(|i| {
            let source = format!(
                "contract D{i} {{ uint total; function add(uint v) public {{ total += v + {i}; }} }}"
            );
            format!("{{\"v\":1,\"source\":\"{}\"}}", pipeline::api::escape_json(&source))
        })
        .collect();
    let cursor = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..args.concurrency.max(1) {
            scope.spawn(|| {
                let mut conn = client::Connection::new(&addr);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= bodies.len() {
                        break;
                    }
                    let outcome = conn
                        .connect()
                        .and_then(|()| conn.send("POST", "/v1/index/insert", &bodies[i], &[]))
                        .and_then(|()| conn.recv());
                    match outcome {
                        Ok(r) if r.status == 200 && r.body.contains("\"kind\":\"index_inserted\"") => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    handle.shutdown();
    join.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
    let (ok, failed) = (ok.load(Ordering::Relaxed), failed.load(Ordering::Relaxed));
    if failed > 0 || ok == 0 {
        eprintln!(
            "[loadgen] FAIL: insert burst under --wal-fsync {} had {failed} failures / {ok} ok",
            policy.name()
        );
        std::process::exit(1);
    }
    ok as f64 / elapsed.as_secs_f64()
}

/// The floor recorded by the most recent `wal_durability` point, if any.
fn durability_floor(path: &str) -> Option<f64> {
    use telemetry::json::Value;
    let content = std::fs::read_to_string(path).ok()?;
    let doc = telemetry::json::parse(&content).ok()?;
    let points = doc.get("points").and_then(Value::as_array)?;
    points.iter().rev().find_map(|point| {
        if point.get("bench").and_then(Value::as_str) == Some("wal_durability") {
            point.get("floor").and_then(Value::as_f64)
        } else {
            None
        }
    })
}

/// Clone-check bodies for the near-duplicate profile: a rotation over
/// corpus contracts where two of every three requests are Type I/II
/// mutants (deterministically seeded) and the third is verbatim.
fn near_duplicate_workload(
    dataset: &corpus::honeypots::HoneypotDataset,
    requests: usize,
) -> Vec<String> {
    let base_count = dataset.contracts.len().min(64);
    (0..requests)
        .map(|i| {
            let source = dataset.contracts[i % base_count].source.as_str();
            let mut rng = StdRng::seed_from_u64(i as u64);
            let body = match i % 3 {
                0 => source.to_string(),
                1 => corpus::mutate::type_i(source, &mut rng),
                _ => corpus::mutate::type_ii(source, &mut rng),
            };
            AnalysisRequest::clone_check(&body).to_json()
        })
        .collect()
}

/// The most recent keep-alive, non-tracing-tagged `serve_loadgen` point
/// in the trajectory file whose pipeline/batch profile matches the
/// gate's, so the comparison is like for like.
fn baseline_rps(path: &str, profile: Profile) -> Option<f64> {
    use telemetry::json::Value;
    let content = std::fs::read_to_string(path).ok()?;
    let doc = telemetry::json::parse(&content).ok()?;
    let points = doc.get("points").and_then(Value::as_array)?;
    points.iter().rev().find_map(|point| {
        let is_serve =
            point.get("bench").and_then(Value::as_str) == Some("serve_loadgen");
        let keepalive = matches!(point.get("keepalive"), Some(Value::Bool(true)));
        let depth = point.get("pipeline_depth").and_then(Value::as_f64).unwrap_or(1.0);
        let batch = point.get("batch").and_then(Value::as_f64).unwrap_or(0.0);
        if is_serve
            && keepalive
            && depth == profile.pipeline_depth as f64
            && batch == profile.batch as f64
            && point.get("tracing").is_none()
        {
            point.get("rps").and_then(Value::as_f64)
        } else {
            None
        }
    })
}

/// The profile fields every `serve_loadgen` point carries.
fn profile_fields(profile: Profile) -> String {
    format!(
        "\"keepalive\": {}, \"pipeline_depth\": {}, \"batch\": {}",
        profile.keepalive, profile.pipeline_depth, profile.batch
    )
}

/// Append one point to the trajectory file, preserving existing bytes: the
/// new entry is spliced in front of the array's closing bracket, then the
/// whole document is re-parsed as a validity check before writing.
fn append_point(path: &str, point: &str) -> Result<(), String> {
    let content = match std::fs::read_to_string(path) {
        Ok(content) => content,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            "{\n  \"version\": 1,\n  \"points\": [\n  ]\n}\n".to_string()
        }
        Err(e) => return Err(e.to_string()),
    };
    let parsed = telemetry::json::parse(&content)
        .map_err(|e| format!("existing file is not valid JSON: {e}"))?;
    let empty = parsed
        .get("points")
        .and_then(telemetry::json::Value::as_array)
        .ok_or("existing file has no points array")?
        .is_empty();
    let close = content.rfind(']').ok_or("no closing bracket in file")?;
    let (before, after) = content.split_at(close);
    let separator = if empty { "\n    " } else { ",\n    " };
    let updated = format!("{}{separator}{point}\n  {}", before.trim_end(), after);
    telemetry::json::parse(&updated).map_err(|e| format!("splice produced invalid JSON: {e}"))?;
    std::fs::write(path, updated).map_err(|e| e.to_string())
}
