//! Load generator for the analysis daemon.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--concurrency N]
//!         [--out PATH] [--no-append] [--smoke] [--chaos]
//! ```
//!
//! Drives a running daemon (`--addr`) or spins up an in-process one on an
//! ephemeral port, fires a mixed scan/clone-check workload from
//! `--concurrency` threads, and appends one throughput/latency point
//! (`rps`, `p50/p95/p99` µs) to the benchmark trajectory file. `--smoke`
//! is the CI mode: a small burst plus response well-formedness checks,
//! designed to finish in seconds.
//!
//! `--chaos` is the fault-tolerance mode: the daemon is expected to be
//! running under an armed `FAULT_SPEC`, so requests go through the
//! retrying client and a *typed* error response (an `"kind":"error"`
//! document, any status) counts as a correct outcome. The run fails only
//! on transport-level breakage the retry budget cannot absorb or on
//! responses that do not decode — i.e. exactly the failure modes fault
//! isolation is supposed to prevent. No trajectory point is appended.

use corpus::honeypots::honeypot_dataset;
use pipeline::api::{AnalysisConfig, AnalysisEngine, AnalysisRequest, AnalysisResponse};
use server::{client, Server, ServerConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const HONEYPOT_SEED: u64 = 1;

const SCAN_SNIPPETS: &[&str] = &[
    "function f(address to) public { to.send(1); }",
    "contract Dao { mapping(address => uint) balances; \
     function withdraw() public { uint amount = balances[msg.sender]; \
     msg.sender.call{value: amount}(\"\"); balances[msg.sender] = 0; } }",
    "function kill() public { selfdestruct(msg.sender); }",
    "if (block.timestamp > deadline) { winner = msg.sender; }",
];

struct Args {
    addr: Option<String>,
    requests: usize,
    concurrency: usize,
    out: String,
    append: bool,
    smoke: bool,
    chaos: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut args = Args {
        addr: None,
        requests: 256,
        concurrency: 16,
        out: "BENCH_trajectory.json".to_string(),
        append: true,
        smoke: false,
        chaos: false,
    };
    let mut i = 1;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value for {}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--addr" => {
                args.addr = Some(value(i).clone());
                i += 2;
            }
            "--requests" => {
                args.requests = value(i).parse().expect("--requests must be a count");
                i += 2;
            }
            "--concurrency" => {
                args.concurrency = value(i).parse().expect("--concurrency must be a count");
                i += 2;
            }
            "--out" => {
                args.out = value(i).clone();
                i += 2;
            }
            "--no-append" => {
                args.append = false;
                i += 1;
            }
            "--smoke" => {
                args.smoke = true;
                i += 1;
            }
            "--chaos" => {
                args.chaos = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if args.smoke {
        args.requests = args.requests.min(64);
        args.concurrency = args.concurrency.min(8);
    }
    if args.chaos {
        // Latency points measured through injected faults would poison
        // the trajectory file.
        args.append = false;
    }
    args
}

fn main() {
    let args = parse_args();
    let dataset = honeypot_dataset(HONEYPOT_SEED);

    // Resolve a target: external daemon or an in-process one.
    let mut in_process: Option<(server::ShutdownHandle, std::thread::JoinHandle<()>)> = None;
    let addr = match &args.addr {
        Some(addr) => addr.clone(),
        None => {
            let engine = Arc::new(AnalysisEngine::with_corpus(
                AnalysisConfig::default(),
                dataset.contracts.iter().take(64).map(|c| (c.id, c.source.as_str())),
            ));
            let server = Server::bind("127.0.0.1:0", ServerConfig::default(), engine)
                .expect("failed to bind in-process server");
            let addr = server.local_addr().expect("bound address").to_string();
            let handle = server.shutdown_handle();
            let join = std::thread::spawn(move || {
                server.run().expect("in-process server failed");
            });
            in_process = Some((handle, join));
            addr
        }
    };

    if args.chaos {
        chaos_smoke(&addr);
    } else {
        smoke_checks(&addr, &dataset);
    }

    // The measured burst: a deterministic scan/clone-check mix.
    let bodies: Vec<String> = (0..args.requests)
        .map(|i| {
            if i % 2 == 0 {
                AnalysisRequest::scan(SCAN_SNIPPETS[i / 2 % SCAN_SNIPPETS.len()]).to_json()
            } else {
                let contract = &dataset.contracts[i % dataset.contracts.len().min(64)];
                AnalysisRequest::clone_check(contract.source.as_str()).to_json()
            }
        })
        .collect();
    let paths: Vec<&str> = (0..args.requests)
        .map(|i| if i % 2 == 0 { "/v1/scan" } else { "/v1/clone-check" })
        .collect();

    let cursor = AtomicUsize::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(args.requests));
    let failures = AtomicUsize::new(0);
    let typed_errors = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let retry_policy = client::RetryPolicy {
        max_attempts: 4,
        base_delay_ms: 5,
        max_delay_ms: 100,
        seed: 0xC4A05,
    };
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..args.concurrency.max(1) {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= bodies.len() {
                        break;
                    }
                    let t0 = Instant::now();
                    let outcome = if args.chaos {
                        client::post_with_retry(&addr, paths[i], &bodies[i], &retry_policy)
                    } else {
                        client::post(&addr, paths[i], &bodies[i])
                    };
                    match outcome {
                        Ok((200, body)) if AnalysisResponse::from_json(&body).is_ok() => {
                            local.push(t0.elapsed().as_micros() as u64);
                        }
                        Ok((429, _)) => {
                            // Shed load is correct behavior, not a failure,
                            // but it carries no latency signal.
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((_, body)) if args.chaos && is_typed_error(&body) => {
                            // Under an armed fault plan, an injected fault
                            // surfacing as a typed error document is the
                            // contract we are checking, not a failure.
                            typed_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies.lock().expect("latency lock").extend(local);
            });
        }
    });
    let elapsed = started.elapsed();

    let mut lat = latencies.into_inner().expect("latency lock");
    lat.sort_unstable();
    let failed = failures.load(Ordering::Relaxed);
    if args.chaos {
        println!(
            "[loadgen] chaos: {} ok, {} typed errors, {} shed, {} failed in {:.2}s",
            lat.len(),
            typed_errors.load(Ordering::Relaxed),
            shed.load(Ordering::Relaxed),
            failed,
            elapsed.as_secs_f64()
        );
        if failed > 0 {
            eprintln!("[loadgen] FAIL: {failed} requests broke through fault isolation");
            std::process::exit(1);
        }
        if lat.is_empty() {
            eprintln!("[loadgen] FAIL: no request succeeded under chaos");
            std::process::exit(1);
        }
        if let Some((handle, join)) = in_process {
            handle.shutdown();
            join.join().expect("server thread");
        }
        return;
    }
    if lat.is_empty() {
        eprintln!("[loadgen] FAIL: no successful requests ({failed} failures)");
        std::process::exit(1);
    }
    let pct = |q: f64| lat[((q * (lat.len() - 1) as f64).round() as usize).min(lat.len() - 1)];
    let rps = lat.len() as f64 / elapsed.as_secs_f64();
    println!(
        "[loadgen] {} ok / {} failed in {:.2}s — {:.1} req/s, p50 {} µs, p95 {} µs, p99 {} µs",
        lat.len(),
        failed,
        elapsed.as_secs_f64(),
        rps,
        pct(0.50),
        pct(0.95),
        pct(0.99)
    );
    if failed > 0 {
        eprintln!("[loadgen] FAIL: {failed} requests failed");
        std::process::exit(1);
    }

    if args.append {
        let point = format!(
            "{{\"bench\": \"serve_loadgen\", \"requests\": {}, \"concurrency\": {}, \"rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
            lat.len(),
            args.concurrency,
            rps,
            pct(0.50),
            pct(0.95),
            pct(0.99)
        );
        match append_point(&args.out, &point) {
            Ok(()) => println!("[loadgen] appended point to {}", args.out),
            Err(e) => {
                eprintln!("[loadgen] FAIL: could not append to {}: {e}", args.out);
                std::process::exit(1);
            }
        }
    }

    if let Some((handle, join)) = in_process {
        handle.shutdown();
        join.join().expect("server thread");
    }
}

/// Minimal liveness check for chaos runs: the daemon must answer
/// `/health` (through the retrying client — the health route itself can
/// catch an injected `server/request` fault). Scan/clone-check payload
/// assertions are skipped because injected faults make their outcomes
/// nondeterministic by design.
fn chaos_smoke(addr: &str) {
    let policy = client::RetryPolicy::default();
    let (status, body) =
        client::get_with_retry(addr, "/health", &policy).expect("health request under chaos");
    assert!(
        status == 200 || is_typed_error(&body),
        "health returned {status} with undecodable body: {body}"
    );
    println!("[loadgen] chaos smoke: daemon is answering at {addr}");
}

/// Whether a response body is a well-formed typed error document
/// (`{"kind":"error","code":...}`) as produced by the server's error
/// path — the shape every injected fault must decay to.
fn is_typed_error(body: &str) -> bool {
    let Ok(value) = telemetry::json::parse(body) else { return false };
    value.get("kind").and_then(telemetry::json::Value::as_str) == Some("error")
        && value.get("code").and_then(telemetry::json::Value::as_str).is_some()
}

/// Correctness spot-checks before measuring: health, one scan, one
/// clone-check, all decoded through the typed API.
fn smoke_checks(addr: &str, dataset: &corpus::honeypots::HoneypotDataset) {
    let (status, body) = client::get(addr, "/health").expect("health request");
    assert_eq!(status, 200, "health returned {status}: {body}");
    assert!(body.contains("\"status\":\"ok\""), "unexpected health body: {body}");

    let scan = AnalysisRequest::scan("function f(address to) public { to.send(1); }").to_json();
    let (status, body) = client::post(addr, "/v1/scan", &scan).expect("scan request");
    assert_eq!(status, 200, "scan returned {status}: {body}");
    match AnalysisResponse::from_json(&body).expect("scan response decodes") {
        AnalysisResponse::Findings(findings) => {
            assert!(!findings.is_empty(), "vulnerable snippet produced no findings")
        }
        other => panic!("scan returned {other:?}"),
    }

    let check =
        AnalysisRequest::clone_check(dataset.contracts[0].source.as_str()).to_json();
    let (status, body) = client::post(addr, "/v1/clone-check", &check).expect("clone-check");
    assert_eq!(status, 200, "clone-check returned {status}: {body}");
    match AnalysisResponse::from_json(&body).expect("clone-check response decodes") {
        AnalysisResponse::Clones(hits) => {
            assert!(
                hits.iter().any(|h| h.score == 100.0),
                "corpus contract did not match itself: {hits:?}"
            )
        }
        other => panic!("clone-check returned {other:?}"),
    }
    println!("[loadgen] smoke checks passed against {addr}");
}

/// Append one point to the trajectory file, preserving existing bytes: the
/// new entry is spliced in front of the array's closing bracket, then the
/// whole document is re-parsed as a validity check before writing.
fn append_point(path: &str, point: &str) -> Result<(), String> {
    let content = match std::fs::read_to_string(path) {
        Ok(content) => content,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            "{\n  \"version\": 1,\n  \"points\": [\n  ]\n}\n".to_string()
        }
        Err(e) => return Err(e.to_string()),
    };
    let parsed = telemetry::json::parse(&content)
        .map_err(|e| format!("existing file is not valid JSON: {e}"))?;
    let empty = parsed
        .get("points")
        .and_then(telemetry::json::Value::as_array)
        .ok_or("existing file has no points array")?
        .is_empty();
    let close = content.rfind(']').ok_or("no closing bracket in file")?;
    let (before, after) = content.split_at(close);
    let separator = if empty { "\n    " } else { ",\n    " };
    let updated = format!("{}{separator}{point}\n  {}", before.trim_end(), after);
    telemetry::json::parse(&updated).map_err(|e| format!("splice produced invalid JSON: {e}"))?;
    std::fs::write(path, updated).map_err(|e| e.to_string())
}
