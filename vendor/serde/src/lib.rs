//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its result types to
//! keep them export-ready, but never serializes in-tree (there is no
//! `serde_json` dependency). This stub provides the two traits as markers
//! plus the derive macros, so the offline build needs no crates.io
//! access. Swapping the real serde back in is a one-line change in the
//! workspace `Cargo.toml`.

#![warn(missing_docs)]

/// Marker for types that can be serialized.
///
/// The real trait's `serialize` method is intentionally absent: no code
/// in this workspace calls it, and a marker keeps the derive trivial.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {}
            impl<'de> Deserialize<'de> for $ty {}
        )*
    };
}

impl_markers!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize,
    f32, f64, String,
);

impl Serialize for str {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S: Default> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {}
impl<'de, T: Deserialize<'de>, S: Default> Deserialize<'de>
    for std::collections::HashSet<T, S>
{
}
impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
