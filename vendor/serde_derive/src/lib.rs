//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, and nothing
//! in this workspace actually serializes — the `Serialize`/`Deserialize`
//! derives only assert *serializability* of the result types. This crate
//! therefore emits impls of the marker traits defined by the sibling
//! `serde` stub. No attributes (`#[serde(...)]`) are supported; the
//! workspace uses none.

use proc_macro::{TokenStream, TokenTree};

/// Extract the name (and raw generics, if any) of the struct/enum the
/// derive is attached to.
fn item_name(input: TokenStream) -> (String, String) {
    let mut tokens = input.into_iter().peekable();
    // Skip leading attributes (`#` followed by a bracketed group) and
    // visibility/keywords until `struct`, `enum` or `union`.
    for token in tokens.by_ref() {
        if let TokenTree::Ident(ident) = &token {
            let text = ident.to_string();
            if text == "struct" || text == "enum" || text == "union" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("derive target has no name: {other:?}"),
    };
    // Collect a `<...>` generics clause verbatim when present.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            for token in tokens.by_ref() {
                if let TokenTree::Punct(p) = &token {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                }
                generics.push_str(&token.to_string());
                if depth == 0 {
                    break;
                }
            }
        }
    }
    (name, generics)
}

/// Derive the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generics) = item_name(input);
    format!("impl{generics} ::serde::Serialize for {name}{generics} {{}}")
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generics) = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name}{generics} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}
