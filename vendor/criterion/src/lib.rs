//! Offline stand-in for `criterion`, covering the API the bench harness
//! uses: `Criterion::bench_function` / `benchmark_group`,
//! `BenchmarkGroup::{bench_function, bench_with_input, finish}`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: a short calibration pass sizes the batch, then each
//! benchmark runs for a fixed measurement window and reports the mean
//! iteration time. No statistics, plots, or saved baselines — the numbers
//! land on stdout in a `name ... time: [x µs]` line that keeps the same
//! shape as real criterion output.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Target measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
/// Calibration window used to size iteration batches.
const CALIBRATE_WINDOW: Duration = Duration::from_millis(30);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Construct with defaults.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        run_benchmark(&format!("{}/{}", self.name, id.0), &mut f);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        run_benchmark(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// Close the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier (name or parameter rendering).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier from a function name plus parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] (accepts plain strings too).
pub trait IntoBenchmarkId {
    /// Convert.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `self.iters` times, timing the whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    // Calibration: time a single iteration to size the measurement batch.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let single = bencher.elapsed.max(Duration::from_nanos(1));
    let per_batch = CALIBRATE_WINDOW.as_nanos() / single.as_nanos().max(1);
    let batch = per_batch.clamp(1, u64::MAX as u128) as u64;

    // Measurement: run batches until the window closes.
    let mut total_iters = 0u64;
    let mut total_time = Duration::ZERO;
    while total_time < MEASURE_WINDOW {
        let mut bencher = Bencher { iters: batch, elapsed: Duration::ZERO };
        f(&mut bencher);
        total_iters += batch;
        total_time += bencher.elapsed;
    }
    let mean = total_time.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("{name:<52} time: [{}]", format_nanos(mean));
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // stub has no options to parse, so they are ignored.
            $($group();)+
        }
    };
}
