//! Strategy trait and the combinators used in-tree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-test runner RNG: fixed base seed mixed with the test
/// name so each property gets its own reproducible stream.
pub fn runner_rng(test_name: &str) -> StdRng {
    let mut seed: u64 = 0x5EED_CAFE_F00D_BA5E;
    for byte in test_name.bytes() {
        seed = seed.wrapping_mul(0x100000001B3).wrapping_add(byte as u64);
    }
    StdRng::seed_from_u64(seed)
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produce a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// The `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The `prop_flat_map` combinator.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the macro's boxed arms.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// `collection::vec` output.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) min: usize,
    pub(crate) max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

// ---- Regex-literal strategies ----------------------------------------------

/// `&str` patterns are interpreted as a tiny regex subset: a sequence of
/// atoms (`.`, `\PC`, `[class]`, or a literal character), each with an
/// optional `{m}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        generate_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        generate_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    /// Any printable character (stands in for `.` and `\PC`).
    AnyPrintable,
    /// One of an explicit character set.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

fn printable_pool() -> Vec<char> {
    // ASCII printables plus a few multibyte characters so UTF-8 handling
    // gets exercised; all are outside the control category (`\PC`) and
    // match `.`.
    let mut pool: Vec<char> = (b' '..=b'~').map(char::from).collect();
    pool.extend(['é', 'Ω', '→', '☃', '中']);
    pool
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    for c in chars.by_ref() {
        match c {
            ']' => return set,
            '-' => {
                // Range like a-z: combine prev with the next char.
                prev = Some('-');
                set.push('-');
            }
            _ => {
                if prev == Some('-') && set.len() >= 2 {
                    // set = [..., lo, '-'] → replace with the full range.
                    set.pop();
                    let lo = set.pop().unwrap();
                    for v in (lo as u32)..=(c as u32) {
                        if let Some(ch) = char::from_u32(v) {
                            set.push(ch);
                        }
                    }
                } else {
                    set.push(c);
                }
                prev = Some(c);
            }
        }
    }
    set
}

fn parse_repetition(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    match spec.split_once(',') {
        Some((lo, hi)) => {
            let lo = lo.trim().parse().unwrap_or(0);
            let hi = hi.trim().parse().unwrap_or(lo);
            (lo, hi.max(lo))
        }
        None => {
            let n = spec.trim().parse().unwrap_or(1);
            (n, n)
        }
    }
}

fn generate_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyPrintable,
            '\\' => match chars.next() {
                // \PC ("not a control character") — printable pool.
                Some('P') => {
                    chars.next(); // consume the category letter
                    Atom::AnyPrintable
                }
                Some('d') => Atom::Class(('0'..='9').collect()),
                Some('w') => {
                    let mut set: Vec<char> = ('a'..='z').collect();
                    set.extend('A'..='Z');
                    set.extend('0'..='9');
                    set.push('_');
                    Atom::Class(set)
                }
                Some(escaped) => Atom::Literal(escaped),
                None => break,
            },
            '[' => Atom::Class(parse_class(&mut chars)),
            literal => Atom::Literal(literal),
        };
        let (lo, hi) = parse_repetition(&mut chars);
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            match &atom {
                Atom::AnyPrintable => {
                    let pool = printable_pool();
                    out.push(pool[rng.gen_range(0..pool.len())]);
                }
                Atom::Class(set) => {
                    if !set.is_empty() {
                        out.push(set[rng.gen_range(0..set.len())]);
                    }
                }
                Atom::Literal(l) => out.push(*l),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn class_patterns_respect_length_and_alphabet() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[A-D]{4,16}".generate(&mut rng);
            assert!((4..=16).contains(&s.chars().count()), "{s}");
            assert!(s.chars().all(|c| ('A'..='D').contains(&c)), "{s}");
        }
    }

    #[test]
    fn alnum_class_covers_all_subranges() {
        let mut rng = rng();
        let mut seen_digit = false;
        let mut seen_lower = false;
        let mut seen_upper = false;
        for _ in 0..300 {
            for c in "[A-Za-z0-9]{1,64}".generate(&mut rng).chars() {
                assert!(c.is_ascii_alphanumeric(), "{c}");
                seen_digit |= c.is_ascii_digit();
                seen_lower |= c.is_ascii_lowercase();
                seen_upper |= c.is_ascii_uppercase();
            }
        }
        assert!(seen_digit && seen_lower && seen_upper);
    }

    #[test]
    fn dot_and_pc_patterns_generate_printables() {
        let mut rng = rng();
        for pattern in [".{0,40}", "\\PC{0,200}"] {
            for _ in 0..50 {
                let s = pattern.generate(&mut rng);
                assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            }
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = rng();
        let strategy = (2usize..8).prop_flat_map(|n| {
            crate::collection::vec(crate::prop_oneof![Just("A"), Just("B")], n)
                .prop_map(|v| v.len())
        });
        for _ in 0..100 {
            let len = strategy.generate(&mut rng);
            assert!((2..8).contains(&len));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = rng();
        let strategy = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strategy.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
