//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the `proptest!` macro, range/regex-literal/`Just`/tuple/vec/
//! one-of strategies, `prop_map`/`prop_flat_map`, and the `prop_assert*`
//! macros.
//!
//! Differences from the real crate, on purpose:
//! * **No shrinking** — a failing case reports its inputs and panics.
//! * **Deterministic seeding** — cases derive from a fixed seed mixed
//!   with the test name, so CI failures reproduce locally.
//! * **Tiny regex subset** — enough for the patterns used in-tree:
//!   `.`, `\PC`, `[a-zA-Z0-9+/]`-style classes, each with an optional
//!   `{m}`/`{m,n}` repetition, plus literal characters.

#![warn(missing_docs)]

pub mod strategy;

/// Runner configuration types.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Size specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Lower and upper bound (inclusive) of the generated length.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// The common imports of a proptest test module.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property (plain assert here — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::strategy::runner_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let ctx = format!(
                    concat!("case {} of ", stringify!($name), ":", $(" ", stringify!($arg), " = {:?}",)+),
                    case, $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = outcome {
                    eprintln!("proptest failure: {ctx}");
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
