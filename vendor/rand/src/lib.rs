//! Offline stand-in for `rand` 0.8, covering exactly the API subset the
//! workspace uses: `StdRng` (+ `SeedableRng::seed_from_u64`), the `Rng`
//! extension methods `gen`, `gen_range`, `gen_bool`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as the real `StdRng` (ChaCha12), but a high-quality one; all
//! in-tree corpora are synthetic and only depend on the stream being
//! deterministic per seed, which this guarantees.

#![warn(missing_docs)]

/// Low-level random source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Types with uniform range sampling (rand 0.8's `SampleUniform`).
///
/// One generic `SampleRange` impl per range shape delegates here, so the
/// compiler can infer integer-literal range types from the target type —
/// exactly like the real crate's `UniformSampler` indirection.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleUniform for $ty {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: $ty,
                    hi: $ty,
                    inclusive: bool,
                ) -> $ty {
                    let span =
                        (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                    assert!(span > 0, "empty range in gen_range");
                    let hit = widening_mul(rng.next_u64(), span);
                    (lo as i128 + hit as i128) as $ty
                }
            }
        )*
    };
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleUniform for $ty {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: $ty,
                    hi: $ty,
                    _inclusive: bool,
                ) -> $ty {
                    assert!(lo < hi, "empty range in gen_range");
                    let u = <$ty>::sample_standard(rng);
                    lo + u * (hi - lo)
                }
            }
        )*
    };
}

impl_sample_uniform_float!(f32, f64);

/// Map 64 random bits onto `0..span` with negligible bias (widening
/// multiply; span is far below 2^64 in practice).
fn widening_mul(bits: u64, span: u128) -> u128 {
    (bits as u128).wrapping_mul(span) >> 64
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing extension trait (rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator: xoshiro256++ (SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice extensions (rand 0.8's `SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element; `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(1.5..5.5f64);
            assert!((1.5..5.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(1234);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for b in buckets {
            assert!((9_000..11_000).contains(&b), "bucket = {b}");
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
